//! Umbrella crate for the Firefly RPC reproduction.
//!
//! Re-exports every workspace crate under one roof and hosts the
//! cross-crate examples (`examples/`) and integration tests (`tests/`):
//!
//! * [`wire`] — packet formats and the Internet checksum,
//! * [`pool`] — the shared packet-buffer pool,
//! * [`idl`] — Modula-2+ interfaces, marshalling and stub generation,
//! * [`rpc`] — the RPC runtime and its transports,
//! * [`sim`] — the discrete-event Firefly simulator,
//! * [`metrics`] — measurement utilities,
//! * [`generated`] — build-time generated typed stubs for the paper's
//!   `Test` interface, produced by `build.rs` through
//!   [`idl::codegen`](firefly_idl::codegen) exactly the way the Firefly
//!   stub compiler produced Modula-2+ stubs.

pub use firefly_idl as idl;
pub use firefly_metrics as metrics;
pub use firefly_pool as pool;
pub use firefly_rpc as rpc;
pub use firefly_sim as sim;
pub use firefly_wire as wire;

/// Typed stubs for the paper's `Test` interface, generated at build time.
///
/// Contains `TestClient<C>` (the caller stub), `TestServer` (the service
/// trait shape) and the `RpcCall` trait the stub drives; see
/// `tests/typed_stubs.rs` for the end-to-end wiring over a real
/// [`rpc::Client`].
pub mod generated {
    include!(concat!(env!("OUT_DIR"), "/test_stubs.rs"));
}
