//! Concurrency and property tests for the buffer pool.

use firefly_pool::{BufferPool, PoolError, BUFFER_SIZE};
use firefly_propcheck::{check, prop_assert_eq};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn hammering_from_many_threads_preserves_capacity() {
    let pool = BufferPool::new(8);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let mut handles = Vec::new();
    for t in 0..8 {
        let pool = pool.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            for i in 0..500 {
                match pool.alloc_timeout(Duration::from_secs(2)) {
                    Ok(mut b) => {
                        b.set_len(74);
                        b[0] = t as u8;
                        b[73] = (i % 251) as u8;
                        // Exercise both release paths.
                        if i % 3 == 0 {
                            let p = b.pool().clone();
                            p.recycle_to_receive_queue(b);
                        }
                    }
                    Err(PoolError::Timeout) => panic!("starved"),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every buffer is either free or parked on the receive queue.
    assert_eq!(pool.free_count() + pool.receive_queue_len(), 8);
    assert_eq!(pool.stats().outstanding(), 0);
}

#[test]
fn receive_queue_buffers_are_reusable() {
    let pool = BufferPool::new(4);
    for _ in 0..100 {
        let b = pool.take_receive_buffer().unwrap();
        pool.recycle_to_receive_queue(b);
    }
    assert_eq!(pool.free_count() + pool.receive_queue_len(), 4);
}

/// Any interleaving of alloc/free/recycle keeps the buffer count
/// conserved: free + receive_queue + outstanding == capacity.
#[test]
fn buffer_count_is_conserved() {
    check("buffer_count_is_conserved", 256, |g| {
        let ops = g.vec(1..200, |g| g.usize_in(0..4));
        let capacity = 6;
        let pool = BufferPool::new(capacity);
        let mut held = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Ok(b) = pool.alloc() {
                        held.push(b);
                    }
                }
                1 => {
                    held.pop();
                }
                2 => {
                    if let Some(b) = held.pop() {
                        pool.recycle_to_receive_queue(b);
                    }
                }
                _ => {
                    if let Ok(b) = pool.take_receive_buffer() {
                        held.push(b);
                    }
                }
            }
            let total = pool.free_count() + pool.receive_queue_len() + held.len();
            prop_assert_eq!(total, capacity);
            prop_assert_eq!(pool.stats().outstanding(), held.len() as u64);
        }
        Ok(())
    });
}

/// Writes through one handle never alias another live handle.
#[test]
fn buffers_do_not_alias() {
    check("buffers_do_not_alias", 64, |g| {
        let n = g.usize_in(2..6);
        let pool = BufferPool::new(n);
        let mut bufs: Vec<_> = (0..n).map(|_| pool.alloc().unwrap()).collect();
        for (i, b) in bufs.iter_mut().enumerate() {
            b.set_len(BUFFER_SIZE);
            b[0] = i as u8;
            b[BUFFER_SIZE - 1] = (i * 7) as u8;
        }
        for (i, b) in bufs.iter().enumerate() {
            prop_assert_eq!(b[0], i as u8);
            prop_assert_eq!(b[BUFFER_SIZE - 1], (i * 7) as u8);
        }
        Ok(())
    });
}
