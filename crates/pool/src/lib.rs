//! The shared RPC packet-buffer pool.
//!
//! In Firefly RPC, "RPC packet buffers reside in memory shared among all
//! user address spaces and the Nub … RPC stubs in user spaces, and the
//! Ethernet driver code and interrupt handler in the Nub, all can read and
//! write packet buffers in memory using the same addresses. This strategy
//! eliminates the need for extra address mapping operations or copying when
//! doing RPC." (§3.2.)
//!
//! This crate reproduces that discipline in safe Rust:
//!
//! * a [`BufferPool`] is created once with a fixed number of 1514-byte
//!   buffers and shared (`Arc`-cloned) by every component — caller stubs,
//!   server stubs, transports and the demultiplexer, the moral equivalents
//!   of user spaces and the Nub;
//! * [`PacketBuf`] hands out exclusive access to one buffer and returns it
//!   to the free list on drop, so the fast path allocates **nothing** from
//!   the general-purpose heap;
//! * [`PoolStats`] counts allocations, frees, recycles and exhaustions so
//!   tests can prove the zero-allocation property;
//! * [`BufferPool::recycle_to_receive_queue`] and
//!   [`BufferPool::take_receive_buffer`] model the paper's on-the-fly
//!   receive-buffer replacement, where the interrupt handler moves the
//!   buffer found in a call-table entry straight onto the Ethernet
//!   controller's receive queue.
//!
//! # Examples
//!
//! ```
//! use firefly_pool::BufferPool;
//!
//! let pool = BufferPool::new(4);
//! let mut buf = pool.alloc().unwrap();
//! buf.set_len(74);
//! buf[0] = 0x02;
//! drop(buf); // Returned to the free list.
//! assert_eq!(pool.stats().outstanding(), 0);
//! ```

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

use firefly_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The size of every pool buffer: one maximal Ethernet frame.
pub const BUFFER_SIZE: usize = 1514;

/// Errors returned by pool operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// No free buffers; the pool is fixed-size by design.
    Exhausted,
    /// A blocking allocation timed out.
    Timeout,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted => write!(f, "packet buffer pool exhausted"),
            PoolError::Timeout => write!(f, "timed out waiting for a packet buffer"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters describing pool behaviour; all monotonically increasing except
/// the derived [`PoolStats::outstanding`].
#[derive(Debug, Default)]
pub struct PoolStats {
    allocs: AtomicU64,
    frees: AtomicU64,
    recycles: AtomicU64,
    exhaustions: AtomicU64,
    high_water: AtomicU64,
}

impl PoolStats {
    /// Total successful allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total buffers returned through drop.
    pub fn frees(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Buffers moved directly to the receive queue (the paper's
    /// interrupt-handler recycling).
    pub fn recycles(&self) -> u64 {
        self.recycles.load(Ordering::Relaxed)
    }

    /// Allocation attempts that found the pool empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions.load(Ordering::Relaxed)
    }

    /// Maximum simultaneously outstanding buffers observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Buffers currently held by users (allocs − frees − recycles).
    pub fn outstanding(&self) -> u64 {
        self.allocs()
            .saturating_sub(self.frees())
            .saturating_sub(self.recycles())
    }

    fn note_alloc(&self) {
        let a = self.allocs.fetch_add(1, Ordering::Relaxed) + 1;
        let out = a
            .saturating_sub(self.frees.load(Ordering::Relaxed))
            .saturating_sub(self.recycles.load(Ordering::Relaxed));
        self.high_water.fetch_max(out, Ordering::Relaxed);
    }
}

struct PoolInner {
    free: Mutex<Vec<Box<[u8]>>>,
    /// Buffers parked on the simulated controller's receive queue.
    receive_queue: Mutex<VecDeque<Box<[u8]>>>,
    available: Condvar,
    capacity: usize,
    stats: PoolStats,
}

/// A fixed-size pool of packet buffers shared by the whole RPC machinery.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.inner.capacity)
            .field("free", &self.free_count())
            .field("outstanding", &self.stats().outstanding())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool with `capacity` pre-allocated 1514-byte buffers.
    ///
    /// All allocation happens here, once; the fast path only moves buffers
    /// between lists.
    pub fn new(capacity: usize) -> Self {
        let free = (0..capacity)
            // lint:allow(no-alloc-on-fast-path): the one-time slab
            // allocation at pool construction; never per packet.
            .map(|_| vec![0u8; BUFFER_SIZE].into_boxed_slice())
            .collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(free),
                receive_queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                capacity,
                stats: PoolStats::default(),
            }),
        }
    }

    /// The configured number of buffers.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of buffers currently on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Number of buffers parked on the receive queue.
    pub fn receive_queue_len(&self) -> usize {
        self.inner.receive_queue.lock().len()
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.inner.stats
    }

    /// Labels this pool's locks for `firefly-check` with their lint
    /// lock-order class ("pool"). No-op outside a checked schedule.
    pub fn check_labels(&self) {
        self.inner.free.check_label("pool");
        self.inner.receive_queue.check_label("pool");
    }

    /// Allocates a buffer, failing immediately if the pool is exhausted.
    ///
    /// This is the `Starter` path: "obtain a packet buffer for the call".
    /// When the free list is empty the Nub reclaims an idle buffer from
    /// the controller receive queue rather than failing.
    pub fn alloc(&self) -> Result<PacketBuf, PoolError> {
        let slab = {
            let mut free = self.inner.free.lock();
            match free.pop() {
                Some(s) => s,
                None => {
                    drop(free);
                    match self.inner.receive_queue.lock().pop_front() {
                        Some(s) => s,
                        None => {
                            self.inner.stats.exhaustions.fetch_add(1, Ordering::Relaxed);
                            return Err(PoolError::Exhausted);
                        }
                    }
                }
            }
        };
        self.inner.stats.note_alloc();
        Ok(PacketBuf {
            pool: BufferPool {
                inner: Arc::clone(&self.inner),
            },
            slab: Some(slab),
            len: 0,
        })
    }

    /// Allocates a buffer, blocking up to `timeout` for one to be freed.
    pub fn alloc_timeout(&self, timeout: Duration) -> Result<PacketBuf, PoolError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Ok(buf) = self.alloc() {
                return Ok(buf);
            }
            let mut free = self.inner.free.lock();
            if !free.is_empty() || self.receive_queue_len() > 0 {
                continue;
            }
            if self
                .inner
                .available
                .wait_until(&mut free, deadline)
                .timed_out()
            {
                return Err(PoolError::Timeout);
            }
        }
    }

    /// Moves a buffer straight onto the controller receive queue.
    ///
    /// The paper: "when putting the newly arrived packet into the call
    /// table, the interrupt handler removes the buffer found in that call
    /// table entry and adds it to the Ethernet controller's receive queue"
    /// (§3.2). The buffer is consumed without touching the free list.
    pub fn recycle_to_receive_queue(&self, mut buf: PacketBuf) {
        if let Some(slab) = buf.slab.take() {
            self.inner.receive_queue.lock().push_back(slab);
            self.inner.stats.recycles.fetch_add(1, Ordering::Relaxed);
            // Allocation can reclaim receive-queue buffers, so wake one
            // waiter.
            self.inner.available.notify_one();
        }
    }

    /// Takes a buffer from the receive queue (what the controller does when
    /// a packet arrives), falling back to the free list when the queue is
    /// empty.
    pub fn take_receive_buffer(&self) -> Result<PacketBuf, PoolError> {
        if let Some(slab) = self.inner.receive_queue.lock().pop_front() {
            self.inner.stats.note_alloc();
            return Ok(PacketBuf {
                pool: BufferPool {
                    inner: Arc::clone(&self.inner),
                },
                slab: Some(slab),
                len: 0,
            });
        }
        self.alloc()
    }

    fn return_slab(&self, slab: Box<[u8]>) {
        self.inner.free.lock().push(slab);
        self.inner.stats.frees.fetch_add(1, Ordering::Relaxed);
        self.inner.available.notify_one();
    }
}

/// Exclusive ownership of one pool buffer, returned to the pool on drop.
///
/// Dereferences to the first `len` bytes — the valid portion of the packet.
/// The full 1514-byte slab is reachable via [`PacketBuf::raw_mut`] for
/// header construction in place.
pub struct PacketBuf {
    pool: BufferPool,
    slab: Option<Box<[u8]>>,
    len: usize,
}

impl PacketBuf {
    /// Sets the number of valid bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`BUFFER_SIZE`]; packets larger than one
    /// Ethernet frame cannot exist.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= BUFFER_SIZE, "packet length {len} exceeds buffer");
        self.len = len;
    }

    /// Number of valid bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes are valid yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole 1514-byte slab, regardless of `len`.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        // The slab is Some from construction until drop; the empty-slice
        // fallback keeps the accessor panic-free for the demux thread.
        match self.slab.as_mut() {
            Some(slab) => slab,
            None => &mut [],
        }
    }

    /// Copies `src` into the buffer and sets the valid length.
    ///
    /// # Panics
    ///
    /// Panics if `src` exceeds [`BUFFER_SIZE`].
    pub fn fill_from(&mut self, src: &[u8]) {
        assert!(src.len() <= BUFFER_SIZE, "source exceeds buffer size");
        let Some(slab) = self.slab.as_mut() else {
            return;
        };
        slab[..src.len()].copy_from_slice(src);
        self.len = src.len();
    }

    /// Returns the owning pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl Deref for PacketBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self.slab.as_ref() {
            Some(slab) => &slab[..self.len],
            None => &[],
        }
    }
}

impl DerefMut for PacketBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        match self.slab.as_mut() {
            Some(slab) => &mut slab[..len],
            None => &mut [],
        }
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PacketBuf").field("len", &self.len).finish()
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(slab) = self.slab.take() {
            self.pool.return_slab(slab);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_round_trip() {
        let pool = BufferPool::new(2);
        assert_eq!(pool.free_count(), 2);
        let b = pool.alloc().unwrap();
        assert_eq!(pool.free_count(), 1);
        drop(b);
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.stats().allocs(), 1);
        assert_eq!(pool.stats().frees(), 1);
        assert_eq!(pool.stats().outstanding(), 0);
    }

    #[test]
    fn exhaustion_is_reported_not_grown() {
        let pool = BufferPool::new(1);
        let _a = pool.alloc().unwrap();
        assert_eq!(pool.alloc().unwrap_err(), PoolError::Exhausted);
        assert_eq!(pool.stats().exhaustions(), 1);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn len_discipline() {
        let pool = BufferPool::new(1);
        let mut b = pool.alloc().unwrap();
        assert!(b.is_empty());
        b.set_len(74);
        assert_eq!(b.len(), 74);
        assert_eq!(b.deref().len(), 74);
        b.fill_from(&[1, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversize_len_panics() {
        let pool = BufferPool::new(1);
        let mut b = pool.alloc().unwrap();
        b.set_len(BUFFER_SIZE + 1);
    }

    #[test]
    fn recycling_feeds_receive_queue() {
        let pool = BufferPool::new(2);
        let b = pool.alloc().unwrap();
        pool.recycle_to_receive_queue(b);
        assert_eq!(pool.receive_queue_len(), 1);
        assert_eq!(pool.free_count(), 1);
        // The controller picks the recycled buffer up first.
        let b2 = pool.take_receive_buffer().unwrap();
        assert_eq!(pool.receive_queue_len(), 0);
        drop(b2);
        assert_eq!(pool.free_count(), 2);
    }

    #[test]
    fn take_receive_buffer_falls_back_to_free_list() {
        let pool = BufferPool::new(1);
        let b = pool.take_receive_buffer().unwrap();
        assert_eq!(pool.free_count(), 0);
        drop(b);
    }

    #[test]
    fn blocking_alloc_wakes_on_free() {
        let pool = BufferPool::new(1);
        let held = pool.alloc().unwrap();
        let p2 = pool.clone();
        let t = std::thread::spawn(move || p2.alloc_timeout(Duration::from_secs(5)).is_ok());
        firefly_sync::test_sleep();
        drop(held);
        assert!(t.join().unwrap());
    }

    #[test]
    fn blocking_alloc_times_out() {
        let pool = BufferPool::new(1);
        let _held = pool.alloc().unwrap();
        assert_eq!(
            pool.alloc_timeout(Duration::from_millis(10)).unwrap_err(),
            PoolError::Timeout
        );
    }

    #[test]
    fn high_water_tracks_peak() {
        let pool = BufferPool::new(3);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        drop(a);
        let c = pool.alloc().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.stats().high_water(), 2);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = BufferPool::new(2);
        let clone = pool.clone();
        let b = clone.alloc().unwrap();
        assert_eq!(pool.free_count(), 1);
        drop(b);
        assert_eq!(pool.free_count(), 2);
    }
}
