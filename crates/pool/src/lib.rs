//! The shared RPC packet-buffer pool.
//!
//! In Firefly RPC, "RPC packet buffers reside in memory shared among all
//! user address spaces and the Nub … RPC stubs in user spaces, and the
//! Ethernet driver code and interrupt handler in the Nub, all can read and
//! write packet buffers in memory using the same addresses. This strategy
//! eliminates the need for extra address mapping operations or copying when
//! doing RPC." (§3.2.)
//!
//! This crate reproduces that discipline in safe Rust:
//!
//! * a [`BufferPool`] is created once with a fixed number of 1514-byte
//!   buffers and shared (`Arc`-cloned) by every component — caller stubs,
//!   server stubs, transports and the demultiplexer, the moral equivalents
//!   of user spaces and the Nub;
//! * [`PacketBuf`] hands out exclusive access to one buffer and returns it
//!   to the free list on drop, so the fast path allocates **nothing** from
//!   the general-purpose heap;
//! * [`PoolStats`] counts allocations, frees, recycles and exhaustions so
//!   tests can prove the zero-allocation property;
//! * [`BufferPool::recycle_to_receive_queue`] and
//!   [`BufferPool::take_receive_buffer`] model the paper's on-the-fly
//!   receive-buffer replacement, where the interrupt handler moves the
//!   buffer found in a call-table entry straight onto the Ethernet
//!   controller's receive queue.
//!
//! # Examples
//!
//! ```
//! use firefly_pool::BufferPool;
//!
//! let pool = BufferPool::new(4);
//! let mut buf = pool.alloc().unwrap();
//! buf.set_len(74);
//! buf[0] = 0x02;
//! drop(buf); // Returned to the free list.
//! assert_eq!(pool.stats().outstanding(), 0);
//! ```

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

use firefly_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The size of every pool buffer: one maximal Ethernet frame.
pub const BUFFER_SIZE: usize = 1514;

/// Errors returned by pool operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// No free buffers; the pool is fixed-size by design.
    Exhausted,
    /// A blocking allocation timed out.
    Timeout,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted => write!(f, "packet buffer pool exhausted"),
            PoolError::Timeout => write!(f, "timed out waiting for a packet buffer"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters describing pool behaviour; all monotonically increasing except
/// the derived [`PoolStats::outstanding`].
#[derive(Debug, Default)]
pub struct PoolStats {
    allocs: AtomicU64,
    frees: AtomicU64,
    recycles: AtomicU64,
    exhaustions: AtomicU64,
    high_water: AtomicU64,
}

impl PoolStats {
    /// Total successful allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total buffers returned through drop.
    pub fn frees(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Buffers moved directly to the receive queue (the paper's
    /// interrupt-handler recycling).
    pub fn recycles(&self) -> u64 {
        self.recycles.load(Ordering::Relaxed)
    }

    /// Allocation attempts that found the pool empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions.load(Ordering::Relaxed)
    }

    /// Maximum simultaneously outstanding buffers observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Buffers currently held by users (allocs − frees − recycles).
    pub fn outstanding(&self) -> u64 {
        self.allocs()
            .saturating_sub(self.frees())
            .saturating_sub(self.recycles())
    }

    fn note_alloc(&self) {
        let a = self.allocs.fetch_add(1, Ordering::Relaxed) + 1;
        let out = a
            .saturating_sub(self.frees.load(Ordering::Relaxed))
            .saturating_sub(self.recycles.load(Ordering::Relaxed));
        self.high_water.fetch_max(out, Ordering::Relaxed);
    }
}

struct PoolInner {
    free: Mutex<Vec<Box<[u8]>>>,
    /// Buffers parked on the simulated controller's receive queue.
    receive_queue: Mutex<VecDeque<Box<[u8]>>>,
    available: Condvar,
    capacity: usize,
    stats: PoolStats,
}

/// A fixed-size pool of packet buffers shared by the whole RPC machinery.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.inner.capacity)
            .field("free", &self.free_count())
            .field("outstanding", &self.stats().outstanding())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool with `capacity` pre-allocated 1514-byte buffers.
    ///
    /// All allocation happens here, once; the fast path only moves buffers
    /// between lists.
    pub fn new(capacity: usize) -> Self {
        let free = (0..capacity)
            // lint:allow(no-alloc-on-fast-path): the one-time slab
            // allocation at pool construction; never per packet.
            .map(|_| vec![0u8; BUFFER_SIZE].into_boxed_slice())
            .collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(free),
                receive_queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                capacity,
                stats: PoolStats::default(),
            }),
        }
    }

    /// The configured number of buffers.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of buffers currently on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Number of buffers parked on the receive queue.
    pub fn receive_queue_len(&self) -> usize {
        self.inner.receive_queue.lock().len()
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.inner.stats
    }

    /// Labels this pool's locks for `firefly-check` with their lint
    /// lock-order class ("pool"). No-op outside a checked schedule.
    pub fn check_labels(&self) {
        self.inner.free.check_label("pool");
        self.inner.receive_queue.check_label("pool");
    }

    /// Allocates a buffer, failing immediately if the pool is exhausted.
    ///
    /// This is the `Starter` path: "obtain a packet buffer for the call".
    /// When the free list is empty the Nub reclaims an idle buffer from
    /// the controller receive queue rather than failing.
    pub fn alloc(&self) -> Result<PacketBuf, PoolError> {
        let slab = {
            let mut free = self.inner.free.lock();
            match free.pop() {
                Some(s) => s,
                None => {
                    drop(free);
                    match self.inner.receive_queue.lock().pop_front() {
                        Some(s) => s,
                        None => {
                            self.inner.stats.exhaustions.fetch_add(1, Ordering::Relaxed);
                            return Err(PoolError::Exhausted);
                        }
                    }
                }
            }
        };
        self.inner.stats.note_alloc();
        Ok(PacketBuf {
            pool: BufferPool {
                inner: Arc::clone(&self.inner),
            },
            slab: Some(slab),
            len: 0,
        })
    }

    /// Allocates a buffer, blocking up to `timeout` for one to be freed.
    pub fn alloc_timeout(&self, timeout: Duration) -> Result<PacketBuf, PoolError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Ok(buf) = self.alloc() {
                return Ok(buf);
            }
            let mut free = self.inner.free.lock();
            if !free.is_empty() || self.receive_queue_len() > 0 {
                continue;
            }
            if self
                .inner
                .available
                .wait_until(&mut free, deadline)
                .timed_out()
            {
                return Err(PoolError::Timeout);
            }
        }
    }

    /// Moves a buffer straight onto the controller receive queue.
    ///
    /// The paper: "when putting the newly arrived packet into the call
    /// table, the interrupt handler removes the buffer found in that call
    /// table entry and adds it to the Ethernet controller's receive queue"
    /// (§3.2). The buffer is consumed without touching the free list.
    pub fn recycle_to_receive_queue(&self, mut buf: PacketBuf) {
        if let Some(slab) = buf.slab.take() {
            self.inner.receive_queue.lock().push_back(slab);
            self.inner.stats.recycles.fetch_add(1, Ordering::Relaxed);
            // Allocation can reclaim receive-queue buffers, so wake one
            // waiter — after a tap of the free-list mutex. `alloc_timeout`
            // decides to park while holding `free` (checking both the free
            // list and the receive queue) and then waits on `available`
            // releasing that same mutex; a notify that never synchronizes
            // on `free` can fire between that check and the wait and be
            // lost, leaving the waiter parked until its deadline.
            drop(self.inner.free.lock());
            self.inner.available.notify_one();
        }
    }

    /// Takes a buffer from the receive queue (what the controller does when
    /// a packet arrives), falling back to the free list when the queue is
    /// empty.
    pub fn take_receive_buffer(&self) -> Result<PacketBuf, PoolError> {
        if let Some(slab) = self.inner.receive_queue.lock().pop_front() {
            self.inner.stats.note_alloc();
            return Ok(PacketBuf {
                pool: BufferPool {
                    inner: Arc::clone(&self.inner),
                },
                slab: Some(slab),
                len: 0,
            });
        }
        self.alloc()
    }

    fn return_slab(&self, slab: Box<[u8]>) {
        self.inner.free.lock().push(slab);
        self.inner.stats.frees.fetch_add(1, Ordering::Relaxed);
        self.inner.available.notify_one();
    }
}

/// Aggregate counters across every shard of a [`ShardedPool`];
/// a by-value snapshot mirroring the [`PoolStats`] accessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatsSummary {
    allocs: u64,
    frees: u64,
    recycles: u64,
    exhaustions: u64,
    high_water: u64,
}

impl PoolStatsSummary {
    /// Total successful allocations across all shards.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total buffers returned through drop across all shards.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Buffers moved directly to a receive queue across all shards.
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Allocation attempts that found a shard empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }

    /// Sum of per-shard high-water marks (an upper bound on the true
    /// simultaneous peak across the whole pool).
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Buffers currently held by users (allocs − frees − recycles).
    pub fn outstanding(&self) -> u64 {
        self.allocs
            .saturating_sub(self.frees)
            .saturating_sub(self.recycles)
    }
}

/// A pool split into independent shards, each a full [`BufferPool`] with
/// its own locks, free list and receive queue.
///
/// The shard for a call is chosen by the runtime as a pure function of
/// the activity id (see `firefly_rpc::calltable::shard_for`), so a
/// caller thread and the demultiplexer touching the same call always
/// agree on which shard's locks they contend on — and calls on
/// different shards contend on nothing. A [`PacketBuf`] always returns
/// to the shard that allocated it (its owning [`BufferPool`]), so
/// cross-shard borrowing during exhaustion cannot leak buffers between
/// shards.
///
/// The exhaustion fallback scans the remaining shards in ascending
/// index order, matching the workspace-wide parametric lock discipline;
/// no two shard locks are ever held at once here (each attempt releases
/// its locks before the next shard is tried).
#[derive(Clone)]
pub struct ShardedPool {
    shards: Arc<[BufferPool]>,
}

impl fmt::Debug for ShardedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedPool")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("free", &self.free_count())
            .finish()
    }
}

impl ShardedPool {
    /// Creates a pool of `capacity` total buffers split across `shards`
    /// shards (at least one buffer per shard; the remainder goes to the
    /// lowest-indexed shards).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let base = (capacity / n).max(1);
        let extra = capacity.saturating_sub(base * n);
        let shards: Vec<BufferPool> = (0..n)
            .map(|i| BufferPool::new(base + usize::from(i < extra)))
            .collect();
        ShardedPool {
            shards: shards.into(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `idx` (wrapped, so any hash value is a valid index).
    pub fn shard(&self, idx: usize) -> &BufferPool {
        &self.shards[idx % self.shards.len()]
    }

    /// All shards, for per-shard introspection in tests.
    pub fn shards(&self) -> &[BufferPool] {
        &self.shards
    }

    /// Total configured buffers across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity()).sum()
    }

    /// Total buffers on free lists across all shards.
    pub fn free_count(&self) -> usize {
        self.shards.iter().map(|s| s.free_count()).sum()
    }

    /// Total buffers parked on receive queues across all shards.
    pub fn receive_queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.receive_queue_len()).sum()
    }

    /// Aggregate statistics across all shards.
    pub fn stats(&self) -> PoolStatsSummary {
        let mut sum = PoolStatsSummary::default();
        for s in &*self.shards {
            let st = s.stats();
            sum.allocs += st.allocs();
            sum.frees += st.frees();
            sum.recycles += st.recycles();
            sum.exhaustions += st.exhaustions();
            sum.high_water += st.high_water();
        }
        sum
    }

    /// Labels every shard's locks for `firefly-check`. No-op outside a
    /// checked schedule.
    pub fn check_labels(&self) {
        for s in &*self.shards {
            s.check_labels();
        }
    }

    /// Allocates from the home shard, falling back to the other shards
    /// in ascending index order when it is exhausted.
    pub fn alloc_from(&self, idx: usize) -> Result<PacketBuf, PoolError> {
        let n = self.shards.len();
        let home = idx % n;
        match self.shards[home].alloc() {
            Ok(buf) => Ok(buf),
            Err(_) => {
                for step in 1..n {
                    if let Ok(buf) = self.shards[(home + step) % n].alloc() {
                        return Ok(buf);
                    }
                }
                Err(PoolError::Exhausted)
            }
        }
    }

    /// Allocates from the home shard with a deadline, scanning the other
    /// shards between short blocking waits on the home shard.
    pub fn alloc_timeout_from(&self, idx: usize, timeout: Duration) -> Result<PacketBuf, PoolError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Ok(buf) = self.alloc_from(idx) {
                return Ok(buf);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(PoolError::Timeout);
            }
            // Every shard was empty at the instant of the scan: park
            // briefly on the home shard (frees there wake us directly;
            // frees elsewhere are caught by the rescan).
            let slice = Duration::from_millis(10).min(deadline - now);
            match self.shard(idx).alloc_timeout(slice) {
                Ok(buf) => return Ok(buf),
                Err(_) => continue,
            }
        }
    }

    /// Takes a receive-queue buffer from the home shard, falling back to
    /// an ascending-order allocation scan.
    pub fn take_receive_buffer_from(&self, idx: usize) -> Result<PacketBuf, PoolError> {
        match self.shard(idx).take_receive_buffer() {
            Ok(buf) => Ok(buf),
            Err(_) => self.alloc_from(idx),
        }
    }
}

/// Exclusive ownership of one pool buffer, returned to the pool on drop.
///
/// Dereferences to the first `len` bytes — the valid portion of the packet.
/// The full 1514-byte slab is reachable via [`PacketBuf::raw_mut`] for
/// header construction in place.
pub struct PacketBuf {
    pool: BufferPool,
    slab: Option<Box<[u8]>>,
    len: usize,
}

impl PacketBuf {
    /// Sets the number of valid bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`BUFFER_SIZE`]; packets larger than one
    /// Ethernet frame cannot exist.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= BUFFER_SIZE, "packet length {len} exceeds buffer");
        self.len = len;
    }

    /// Number of valid bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes are valid yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole 1514-byte slab, regardless of `len`.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        // The slab is Some from construction until drop; the empty-slice
        // fallback keeps the accessor panic-free for the demux thread.
        match self.slab.as_mut() {
            Some(slab) => slab,
            None => &mut [],
        }
    }

    /// Copies `src` into the buffer and sets the valid length.
    ///
    /// # Panics
    ///
    /// Panics if `src` exceeds [`BUFFER_SIZE`].
    pub fn fill_from(&mut self, src: &[u8]) {
        assert!(src.len() <= BUFFER_SIZE, "source exceeds buffer size");
        let Some(slab) = self.slab.as_mut() else {
            return;
        };
        slab[..src.len()].copy_from_slice(src);
        self.len = src.len();
    }

    /// Returns the owning pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Moves this buffer onto its *owning* pool's receive queue (the
    /// interrupt-handler recycling path). With a [`ShardedPool`] this
    /// keeps every slab in the shard that allocated it, so per-shard
    /// capacity is invariant no matter which thread recycles.
    pub fn recycle(self) {
        // UFCS: clones only the pool *handle* (an `Arc` bump), never the
        // slab — the slab moves back to its home shard with `self`.
        let pool = BufferPool::clone(&self.pool);
        pool.recycle_to_receive_queue(self);
    }
}

impl Deref for PacketBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self.slab.as_ref() {
            Some(slab) => &slab[..self.len],
            None => &[],
        }
    }
}

impl DerefMut for PacketBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        match self.slab.as_mut() {
            Some(slab) => &mut slab[..len],
            None => &mut [],
        }
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PacketBuf").field("len", &self.len).finish()
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(slab) = self.slab.take() {
            self.pool.return_slab(slab);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_round_trip() {
        let pool = BufferPool::new(2);
        assert_eq!(pool.free_count(), 2);
        let b = pool.alloc().unwrap();
        assert_eq!(pool.free_count(), 1);
        drop(b);
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.stats().allocs(), 1);
        assert_eq!(pool.stats().frees(), 1);
        assert_eq!(pool.stats().outstanding(), 0);
    }

    #[test]
    fn exhaustion_is_reported_not_grown() {
        let pool = BufferPool::new(1);
        let _a = pool.alloc().unwrap();
        assert_eq!(pool.alloc().unwrap_err(), PoolError::Exhausted);
        assert_eq!(pool.stats().exhaustions(), 1);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn len_discipline() {
        let pool = BufferPool::new(1);
        let mut b = pool.alloc().unwrap();
        assert!(b.is_empty());
        b.set_len(74);
        assert_eq!(b.len(), 74);
        assert_eq!(b.deref().len(), 74);
        b.fill_from(&[1, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversize_len_panics() {
        let pool = BufferPool::new(1);
        let mut b = pool.alloc().unwrap();
        b.set_len(BUFFER_SIZE + 1);
    }

    #[test]
    fn recycling_feeds_receive_queue() {
        let pool = BufferPool::new(2);
        let b = pool.alloc().unwrap();
        pool.recycle_to_receive_queue(b);
        assert_eq!(pool.receive_queue_len(), 1);
        assert_eq!(pool.free_count(), 1);
        // The controller picks the recycled buffer up first.
        let b2 = pool.take_receive_buffer().unwrap();
        assert_eq!(pool.receive_queue_len(), 0);
        drop(b2);
        assert_eq!(pool.free_count(), 2);
    }

    #[test]
    fn take_receive_buffer_falls_back_to_free_list() {
        let pool = BufferPool::new(1);
        let b = pool.take_receive_buffer().unwrap();
        assert_eq!(pool.free_count(), 0);
        drop(b);
    }

    #[test]
    fn blocking_alloc_wakes_on_free() {
        let pool = BufferPool::new(1);
        let held = pool.alloc().unwrap();
        let p2 = pool.clone();
        let t = std::thread::spawn(move || p2.alloc_timeout(Duration::from_secs(5)).is_ok());
        firefly_sync::test_sleep();
        drop(held);
        assert!(t.join().unwrap());
    }

    #[test]
    fn blocking_alloc_times_out() {
        let pool = BufferPool::new(1);
        let _held = pool.alloc().unwrap();
        assert_eq!(
            pool.alloc_timeout(Duration::from_millis(10)).unwrap_err(),
            PoolError::Timeout
        );
    }

    #[test]
    fn high_water_tracks_peak() {
        let pool = BufferPool::new(3);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        drop(a);
        let c = pool.alloc().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.stats().high_water(), 2);
    }

    #[test]
    fn sharded_pool_splits_capacity_and_isolates_shards() {
        let pool = ShardedPool::new(10, 4);
        assert_eq!(pool.shard_count(), 4);
        assert_eq!(pool.capacity(), 10);
        // Remainder buffers go to the lowest-indexed shards.
        assert_eq!(pool.shard(0).capacity(), 3);
        assert_eq!(pool.shard(1).capacity(), 3);
        assert_eq!(pool.shard(2).capacity(), 2);
        assert_eq!(pool.shard(3).capacity(), 2);
        let b = pool.alloc_from(2).unwrap();
        assert_eq!(pool.shard(2).free_count(), 1);
        assert_eq!(pool.shard(0).free_count(), 3);
        drop(b);
        // The buffer returns to the shard that allocated it.
        assert_eq!(pool.shard(2).free_count(), 2);
        assert_eq!(pool.stats().outstanding(), 0);
    }

    #[test]
    fn sharded_pool_borrows_ascending_on_exhaustion() {
        let pool = ShardedPool::new(4, 4);
        let _home = pool.alloc_from(1).unwrap();
        // Home shard 1 is now empty; the fallback scans 2, 3, 0.
        let borrowed = pool.alloc_from(1).unwrap();
        assert_eq!(pool.shard(2).free_count(), 0);
        drop(borrowed);
        assert_eq!(pool.shard(2).free_count(), 1);
        assert!(pool.shard(1).stats().exhaustions() >= 1);
    }

    #[test]
    fn sharded_pool_exhausts_only_when_every_shard_is_empty() {
        let pool = ShardedPool::new(4, 2);
        let held: Vec<_> = (0..4).map(|i| pool.alloc_from(i).unwrap()).collect();
        assert_eq!(pool.alloc_from(0).unwrap_err(), PoolError::Exhausted);
        assert_eq!(
            pool.alloc_timeout_from(0, Duration::from_millis(10))
                .unwrap_err(),
            PoolError::Timeout
        );
        drop(held);
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn sharded_pool_blocking_alloc_wakes_on_home_free() {
        let pool = ShardedPool::new(2, 2);
        let a = pool.alloc_from(0).unwrap();
        let _b = pool.alloc_from(1).unwrap();
        let p2 = pool.clone();
        let t =
            std::thread::spawn(move || p2.alloc_timeout_from(0, Duration::from_secs(5)).is_ok());
        firefly_sync::test_sleep();
        drop(a);
        assert!(t.join().unwrap());
    }

    #[test]
    fn sharded_pool_single_shard_matches_plain_pool() {
        let pool = ShardedPool::new(3, 1);
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.capacity(), 3);
        let b = pool.take_receive_buffer_from(7).unwrap();
        pool.shard(0).recycle_to_receive_queue(b);
        assert_eq!(pool.receive_queue_len(), 1);
        assert_eq!(pool.stats().recycles(), 1);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = BufferPool::new(2);
        let clone = pool.clone();
        let b = clone.alloc().unwrap();
        assert_eq!(pool.free_count(), 1);
        drop(b);
        assert_eq!(pool.free_count(), 2);
    }
}
