//! Idle-activity reclamation: server state stays bounded.

use firefly_idl::{test_interface, Value};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::sync::Arc;
use std::time::Duration;

fn pair() -> (Arc<Endpoint>, Arc<Endpoint>) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(8)?.fill(1);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    (server, caller)
}

#[test]
fn idle_activities_are_reclaimed() {
    // A dedicated setup whose Null handler is slow enough that all eight
    // calls are in flight at once: activity slots are pooled per client,
    // so eight *distinct* activities only exist if no call completes
    // (releasing its slot for reuse) before the last one starts. The
    // server tracks an activity as soon as its call packet arrives, so
    // queued calls count even with fewer worker threads than callers.
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| {
            std::thread::sleep(Duration::from_millis(40));
            Ok(())
        })
        .on_call("MaxResult", |_a, _w| Ok(()))
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let c = client.clone();
        let b = barrier.clone();
        handles.push(std::thread::spawn(move || {
            b.wait();
            c.call("Null", &[]).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(server.tracked_activities() >= 8);
    std::thread::sleep(Duration::from_millis(30));
    let pruned = server.prune_idle_activities(Duration::from_millis(10));
    assert!(pruned >= 8, "pruned {pruned}");
    assert_eq!(server.tracked_activities(), 0);
}

#[test]
fn active_conversations_survive_pruning() {
    let (server, caller) = pair();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    // A conversation used moments ago stays.
    let pruned = server.prune_idle_activities(Duration::from_secs(60));
    assert_eq!(pruned, 0);
    assert!(server.tracked_activities() >= 1);
}

#[test]
fn pruning_releases_retained_pool_buffers() {
    let (server, caller) = pair();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    // MaxResult leaves a retained single-packet result in a pool buffer.
    client.call("MaxResult", &[Value::char_array(8)]).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let before = server.pool().free_count() + server.pool().receive_queue_len();
    server.prune_idle_activities(Duration::from_millis(5));
    std::thread::sleep(Duration::from_millis(10));
    let after = server.pool().free_count() + server.pool().receive_queue_len();
    assert!(after >= before, "retained buffer returned to the pool");
    assert_eq!(server.tracked_activities(), 0);
}

#[test]
fn conversation_restarts_after_pruning() {
    // A pruned activity must be able to call again: the server treats it
    // as a fresh conversation (sequence numbers keep increasing, so the
    // duplicate filter stays correct).
    let (server, caller) = pair();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    server.prune_idle_activities(Duration::from_millis(5));
    client.call("Null", &[]).unwrap();
    assert_eq!(caller.stats().calls_completed(), 2);
}
