//! Tests for the authorization hook (§7's "structural hooks for
//! authenticated and secure calls").

use firefly_idl::{test_interface, Value};
use firefly_rpc::auth::GateFn;
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, RpcError, ServiceBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pair() -> (Arc<Endpoint>, Arc<Endpoint>) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let executed = Arc::new(AtomicU64::new(0));
    let ex = Arc::clone(&executed);
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", move |_a, _w| {
            ex.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(4)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    (server, caller)
}

#[test]
fn gate_refuses_selected_procedures() {
    let (server, caller) = pair();
    // Refuse MaxResult (procedure index 1) on the Test interface; allow
    // everything else, including the binder.
    let test_uid = test_interface().uid();
    server.set_call_gate(Some(Arc::new(GateFn(move |_caller, uid, proc_| {
        if uid == test_uid && proc_ == 1 {
            Err("MaxResult is restricted".into())
        } else {
            Ok(())
        }
    }))));
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    let Err(err) = client.call("MaxResult", &[Value::char_array(4)]) else {
        panic!("gated procedure must fail");
    };
    match err {
        RpcError::Remote(m) => assert!(m.contains("MaxResult is restricted"), "{m}"),
        other => panic!("unexpected: {other}"),
    }
    // Refusal does not wedge the activity.
    client.call("Null", &[]).unwrap();
}

#[test]
fn gate_can_be_cleared() {
    let (server, caller) = pair();
    server.set_call_gate(Some(Arc::new(GateFn(|_c, _u, _p| {
        Err("locked down".into())
    }))));
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    assert!(client.call("Null", &[]).is_err());
    server.set_call_gate(None);
    client.call("Null", &[]).unwrap();
}

#[test]
fn gate_sees_the_caller_activity() {
    let (server, caller) = pair();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    server.set_call_gate(Some(Arc::new(GateFn(
        move |activity: firefly_wire::ActivityId, _u, _p| {
            seen2.store(u64::from(activity.machine), Ordering::Relaxed);
            Ok(())
        },
    ))));
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    assert_ne!(seen.load(Ordering::Relaxed), 0, "gate saw a machine id");
}
