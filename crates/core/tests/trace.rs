//! The trace layer's contract: records are complete and ordered, the
//! ring never garbles them, and tracing is observability — never
//! behaviour.

use firefly_idl::{test_interface, Value};
use firefly_propcheck::{check, prop_assert, prop_assert_eq};
use firefly_rpc::trace::{Role, Stamp, TraceRecord, Tracer, CALLER_STEPS, SERVER_STEPS};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

fn loopback_pair(config: Config) -> (Arc<Endpoint>, Arc<Endpoint>, firefly_rpc::Client) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), config.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), config).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0xab);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    (server, caller, client)
}

/// A traced Null() records every expected caller and server step exactly
/// once per call, in order.
#[test]
fn traced_null_records_every_step_once() {
    let (server, caller, client) = loopback_pair(Config::traced());
    const CALLS: usize = 25;
    for _ in 0..CALLS {
        client.call("Null", &[]).unwrap();
    }
    let mut caller_records = Vec::new();
    caller.tracer().drain(|r| caller_records.push(*r));
    assert_eq!(caller_records.len(), CALLS);
    for rec in &caller_records {
        assert_eq!(rec.role, Role::Caller);
        assert_eq!(rec.procedure, 0, "Null is procedure #0");
        assert!(rec.is_complete(), "missing caller stamps: {:?}", rec.stamps);
        // Exactly once: the slots past the caller's seven stay unset.
        assert_eq!(rec.stamps[7], 0);
        for (name, from, to) in CALLER_STEPS {
            let delta = rec.step_delta(from, to).unwrap();
            assert!(delta >= 0, "step `{name}` went backwards: {delta} ns");
        }
        assert!(rec.span_nanos() > 0);
    }
    // The server half: one complete record per call, demux stamp first.
    // The server pushes its record after sending the result, so the last
    // call can return here before its server record lands — wait for it.
    for _ in 0..200 {
        if server.tracer().recorded() >= CALLS as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut server_records = Vec::new();
    server.tracer().drain(|r| server_records.push(*r));
    assert_eq!(server_records.len(), CALLS);
    for rec in &server_records {
        assert_eq!(rec.role, Role::Server);
        assert!(rec.is_complete(), "missing server stamps: {:?}", rec.stamps);
        assert_eq!(rec.stamps[4], 0);
        for (name, from, to) in SERVER_STEPS {
            let delta = rec.step_delta(from, to).unwrap();
            assert!(delta >= 0, "server step `{name}` went backwards");
        }
    }
    assert_eq!(caller.stats().trace_records(), CALLS as u64);
}

/// Tracing can be toggled at runtime, and while off nothing is recorded.
#[test]
fn runtime_toggle_controls_recording() {
    let (_server, caller, client) = loopback_pair(Config::default());
    client.call("Null", &[]).unwrap();
    assert_eq!(caller.tracer().recorded(), 0);
    caller.set_tracing(true);
    client.call("Null", &[]).unwrap();
    caller.set_tracing(false);
    client.call("Null", &[]).unwrap();
    let report = caller.trace_report();
    assert_eq!(report.caller.records, 1);
    assert_eq!(caller.stats().trace_records(), 1);
}

/// `Endpoint::trace_report` aggregates per-step histograms whose step
/// sum equals the records' own spans (contiguous steps, no gaps).
#[test]
fn trace_report_step_sum_matches_spans() {
    let (_server, caller, client) = loopback_pair(Config::traced());
    for _ in 0..40 {
        client.call("Null", &[]).unwrap();
    }
    let report = caller.trace_report();
    assert_eq!(report.caller.records, 40);
    assert_eq!(report.dropped, 0);
    for (name, h) in &report.caller.steps {
        assert_eq!(h.count(), 40, "step `{name}` missing observations");
    }
    let accounted = report.caller.accounted_mean_us();
    let total = report.caller.total.mean();
    // The caller steps tile the span exactly, so their means must sum to
    // the span mean up to histogram bucketing error (~2.2% per bucket).
    assert!(
        (accounted - total).abs() / total < 0.10,
        "step sum {accounted:.2} us vs span mean {total:.2} us"
    );
}

/// Counters and results are identical with tracing enabled vs disabled:
/// tracing is observability, not behaviour.
#[test]
fn tracing_does_not_change_counters_or_results() {
    // Generous retransmit timeout so no timer can fire during the
    // microsecond-scale loopback calls — keeps every counter
    // deterministic across the two runs.
    let base = Config {
        retransmit_initial: Duration::from_secs(2),
        ..Config::default()
    };
    let run = |trace: bool| {
        let config = Config { trace, ..base.clone() };
        let (server, caller, client) = loopback_pair(config);
        let mut results = Vec::new();
        for i in 0..30 {
            results.push(client.call("Null", &[]).unwrap());
            if i % 5 == 0 {
                results.push(client.call("MaxResult", &[Value::char_array(1440)]).unwrap());
            }
        }
        // Quiesce before snapshotting: trailing acks and demux-side
        // counter bumps land asynchronously after the last call returns,
        // so wait until two reads 25 ms apart agree (and snapshot before
        // dropping the client, whose Drop sends more acks).
        let settle = |e: &Arc<Endpoint>| {
            let mut last = e.stats().snapshot();
            for _ in 0..80 {
                std::thread::sleep(Duration::from_millis(25));
                let now = e.stats().snapshot();
                if now == last {
                    return now;
                }
                last = now;
            }
            last
        };
        (results, settle(&caller), settle(&server))
    };
    let (results_off, caller_off, server_off) = run(false);
    let (results_on, caller_on, server_on) = run(true);
    assert_eq!(results_off, results_on, "tracing changed call results");

    for (role, off, on) in [
        ("caller", &caller_off, &caller_on),
        ("server", &server_off, &server_on),
    ] {
        let mut wakeup_sum = (0u64, 0u64);
        for ((name_a, a), (name_b, b)) in off.iter().zip(on.iter()) {
            assert_eq!(name_a, name_b);
            match *name_a {
                // The only counter tracing is *supposed* to move.
                "trace_records" => {
                    assert_eq!(*a, 0, "records recorded with tracing off");
                }
                // Which of the two fast-path counters a packet lands in
                // depends on worker scheduling; their sum is invariant.
                "direct_wakeups" | "slow_path_queued" => {
                    wakeup_sum.0 += a;
                    wakeup_sum.1 += b;
                }
                // Server-side retained-result release races benignly:
                // the worker stores the new retained buffer after
                // sending the result, but the caller's *next* call can
                // reach `begin_call` first. Whichever side wins, the
                // old buffer goes back to the pool — via the counted
                // receive-queue recycle or via a plain (uncounted)
                // free — so this counter varies run to run even with
                // tracing off both times. The caller's copy (the Ender
                // recycle, one per call) stays exact.
                "buffers_recycled" if role == "server" => {}
                _ => assert_eq!(
                    a, b,
                    "{role} counter `{name_a}` differs with tracing on"
                ),
            }
        }
        assert_eq!(
            wakeup_sum.0, wakeup_sum.1,
            "{role} wakeup total differs with tracing on"
        );
    }
}

/// Ring wraparound: whatever the capacity and push count, a drain yields
/// exactly the newest `min(pushed, capacity)` records, oldest first, with
/// their contents intact.
#[test]
fn prop_ring_wraparound_keeps_newest_in_order() {
    check("ring_wraparound_keeps_newest_in_order", 200, |g| {
        let capacity = g.usize_in(1..40);
        let pushes = g.usize_in(0..120);
        let tracer = Tracer::new(capacity);
        tracer.set_enabled(true);
        for i in 0..pushes {
            let mut rec = TraceRecord::empty();
            rec.procedure = i as u16;
            // Step ordering encoded in the stamps: slot k of record i is
            // i*1000 + k + 1, strictly increasing within a record.
            for (k, s) in rec.stamps.iter_mut().enumerate() {
                *s = (i * 1000 + k + 1) as u64;
            }
            tracer.push(rec);
        }
        let mut drained = Vec::new();
        let dropped = tracer.drain(|r| drained.push(*r));
        let expect_len = pushes.min(capacity);
        prop_assert_eq!(drained.len(), expect_len);
        prop_assert_eq!(dropped, (pushes - expect_len) as u64);
        prop_assert_eq!(tracer.recorded(), pushes as u64);
        for (j, rec) in drained.iter().enumerate() {
            let i = pushes - expect_len + j;
            prop_assert_eq!(rec.procedure, i as u16, "record {} out of order", j);
            for (k, s) in rec.stamps.iter().enumerate() {
                prop_assert_eq!(*s, (i * 1000 + k + 1) as u64, "stamp garbled");
            }
        }
        Ok(())
    });
}

/// Concurrent callers: records pushed from many threads never interleave
/// *within* one record — every drained record is internally consistent
/// (one thread's procedure id, strictly increasing stamps) and complete.
#[test]
fn prop_concurrent_records_never_interleave() {
    check("concurrent_records_never_interleave", 20, |g| {
        let threads = g.usize_in(2..5);
        let per_thread = g.usize_in(5..40);
        let capacity = threads * per_thread + 8;
        let tracer = Arc::new(Tracer::new(capacity));
        tracer.set_enabled(true);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        let mut span = tracer.caller_span(t as u16);
                        for s in [
                            Stamp::BufferAcquired,
                            Stamp::MarshalDone,
                            Stamp::Sent,
                            Stamp::ResultReceived,
                            Stamp::UnmarshalDone,
                            Stamp::CallEnd,
                        ] {
                            span.stamp(s);
                        }
                        span.finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut counts = vec![0usize; threads];
        let mut garbled = None;
        tracer.drain(|rec| {
            let t = rec.procedure as usize;
            if t >= threads || !rec.is_complete() {
                garbled = Some(format!("record {:?}", rec.stamps));
                return;
            }
            counts[t] += 1;
            // Stamps are taken in call order on one thread, so within a
            // record they must be non-decreasing; a torn/mixed record
            // would break this.
            for w in rec.stamps[..7].windows(2) {
                if w[1] < w[0] {
                    garbled = Some(format!("stamps regress: {:?}", rec.stamps));
                }
            }
        });
        prop_assert!(garbled.is_none(), "{}", garbled.unwrap_or_default());
        for (t, &n) in counts.iter().enumerate() {
            prop_assert_eq!(n, per_thread, "thread {} lost records", t);
        }
        Ok(())
    });
}

/// Arbitrary drain points: interleaving pushes and drains behaves exactly
/// like a bounded FIFO model, with drop accounting to match.
#[test]
fn prop_arbitrary_drain_points_match_fifo_model() {
    check("arbitrary_drain_points_match_fifo_model", 150, |g| {
        let capacity = g.usize_in(1..24);
        let ops = g.usize_in(1..80);
        let tracer = Tracer::new(capacity);
        tracer.set_enabled(true);
        let mut model: VecDeque<u16> = VecDeque::new();
        let mut model_dropped = 0u64;
        let mut next_id = 0u16;
        for _ in 0..ops {
            if g.bool() {
                let mut rec = TraceRecord::empty();
                rec.procedure = next_id;
                rec.stamps[0] = u64::from(next_id) + 1;
                tracer.push(rec);
                model.push_back(next_id);
                if model.len() > capacity {
                    model.pop_front();
                    model_dropped += 1;
                }
                next_id += 1;
            } else {
                let mut drained = Vec::new();
                let dropped = tracer.drain(|r| drained.push(r.procedure));
                let expected: Vec<u16> = model.drain(..).collect();
                prop_assert_eq!(drained, expected, "drain order diverged");
                prop_assert_eq!(dropped, model_dropped, "drop count diverged");
            }
        }
        let mut drained = Vec::new();
        tracer.drain(|r| drained.push(r.procedure));
        let expected: Vec<u16> = model.drain(..).collect();
        prop_assert_eq!(drained, expected, "final drain diverged");
        Ok(())
    });
}
