//! End-to-end protocol tests over the loopback Ethernet and real UDP.

use firefly_idl::{parse_interface, test_interface, Value};
use firefly_rpc::transport::{FaultPlan, LoopbackNet, UdpTransport};
use firefly_rpc::{Config, Endpoint, RpcError, ServiceBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Builds the paper's Test service: Null, MaxResult, MaxArg.
fn test_service() -> Arc<dyn firefly_rpc::Service> {
    ServiceBuilder::new(test_interface())
        .on_call("Null", |_args, _w| Ok(()))
        .on_call("MaxResult", |_args, w| {
            let out = w.next_bytes(1440)?;
            for (i, b) in out.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            Ok(())
        })
        .on_call("MaxArg", |args, _w| {
            let data = args[0].bytes().expect("VAR IN arrives in place");
            assert_eq!(data.len(), 1440);
            Ok(())
        })
        .build()
        .unwrap()
}

fn loopback_pair(config: Config) -> (LoopbackNet, Arc<Endpoint>, Arc<Endpoint>) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), config.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), config).unwrap();
    server.export(test_service()).unwrap();
    (net, server, caller)
}

#[test]
fn null_call_round_trips() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    let r = client.call("Null", &[]).unwrap();
    assert!(r.is_empty());
}

#[test]
fn max_result_returns_1440_bytes() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    let r = client
        .call("MaxResult", &[Value::char_array(1440)])
        .unwrap();
    let bytes = r[0].as_bytes().unwrap();
    assert_eq!(bytes.len(), 1440);
    assert!(bytes.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
}

#[test]
fn max_arg_sends_1440_bytes() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("MaxArg", &[Value::char_array(1440)]).unwrap();
}

#[test]
fn healthy_run_has_zero_retransmissions_and_all_fast_path() {
    // Generous retransmission timers so host scheduling hiccups (this
    // suite runs many endpoints in parallel) cannot fire a spurious
    // retransmission and fail the zero-retransmission assertion.
    let cfg = Config {
        retransmit_initial: Duration::from_secs(5),
        ..Config::default()
    };
    let (_net, server, caller) = loopback_pair(cfg);
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    for _ in 0..50 {
        client.call("Null", &[]).unwrap();
    }
    assert_eq!(caller.stats().retransmissions(), 0);
    assert_eq!(caller.stats().calls_completed(), 50);
    assert_eq!(server.stats().duplicate_calls(), 0);
    assert_eq!(caller.stats().validation_drops(), 0);
    // Every result woke the caller directly from the demux thread. The
    // demux bumps its counters just after the wakeup, so give the last
    // increment a moment to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while caller.stats().direct_wakeups() < 50 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        caller.stats().direct_wakeups() >= 50,
        "direct wakeups {} of 50; stats:\n{}",
        caller.stats().direct_wakeups(),
        caller.stats()
    );
}

#[test]
fn sequential_calls_reuse_one_activity() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    for _ in 0..10 {
        client.call("Null", &[]).unwrap();
    }
    // Implicit acks mean the server retains exactly one result for the
    // single activity; no explicit acks were needed.
    assert_eq!(server.stats().calls_received(), 10);
    drop(client);
    let _ = server;
}

#[test]
fn concurrent_callers_from_many_threads() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    let completed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let client = client.clone();
        let completed = Arc::clone(&completed);
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                client
                    .call("MaxResult", &[Value::char_array(1440)])
                    .unwrap();
                completed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(completed.load(Ordering::Relaxed), 200);
    assert_eq!(server.stats().calls_received(), 200);
    assert_eq!(caller.stats().retransmissions(), 0);
}

#[test]
fn lost_packets_are_retransmitted() {
    let (net, server, caller) = loopback_pair(Config::fast_retry());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    // 30% loss: calls still complete, via retransmission.
    net.set_faults(FaultPlan {
        loss: 0.3,
        ..FaultPlan::default()
    });
    for _ in 0..30 {
        client.call("Null", &[]).unwrap();
    }
    assert!(
        caller.stats().retransmissions() > 0,
        "30% loss must trigger retransmissions"
    );
    assert_eq!(caller.stats().calls_completed(), 30);
}

#[test]
fn corrupted_packets_are_dropped_by_checksum_then_recovered() {
    let (net, server, caller) = loopback_pair(Config::fast_retry());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    net.set_faults(FaultPlan {
        corrupt: 0.3,
        ..FaultPlan::default()
    });
    for _ in 0..20 {
        client
            .call("MaxResult", &[Value::char_array(1440)])
            .unwrap();
    }
    let drops = caller.stats().validation_drops() + server.stats().validation_drops();
    assert!(drops > 0, "30% corruption must be caught by checksums");
    assert_eq!(caller.stats().calls_completed(), 20);
}

#[test]
fn duplicated_packets_are_filtered() {
    let (net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    net.set_faults(FaultPlan {
        duplicate: 1.0,
        ..FaultPlan::default()
    });
    for i in 0..20 {
        let r = client
            .call("MaxResult", &[Value::char_array(1440)])
            .unwrap();
        assert_eq!(r[0].as_bytes().unwrap().len(), 1440, "call {i}");
    }
    // Every duplicate call was answered from the retained result or
    // filtered; every duplicate result was orphaned.
    assert_eq!(caller.stats().calls_completed(), 20);
    assert!(server.stats().duplicate_calls() > 0);
    assert!(caller.stats().orphan_results() > 0);
}

#[test]
fn unreachable_server_fails_after_max_transmissions() {
    let net = LoopbackNet::new();
    let caller = Endpoint::new(net.station(2), Config::fast_retry()).unwrap();
    // Station 1 does not exist; frames vanish.
    let ghost: std::net::SocketAddr = "10.0.0.1:3072".parse().unwrap();
    let client = caller.bind(&test_interface(), ghost).unwrap();
    let err = client.call("Null", &[]).unwrap_err();
    match err {
        RpcError::CallFailed { transmissions } => {
            assert_eq!(transmissions, Config::fast_retry().max_transmissions)
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn slow_server_is_probed_not_failed() {
    let iface =
        parse_interface("DEFINITION MODULE Slow; PROCEDURE Nap(ms: INTEGER); END Slow.").unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Nap", |args, _w| {
            let ms = args[0].value().and_then(Value::as_integer).unwrap_or(0);
            std::thread::sleep(Duration::from_millis(ms as u64));
            Ok(())
        })
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let mut cfg = Config::fast_retry();
    cfg.retransmit_max = Duration::from_millis(20);
    let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    // The call takes far longer than max_transmissions * timeout, but the
    // server acknowledges retransmissions and answers probes, so the call
    // must NOT fail.
    client.call("Nap", &[Value::Integer(600)]).unwrap();
    assert!(server.stats().duplicate_calls() > 0 || server.stats().probes_answered() > 0);
}

#[test]
fn unknown_interface_is_a_remote_error() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let other = parse_interface("DEFINITION MODULE Ghost; PROCEDURE Boo(); END Ghost.").unwrap();
    let client = caller.bind(&other, server.address()).unwrap();
    let err = client.call("Boo", &[]).unwrap_err();
    match err {
        RpcError::Remote(m) => assert!(m.contains("no such interface")),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn handler_errors_propagate_to_caller() {
    let iface = parse_interface("DEFINITION MODULE F; PROCEDURE Fail(); END F.").unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Fail", |_a, _w| Err(RpcError::Remote("deliberate".into())))
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    let err = client.call("Fail", &[]).unwrap_err();
    assert!(err.to_string().contains("deliberate"));
    // A failed call must not wedge the activity: the next call works.
    let err2 = client.call("Fail", &[]).unwrap_err();
    assert!(err2.to_string().contains("deliberate"));
}

#[test]
fn multi_packet_arguments_and_results() {
    let iface = parse_interface(
        "DEFINITION MODULE Big;
           PROCEDURE Echo(VAR IN input: ARRAY OF CHAR; VAR OUT output: ARRAY OF CHAR);
         END Big.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Echo", |args, w| {
            let input = args[0].bytes().expect("in place");
            let out = w.next_bytes(input.len())?;
            out.copy_from_slice(input);
            Ok(())
        })
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();

    for size in [5000usize, 20_000, 100_000] {
        let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let r = client
            .call(
                "Echo",
                &[Value::Bytes(input.clone()), Value::Bytes(Vec::new())],
            )
            .unwrap();
        assert_eq!(r[0].as_bytes().unwrap(), &input[..], "size {size}");
    }
    assert!(caller.stats().fragments_sent() > 0);
    assert!(server.stats().fragments_sent() > 0);
}

#[test]
fn multi_packet_survives_loss() {
    let iface = parse_interface(
        "DEFINITION MODULE Big;
           PROCEDURE Echo(VAR IN input: ARRAY OF CHAR; VAR OUT output: ARRAY OF CHAR);
         END Big.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Echo", |args, w| {
            let input = args[0].bytes().expect("in place");
            let out = w.next_bytes(input.len())?;
            out.copy_from_slice(input);
            Ok(())
        })
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::fast_retry()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::fast_retry()).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    net.set_faults(FaultPlan {
        loss: 0.15,
        ..FaultPlan::default()
    });
    let input: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
    for _ in 0..5 {
        let r = client
            .call(
                "Echo",
                &[Value::Bytes(input.clone()), Value::Bytes(Vec::new())],
            )
            .unwrap();
        assert_eq!(r[0].as_bytes().unwrap(), &input[..]);
    }
}

#[test]
fn works_over_real_udp_localhost() {
    let server_t = UdpTransport::localhost().unwrap();
    let caller_t = UdpTransport::localhost().unwrap();
    let server = Endpoint::new(server_t, Config::default()).unwrap();
    let caller = Endpoint::new(caller_t, Config::default()).unwrap();
    server.export(test_service()).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    let r = client
        .call("MaxResult", &[Value::char_array(1440)])
        .unwrap();
    assert_eq!(r[0].as_bytes().unwrap().len(), 1440);
    client.call("MaxArg", &[Value::char_array(1440)]).unwrap();
    assert_eq!(caller.stats().retransmissions(), 0);
}

#[test]
fn delayed_packets_cause_retransmissions_but_correct_results() {
    // Fixed 40 ms delivery delay against a 5 ms first retransmit: every
    // call retransmits several times, the server answers duplicates from
    // its retained result, and the caller sees exactly one correct
    // result per call.
    let (net, server, caller) = loopback_pair(Config::fast_retry());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    net.set_faults(FaultPlan {
        delay: Some(Duration::from_millis(40)),
        ..FaultPlan::default()
    });
    for _ in 0..5 {
        let r = client
            .call("MaxResult", &[Value::char_array(1440)])
            .unwrap();
        assert_eq!(r[0].as_bytes().unwrap().len(), 1440);
    }
    assert!(caller.stats().retransmissions() > 0);
    assert!(server.stats().duplicate_calls() > 0 || server.stats().probes_answered() > 0);
    assert_eq!(caller.stats().calls_completed(), 5);
}

#[test]
fn interpreted_stubs_interoperate_with_compiled() {
    // Table IX's axis on the real stack: an interpreted-stub caller talks
    // to a compiled-stub server (and vice versa) because both produce
    // byte-identical wire data.
    let net = LoopbackNet::new();
    let interp_cfg = Config {
        stub_style: firefly_idl::StubStyle::Interpreted,
        ..Config::default()
    };
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), interp_cfg).unwrap();
    server.export(test_service()).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    let r = client
        .call("MaxResult", &[Value::char_array(1440)])
        .unwrap();
    assert_eq!(r[0].as_bytes().unwrap().len(), 1440);
    client.call("MaxArg", &[Value::char_array(1440)]).unwrap();
}

#[test]
fn checksums_can_be_disabled_like_424() {
    // §4.2.4: omit UDP checksums. Calls still work; corruption would go
    // undetected (tested at the wire layer).
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::without_checksums()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::without_checksums()).unwrap();
    server.export(test_service()).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    for _ in 0..10 {
        client.call("Null", &[]).unwrap();
    }
    assert_eq!(caller.stats().calls_completed(), 10);
}

#[test]
fn buffers_are_conserved_after_heavy_traffic() {
    let (_net, server, caller) = loopback_pair(Config::default());
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    for _ in 0..200 {
        client
            .call("MaxResult", &[Value::char_array(1440)])
            .unwrap();
    }
    drop(client);
    // Give in-flight acks a moment to drain.
    std::thread::sleep(Duration::from_millis(100));
    let cp = caller.pool();
    // The demux thread always holds one receive buffer while blocked in
    // recv; anything beyond that is a leak.
    assert!(cp.stats().outstanding() <= 1, "caller leaks buffers");
    assert!(caller.stats().buffers_recycled() > 0);
}

#[test]
fn two_interfaces_coexist_on_one_endpoint() {
    let add_iface =
        parse_interface("DEFINITION MODULE Math; PROCEDURE Add(a, b: INTEGER): INTEGER; END Math.")
            .unwrap();
    let add_service = ServiceBuilder::new(add_iface.clone())
        .on_call("Add", |args, w| {
            let a = args[0].value().and_then(Value::as_integer).unwrap_or(0);
            let b = args[1].value().and_then(Value::as_integer).unwrap_or(0);
            w.next_value(&Value::Integer(a.wrapping_add(b)))?;
            Ok(())
        })
        .build()
        .unwrap();
    let (_net, server, caller) = loopback_pair(Config::default());
    server.export(add_service).unwrap();
    let t = caller.bind(&test_interface(), server.address()).unwrap();
    let m = caller.bind(&add_iface, server.address()).unwrap();
    t.call("Null", &[]).unwrap();
    let r = m
        .call("Add", &[Value::Integer(40), Value::Integer(2)])
        .unwrap();
    assert_eq!(r[0], Value::Integer(42));
}

#[test]
fn endpoint_can_call_itself() {
    let net = LoopbackNet::new();
    let solo = Endpoint::new(net.station(1), Config::default()).unwrap();
    solo.export(test_service()).unwrap();
    let client = solo.bind(&test_interface(), solo.address()).unwrap();
    let r = client
        .call("MaxResult", &[Value::char_array(1440)])
        .unwrap();
    assert_eq!(r[0].as_bytes().unwrap().len(), 1440);
}

#[test]
fn server_shutdown_fails_callers_instead_of_hanging() {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::fast_retry()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::fast_retry()).unwrap();
    server.export(test_service()).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    // Take the server down; the next call must fail in bounded time.
    server.shutdown();
    let start = std::time::Instant::now();
    let err = client.call("Null", &[]);
    assert!(err.is_err(), "call against a dead server must fail");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "failure took {:?}",
        start.elapsed()
    );
}

#[test]
fn exporting_same_interface_twice_fails() {
    let (_net, server, _caller) = loopback_pair(Config::default());
    let err = server.export(test_service()).unwrap_err();
    assert!(err.to_string().contains("already exported"));
}
