//! Chaos testing: the protocol must deliver correct results under any
//! combination of loss, duplication, corruption and delay.

use firefly_idl::{parse_interface, Value};
use firefly_propcheck::{check, prop_assert, prop_assert_eq};
use firefly_rpc::transport::{FaultPlan, LoopbackNet};
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::time::Duration;

fn echo_setup(
    net: &LoopbackNet,
) -> (
    std::sync::Arc<Endpoint>,
    std::sync::Arc<Endpoint>,
    firefly_rpc::Client,
) {
    echo_setup_with(net, false)
}

fn echo_setup_with(
    net: &LoopbackNet,
    trace: bool,
) -> (
    std::sync::Arc<Endpoint>,
    std::sync::Arc<Endpoint>,
    firefly_rpc::Client,
) {
    let iface = parse_interface(
        "DEFINITION MODULE Echo;
           PROCEDURE Twice(n: INTEGER): INTEGER;
           PROCEDURE Blob(VAR IN data: ARRAY OF CHAR; VAR OUT copy: ARRAY OF CHAR);
         END Echo.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Twice", |args, w| {
            let n = args[0].value().and_then(Value::as_integer).unwrap();
            w.next_value(&Value::Integer(n.wrapping_mul(2)))?;
            Ok(())
        })
        .on_call("Blob", |args, w| {
            let data = args[0].bytes().unwrap();
            w.next_bytes(data.len())?.copy_from_slice(data);
            Ok(())
        })
        .build()
        .unwrap();
    let mut cfg = Config::fast_retry();
    cfg.max_transmissions = 40; // Chaos needs patience.
    cfg.retransmit_max = Duration::from_millis(50);
    cfg.trace = trace;
    let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    (server, caller, client)
}

/// Small calls survive any moderate fault mix with correct results.
#[test]
fn calls_survive_fault_mix() {
    check("calls_survive_fault_mix", 8, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.25;
        let duplicate = g.f64_unit() * 0.5;
        let corrupt = g.f64_unit() * 0.15;
        let net = LoopbackNet::with_seed(seed);
        let (_server, _caller, client) = echo_setup(&net);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt,
            delay: None,
        });
        for i in 0..15i32 {
            let r = client.call("Twice", &[Value::Integer(i)]).unwrap();
            prop_assert_eq!(r[0].clone(), Value::Integer(2 * i), "call {}", i);
        }
        Ok(())
    });
}

/// Fragmented bodies survive loss and duplication byte-exactly.
#[test]
fn fragments_survive_fault_mix() {
    check("fragments_survive_fault_mix", 8, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.12;
        let duplicate = g.f64_unit() * 0.3;
        let size = g.usize_in(2000..12_000);
        let net = LoopbackNet::with_seed(seed);
        let (_server, _caller, client) = echo_setup(&net);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt: 0.0,
            delay: None,
        });
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let r = client
            .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
            .unwrap();
        prop_assert_eq!(r[0].as_bytes().unwrap(), &data[..]);
        Ok(())
    });
}

/// The sharded dispatch path under a full fault mix: several concurrent
/// caller activities (spread by `shard_for` over per-worker queues, with
/// stealing between them) drive a 4-worker server through loss,
/// duplication and delay-induced reordering. Every call's service
/// procedure must run exactly once — duplicate filtering lives in the
/// per-activity state, so neither a retransmission nor a steal to
/// another worker can double-dispatch — and when the endpoints shut
/// down, every shard of the server's buffer pool must get all of its
/// buffers back: retained results, reassembly state and in-flight
/// receive buffers all return to their home shard.
#[test]
fn sharded_dispatch_survives_fault_mix_exactly_once() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    check("sharded_dispatch_exactly_once", 6, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.2;
        let duplicate = g.f64_unit() * 0.4;
        let delay_us = g.usize_in(0..1500);
        let net = LoopbackNet::with_seed(seed);

        let iface = parse_interface(
            "DEFINITION MODULE Count;
               PROCEDURE Bump(n: INTEGER): INTEGER;
             END Count.",
        )
        .unwrap();
        let executed = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&executed);
        let service = ServiceBuilder::new(iface.clone())
            .on_call("Bump", move |args, w| {
                counter.fetch_add(1, Ordering::Relaxed);
                let n = args[0].value().and_then(Value::as_integer).unwrap();
                w.next_value(&Value::Integer(n))?;
                Ok(())
            })
            .build()
            .unwrap();

        let mut cfg = Config::fast_retry();
        cfg.max_transmissions = 40; // Chaos needs patience.
        cfg.retransmit_max = Duration::from_millis(50);
        cfg.server_threads = 4;
        let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
        let caller = Endpoint::new(net.station(2), cfg).unwrap();
        server.export(service).unwrap();
        let client = caller.bind(&iface, server.address()).unwrap();
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt: 0.0,
            // Delayed frames are delivered off independent threads, so
            // concurrent traffic genuinely reorders on the wire.
            delay: (delay_us > 0).then(|| Duration::from_micros(delay_us as u64)),
        });

        const CALLERS: usize = 4;
        const CALLS: u64 = 6;
        std::thread::scope(|s| {
            for t in 0..CALLERS {
                let client = client.clone();
                s.spawn(move || {
                    for i in 0..CALLS {
                        let v = (t as u64 * 100 + i) as i32;
                        let r = client.call("Bump", &[Value::Integer(v)]).unwrap();
                        assert_eq!(r[0].clone(), Value::Integer(v), "caller {t} call {i}");
                    }
                });
            }
        });
        prop_assert_eq!(
            executed.load(Ordering::Relaxed),
            CALLERS as u64 * CALLS,
            "a duplicated or retransmitted call was dispatched more than once"
        );

        // Shutdown leak check, per shard: keep a pool handle, tear the
        // endpoints down (shutdown joins the demux and every worker),
        // and verify each shard's outstanding count returns to zero.
        let server_pool = server.pool().clone();
        let caller_pool = caller.pool().clone();
        drop(client);
        drop(caller);
        drop(server);
        for (side, pool) in [("server", &server_pool), ("caller", &caller_pool)] {
            for shard in 0..pool.shard_count() {
                let outstanding = pool.shard(shard).stats().outstanding();
                prop_assert_eq!(
                    outstanding,
                    0,
                    "{} pool shard {} leaked {} buffer(s) at shutdown",
                    side,
                    shard,
                    outstanding
                );
            }
        }
        Ok(())
    });
}

/// Garbage on the wire must never wedge the demultiplexer: a frame whose
/// packet-type byte is not a known type is counted (`unknown_type_drops`)
/// and dropped, a ProbeResponse for a call nobody is waiting on is
/// counted (`stray_probe_responses`) and dropped, and real calls keep
/// succeeding throughout. Every protocol transition the endpoints take
/// while being poked stays inside the declared spec table.
#[test]
fn garbage_frames_are_counted_dropped_and_harmless() {
    use firefly_rpc::transport::Transport;
    use firefly_wire::{
        ActivityId, FrameBuilder, PacketType, DATA_OFFSET, RPC_HEADER_LEN,
    };

    let net = LoopbackNet::new();
    let (server, caller, client) = echo_setup(&net);
    let injector = net.station(99);

    let r = client.call("Twice", &[Value::Integer(21)]).unwrap();
    assert_eq!(r[0].clone(), Value::Integer(42));

    // An otherwise well-formed frame whose RPC packet-type byte is 0xee.
    // The checksum is disabled so validation reaches the type decoder
    // instead of rejecting the frame one layer earlier.
    let mut bad_type = FrameBuilder::new(PacketType::Call)
        .activity(ActivityId::new(77, 1, 1))
        .call_seq(1)
        .with_checksum(false)
        .build(&[])
        .unwrap()
        .into_bytes();
    bad_type[DATA_OFFSET - RPC_HEADER_LEN] = 0xee;

    // A valid ProbeResponse for an activity with no outstanding call.
    let stray_pr = FrameBuilder::new(PacketType::ProbeResponse)
        .activity(ActivityId::new(88, 2, 2))
        .call_seq(9)
        .build(&[])
        .unwrap();

    const GARBAGE: u64 = 5;
    for _ in 0..GARBAGE {
        injector.send(&bad_type, server.address()).unwrap();
        injector.send(&bad_type, caller.address()).unwrap();
        injector.send(stray_pr.bytes(), caller.address()).unwrap();
    }

    // Delivery is asynchronous through each endpoint's demux thread.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (server.stats().unknown_type_drops() < GARBAGE
        || caller.stats().unknown_type_drops() < GARBAGE
        || caller.stats().stray_probe_responses() < GARBAGE)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.stats().unknown_type_drops(), GARBAGE);
    assert_eq!(caller.stats().unknown_type_drops(), GARBAGE);
    assert_eq!(caller.stats().stray_probe_responses(), GARBAGE);

    // The demux survived: calls still complete, and nothing was
    // misrouted into the real-protocol counters.
    for i in 0..5i32 {
        let r = client.call("Twice", &[Value::Integer(i)]).unwrap();
        assert_eq!(r[0].clone(), Value::Integer(2 * i));
    }
    assert_eq!(server.stats().validation_drops(), 0);

    // Whatever rows the endpoints took, each is a declared spec row —
    // the exporter filters through the table, so an out-of-table row
    // can only mean a recording bug; the dispatch row must be present.
    let observed = server.protocol_transitions();
    assert!(observed.contains(&"server-new Call last_fragment -> dispatch"));
    let caller_rows = caller.protocol_transitions();
    assert!(caller_rows.contains(&"caller-open Result last_fragment -> complete-call"));
}

/// Tracing stays truthful under chaos: fragmented calls through loss and
/// duplication still reassemble byte-exactly, and every trace record the
/// run produces is internally sane — complete, no step going backwards,
/// and genuinely positive marshal and wire times for multi-KB bodies.
/// Retransmissions and duplicate deliveries re-walk the stamped code
/// paths, so this is the first-write-wins discipline under real fire.
#[test]
fn traced_fragments_survive_fault_mix() {
    use firefly_rpc::trace::{Role, CALLER_STEPS, SERVER_STEPS};
    check("traced_fragments_survive_fault_mix", 6, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.12;
        let duplicate = g.f64_unit() * 0.3;
        let size = g.usize_in(2000..9000);
        let net = LoopbackNet::with_seed(seed);
        let (server, caller, client) = echo_setup_with(&net, true);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt: 0.0,
            delay: None,
        });
        const CALLS: usize = 3;
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        for i in 0..CALLS {
            let r = client
                .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
                .unwrap();
            prop_assert_eq!(r[0].as_bytes().unwrap(), &data[..], "call {} garbled", i);
        }
        // One complete caller record per successful call, stamped in
        // order despite retransmits and duplicate result deliveries.
        let mut caller_records = Vec::new();
        caller.tracer().drain(|r| caller_records.push(*r));
        let complete: Vec<_> = caller_records
            .iter()
            .filter(|r| r.role == Role::Caller && r.is_complete())
            .collect();
        prop_assert_eq!(complete.len(), CALLS, "lost caller records");
        for rec in complete {
            for (name, from, to) in CALLER_STEPS {
                let delta = rec.step_delta(from, to).unwrap();
                prop_assert!(delta >= 0, "caller step `{}` negative: {} ns", name, delta);
            }
            // A multi-KB body cannot marshal or cross the wire in zero
            // time; zero here would mean a stamp overwritten by a
            // retransmission's second pass.
            prop_assert!(rec.step_delta(1, 2).unwrap() > 0, "zero marshal time");
            prop_assert!(rec.step_delta(3, 4).unwrap() > 0, "zero wire time");
            prop_assert!(rec.span_nanos() > 0);
        }
        // Server records: duplicates are filtered before dispatch, so at
        // most one record per unique call, each internally ordered.
        for _ in 0..200 {
            if server.tracer().recorded() >= CALLS as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut server_records = Vec::new();
        server.tracer().drain(|r| server_records.push(*r));
        prop_assert!(!server_records.is_empty(), "no server records");
        prop_assert!(server_records.len() <= CALLS, "duplicate dispatch traced");
        for rec in &server_records {
            prop_assert_eq!(rec.role, Role::Server);
            prop_assert!(rec.is_complete(), "partial server record {:?}", rec.stamps);
            for (name, from, to) in SERVER_STEPS {
                let delta = rec.step_delta(from, to).unwrap();
                prop_assert!(delta >= 0, "server step `{}` negative", name);
            }
        }
        Ok(())
    });
}
