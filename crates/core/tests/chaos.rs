//! Chaos testing: the protocol must deliver correct results under any
//! combination of loss, duplication, corruption and delay.

use firefly_idl::{parse_interface, Value};
use firefly_propcheck::{check, prop_assert_eq};
use firefly_rpc::transport::{FaultPlan, LoopbackNet};
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::time::Duration;

fn echo_setup(
    net: &LoopbackNet,
) -> (
    std::sync::Arc<Endpoint>,
    std::sync::Arc<Endpoint>,
    firefly_rpc::Client,
) {
    let iface = parse_interface(
        "DEFINITION MODULE Echo;
           PROCEDURE Twice(n: INTEGER): INTEGER;
           PROCEDURE Blob(VAR IN data: ARRAY OF CHAR; VAR OUT copy: ARRAY OF CHAR);
         END Echo.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Twice", |args, w| {
            let n = args[0].value().and_then(Value::as_integer).unwrap();
            w.next_value(&Value::Integer(n.wrapping_mul(2)))?;
            Ok(())
        })
        .on_call("Blob", |args, w| {
            let data = args[0].bytes().unwrap();
            w.next_bytes(data.len())?.copy_from_slice(data);
            Ok(())
        })
        .build()
        .unwrap();
    let mut cfg = Config::fast_retry();
    cfg.max_transmissions = 40; // Chaos needs patience.
    cfg.retransmit_max = Duration::from_millis(50);
    let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    (server, caller, client)
}

/// Small calls survive any moderate fault mix with correct results.
#[test]
fn calls_survive_fault_mix() {
    check("calls_survive_fault_mix", 8, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.25;
        let duplicate = g.f64_unit() * 0.5;
        let corrupt = g.f64_unit() * 0.15;
        let net = LoopbackNet::with_seed(seed);
        let (_server, _caller, client) = echo_setup(&net);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt,
            delay: None,
        });
        for i in 0..15i32 {
            let r = client.call("Twice", &[Value::Integer(i)]).unwrap();
            prop_assert_eq!(r[0].clone(), Value::Integer(2 * i), "call {}", i);
        }
        Ok(())
    });
}

/// Fragmented bodies survive loss and duplication byte-exactly.
#[test]
fn fragments_survive_fault_mix() {
    check("fragments_survive_fault_mix", 8, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.12;
        let duplicate = g.f64_unit() * 0.3;
        let size = g.usize_in(2000..12_000);
        let net = LoopbackNet::with_seed(seed);
        let (_server, _caller, client) = echo_setup(&net);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt: 0.0,
            delay: None,
        });
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let r = client
            .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
            .unwrap();
        prop_assert_eq!(r[0].as_bytes().unwrap(), &data[..]);
        Ok(())
    });
}
