//! The measured §4.2 ablation toggles: busy-wait spin-then-park
//! (§4.2.7) and fragment-window blasting (the batching direction of
//! §4.2.5). These are bench knobs, but they must be *correct* knobs —
//! every protocol guarantee holds with them on.

use firefly_idl::{parse_interface, test_interface, Value};
use firefly_propcheck::{check, prop_assert_eq};
use firefly_rpc::transport::{FaultPlan, LoopbackNet};
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::sync::Arc;
use std::time::Duration;

fn echo_setup(net: &LoopbackNet, cfg: Config) -> (Arc<Endpoint>, Arc<Endpoint>, firefly_rpc::Client) {
    let iface = parse_interface(
        "DEFINITION MODULE Echo;
           PROCEDURE Twice(n: INTEGER): INTEGER;
           PROCEDURE Blob(VAR IN data: ARRAY OF CHAR; VAR OUT copy: ARRAY OF CHAR);
         END Echo.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Twice", |args, w| {
            let n = args[0].value().and_then(Value::as_integer).unwrap();
            w.next_value(&Value::Integer(n.wrapping_mul(2)))?;
            Ok(())
        })
        .on_call("Blob", |args, w| {
            let data = args[0].bytes().unwrap();
            w.next_bytes(data.len())?.copy_from_slice(data);
            Ok(())
        })
        .build()
        .unwrap();
    let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    (server, caller, client)
}

#[test]
fn busy_wait_calls_round_trip() {
    let net = LoopbackNet::new();
    let (_server, caller_ep, client) = echo_setup(&net, Config::busy_wait());
    for i in 0..50i32 {
        let r = client.call("Twice", &[Value::Integer(i)]).unwrap();
        assert_eq!(r[0], Value::Integer(2 * i));
    }
    // Spinning is pure caller-side: a clean loopback run completes
    // every call without a single retransmission.
    assert_eq!(caller_ep.stats().calls_completed(), 50);
    assert_eq!(caller_ep.stats().retransmissions(), 0);
}

#[test]
fn busy_wait_handles_fragmented_bodies_too() {
    // The spin wait also stands in for the per-fragment ack waits.
    let net = LoopbackNet::new();
    let (_server, _caller_ep, client) = echo_setup(&net, Config::busy_wait());
    let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
    let r = client
        .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
        .unwrap();
    assert_eq!(r[0].as_bytes().unwrap(), &data[..]);
}

#[test]
fn blast_transfers_are_byte_exact() {
    let net = LoopbackNet::new();
    let (_server, caller_ep, client) = echo_setup(&net, Config::batched_fragments());
    for size in [1441usize, 4000, 11_520] {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let r = client
            .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
            .unwrap();
        assert_eq!(r[0].as_bytes().unwrap(), &data[..], "size {size}");
    }
    // A blasted window still counts every fragment sent: the three
    // transfers need 2 + 3 + 8 call fragments, and a clean loopback
    // never re-blasts.
    assert_eq!(caller_ep.stats().fragments_sent(), 13);
    assert_eq!(caller_ep.stats().retransmissions(), 0);
}

#[test]
fn blast_single_packet_calls_take_the_ordinary_path() {
    // Blasting only changes multi-fragment windows; Null() stays on the
    // single-packet fast path.
    let net = LoopbackNet::new();
    let server_cfg = Config::batched_fragments();
    let server = Endpoint::new(net.station(1), server_cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), server_cfg).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0xab);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();
    client.call("Null", &[]).unwrap();
    assert_eq!(caller.stats().fragments_sent(), 0);
}

/// The re-blast recovery loop: a lossy, duplicating network must still
/// deliver blasted windows byte-exactly (the whole window is resent on
/// timeout and server reassembly is idempotent).
#[test]
fn blast_survives_fault_mix() {
    check("blast_survives_fault_mix", 6, |g| {
        let seed = g.u64();
        let loss = g.f64_unit() * 0.10;
        let duplicate = g.f64_unit() * 0.3;
        let size = g.usize_in(2000..9000);
        let net = LoopbackNet::with_seed(seed);
        let mut cfg = Config::fast_retry();
        cfg.fragment_blast = true;
        cfg.max_transmissions = 40; // Chaos needs patience.
        cfg.retransmit_max = Duration::from_millis(50);
        let (_server, _caller_ep, client) = echo_setup(&net, cfg);
        net.set_faults(FaultPlan {
            loss,
            duplicate,
            corrupt: 0.0,
            delay: None,
        });
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let r = client
            .call("Blob", &[Value::Bytes(data.clone()), Value::Bytes(Vec::new())])
            .unwrap();
        prop_assert_eq!(r[0].as_bytes().unwrap(), &data[..]);
        Ok(())
    });
}
