//! Regression test for the probe/lost-result livelock.
//!
//! Sequence: the caller's retransmitted call is acknowledged (server
//! executing), so the caller switches from retransmitting to probing.
//! The result packet is then lost. A server that answers probes with
//! ProbeResponse while holding the retained result would keep the caller
//! probing forever; the correct behaviour (and the paper's: the retained
//! result exists precisely "for possible retransmission") is to answer
//! such probes by retransmitting the result.

use firefly_idl::{parse_interface, Value};
use firefly_rpc::transport::{LoopbackNet, Transport};
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Drops the first `n` Result packets sent through it.
struct DropFirstResults {
    inner: Arc<dyn Transport>,
    remaining: AtomicU32,
}

impl DropFirstResults {
    fn new(inner: Arc<dyn Transport>, n: u32) -> Arc<Self> {
        Arc::new(DropFirstResults {
            inner,
            remaining: AtomicU32::new(n),
        })
    }
}

/// Byte offset of the RPC packet-type field within a frame
/// (Ethernet 14 + IP 20 + UDP 8).
const TYPE_OFFSET: usize = 42;
const TYPE_RESULT: u8 = 2;

impl Transport for DropFirstResults {
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()> {
        if frame.len() > TYPE_OFFSET && frame[TYPE_OFFSET] == TYPE_RESULT {
            let dropped = self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok();
            if dropped {
                return Ok(()); // Swallowed by the "network".
            }
        }
        self.inner.send(frame, dst)
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv(buf)
    }

    fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[test]
fn lost_result_after_ack_is_recovered_via_probe() {
    let iface =
        parse_interface("DEFINITION MODULE Slow; PROCEDURE Nap(ms: INTEGER): INTEGER; END Slow.")
            .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Nap", |args, w| {
            let ms = args[0].value().and_then(Value::as_integer).unwrap_or(0);
            std::thread::sleep(Duration::from_millis(ms as u64));
            w.next_value(&Value::Integer(ms))?;
            Ok(())
        })
        .build()
        .unwrap();

    let net = LoopbackNet::new();
    let mut cfg = Config::fast_retry();
    cfg.retransmit_max = Duration::from_millis(40);
    // The server's transport eats the first TWO Result packets (the
    // original and one retransmission), forcing recovery through probes.
    let server_transport = DropFirstResults::new(net.station(1), 2);
    let server = Endpoint::new(server_transport, cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();

    // The call sleeps long enough that the caller's early retransmissions
    // are answered with Acks (call in progress) and it enters probe mode
    // before the (dropped) result is sent.
    let start = std::time::Instant::now();
    let r = client.call("Nap", &[Value::Integer(60)]).unwrap();
    assert_eq!(r[0], Value::Integer(60));
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "recovery took {:?} — probe livelock?",
        start.elapsed()
    );
    assert!(
        server.stats().probes_answered() > 0 || server.stats().duplicate_calls() > 0,
        "recovery exercised the probe/duplicate path"
    );
    // And the connection still works afterwards.
    let r = client.call("Nap", &[Value::Integer(1)]).unwrap();
    assert_eq!(r[0], Value::Integer(1));
}

#[test]
fn many_lost_results_eventually_recover() {
    let iface = parse_interface("DEFINITION MODULE Q; PROCEDURE Ping(): INTEGER; END Q.").unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Ping", |_a, w| {
            w.next_value(&Value::Integer(7))?;
            Ok(())
        })
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let cfg = Config::fast_retry();
    let server_transport = DropFirstResults::new(net.station(1), 3);
    let server = Endpoint::new(server_transport, cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    for _ in 0..5 {
        assert_eq!(client.call("Ping", &[]).unwrap()[0], Value::Integer(7));
    }
    assert!(caller.stats().retransmissions() > 0);
}
