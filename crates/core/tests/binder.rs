//! Tests for the built-in binder (interface discovery) service.

use firefly_idl::{parse_interface, test_interface, Value};
use firefly_rpc::binder::{binder_interface, uid_hex};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, RpcError, ServiceBuilder};
use std::sync::Arc;

fn test_service() -> Arc<dyn firefly_rpc::Service> {
    ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap()
}

#[test]
fn binder_answers_lookup_and_describe() {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(test_service()).unwrap();

    let binder = caller.bind(&binder_interface(), server.address()).unwrap();

    // Count includes the binder itself plus the Test interface.
    let r = binder.call("Count", &[]).unwrap();
    assert_eq!(r[0], Value::Integer(2));

    let r = binder.call("Lookup", &[Value::text("Test")]).unwrap();
    assert_eq!(r[0], Value::Boolean(true));
    let r = binder.call("Lookup", &[Value::text("Ghost")]).unwrap();
    assert_eq!(r[0], Value::Boolean(false));

    let r = binder
        .call("Describe", &[Value::text("Test"), Value::Bytes(Vec::new())])
        .unwrap();
    let hex = String::from_utf8(r[0].as_bytes().unwrap().to_vec()).unwrap();
    assert_eq!(hex, uid_hex(test_interface().uid()));
    assert_eq!(r[1], Value::Integer(1));
}

#[test]
fn bind_checked_accepts_matching_interface() {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(test_service()).unwrap();
    let client = caller
        .bind_checked(&test_interface(), server.address())
        .unwrap();
    client.call("Null", &[]).unwrap();
}

#[test]
fn bind_checked_rejects_missing_interface() {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    // Server exports nothing but the binder.
    let err = caller
        .bind_checked(&test_interface(), server.address())
        .err()
        .expect("binding a missing interface must fail");
    match err {
        RpcError::Remote(m) => assert!(m.contains("no interface named")),
        other => panic!("unexpected: {other}"),
    }
}

#[test]
fn bind_checked_rejects_signature_mismatch() {
    // The server exports a *different* interface that happens to share
    // the name "Test": the UID check catches the drift.
    let impostor = parse_interface(
        "DEFINITION MODULE Test;
           PROCEDURE Null(x: INTEGER);
         END Test.",
    )
    .unwrap();
    let service = ServiceBuilder::new(impostor)
        .on_call("Null", |_a, _w| Ok(()))
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(service).unwrap();
    let err = caller
        .bind_checked(&test_interface(), server.address())
        .err()
        .expect("a signature mismatch must fail");
    match err {
        RpcError::Binding(m) => assert!(m.contains("signatures differ"), "{m}"),
        other => panic!("unexpected: {other}"),
    }
}

#[test]
fn binder_is_dogfood() {
    // The binder runs over the same RPC machinery it describes: calling
    // it bumps the ordinary call counters.
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let binder = caller.bind(&binder_interface(), server.address()).unwrap();
    binder.call("Count", &[]).unwrap();
    assert_eq!(caller.stats().calls_completed(), 1);
    assert_eq!(server.stats().calls_received(), 1);
}

#[test]
fn endpoint_drop_does_not_leak_via_binder() {
    // The binder holds only a weak reference to the server side; endpoint
    // teardown must complete (this test hangs or leaks otherwise).
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    server.export(test_service()).unwrap();
    drop(server);
}
