//! Per-call deadlines: bounding the caller's patience.

use firefly_idl::{parse_interface, Value};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, RpcError, ServiceBuilder};
use std::time::Duration;

fn slow_pair() -> (
    std::sync::Arc<Endpoint>,
    std::sync::Arc<Endpoint>,
    firefly_rpc::Client,
) {
    let iface = parse_interface(
        "DEFINITION MODULE Slow;
           PROCEDURE Nap(ms: INTEGER): INTEGER;
         END Slow.",
    )
    .unwrap();
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Nap", |args, w| {
            let ms = args[0].value().and_then(Value::as_integer).unwrap_or(0);
            std::thread::sleep(Duration::from_millis(ms as u64));
            w.next_value(&Value::Integer(ms))?;
            Ok(())
        })
        .build()
        .unwrap();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::fast_retry()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::fast_retry()).unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&iface, server.address()).unwrap();
    (server, caller, client)
}

#[test]
fn deadline_expires_on_a_slow_server() {
    let (_server, _caller, client) = slow_pair();
    let start = std::time::Instant::now();
    let err = client
        .call_with_deadline("Nap", &[Value::Integer(2000)], Duration::from_millis(80))
        .expect_err("deadline must fire");
    assert!(matches!(err, RpcError::DeadlineExceeded), "{err}");
    assert!(
        start.elapsed() < Duration::from_millis(600),
        "deadline was not enforced promptly: {:?}",
        start.elapsed()
    );
}

#[test]
fn fast_calls_beat_their_deadline() {
    let (_server, _caller, client) = slow_pair();
    let r = client
        .call_with_deadline("Nap", &[Value::Integer(1)], Duration::from_secs(5))
        .unwrap();
    assert_eq!(r[0], Value::Integer(1));
}

#[test]
fn activity_recovers_after_a_deadline() {
    // A timed-out call abandons its activity slot safely; subsequent
    // calls on the same client still work (the server's late result is
    // orphaned and recycled).
    let (_server, caller, client) = slow_pair();
    let _ = client.call_with_deadline("Nap", &[Value::Integer(300)], Duration::from_millis(30));
    let r = client.call("Nap", &[Value::Integer(2)]).unwrap();
    assert_eq!(r[0], Value::Integer(2));
    // The late result from the first call was dropped as an orphan (or is
    // still in flight; give it a moment and check nothing wedged).
    std::thread::sleep(Duration::from_millis(400));
    let r = client.call("Nap", &[Value::Integer(3)]).unwrap();
    assert_eq!(r[0], Value::Integer(3));
    assert!(caller.stats().calls_completed() >= 2);
}
