//! Per-worker work queues with ascending-index work stealing.
//!
//! The seed runtime funneled every incoming call through one shared
//! MPMC channel — one lock and one condvar contended by the demux
//! thread and every server worker. This module replaces it for the
//! server dispatch path: each worker owns a receive queue (`shards[w]`,
//! one lock each), the demultiplexer enqueues to the queue picked by
//! [`crate::calltable::shard_for`] of the call's activity id, and an
//! idle worker whose own queue is empty **steals the entire backlog**
//! of another queue, scanning victims in ascending index order.
//!
//! Why whole-queue stealing: taking the victim's whole deque with
//! `mem::take` holds exactly one queue lock, preserves FIFO order
//! within the stolen batch (so replies within one activity can never
//! reorder — see tests/sharding.rs), and moves a burst of work in one
//! lock acquisition. The ascending scan order matches the
//! workspace-wide parametric `shard` lock discipline (docs/SHARDING.md)
//! even though no two queue locks are ever held at once here.
//!
//! Parking uses an epoch counter under a separate lock: a worker
//! records the epoch, scans every queue, and parks only if the epoch is
//! unchanged when it takes the park lock — any enqueue between scan and
//! park bumps the epoch and is therefore never lost. Enqueues skip the
//! condvar notification entirely when no worker is parked (the common
//! saturated case), keeping the hot path to one queue lock plus one
//! park-lock tap.

use firefly_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Parking state shared by all workers: `epoch` counts enqueues (and
/// shutdown), `idle` counts workers currently parked or committing to
/// park.
#[derive(Debug, Default)]
struct ParkState {
    epoch: u64,
    idle: usize,
}

/// Per-worker receive queues with work stealing; the server's
/// replacement for the single shared work channel.
#[derive(Debug)]
pub struct WorkQueues<T> {
    /// One receive queue per worker. The field is named `shards` so the
    /// lint lock-order rule classifies `shards[w].lock()` under the
    /// parametric `shard` class.
    shards: Vec<Mutex<VecDeque<T>>>,
    park: Mutex<ParkState>,
    ready: Condvar,
    down: AtomicBool,
}

impl<T> WorkQueues<T> {
    /// Creates queues for `workers` workers (at least one).
    pub fn new(workers: usize) -> WorkQueues<T> {
        WorkQueues {
            shards: (0..workers.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(ParkState::default()),
            ready: Condvar::new(),
            down: AtomicBool::new(false),
        }
    }

    /// Number of per-worker queues.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues an item on worker `target`'s queue (wrapped), waking a
    /// parked worker if any. Returns `true` when a worker was idle —
    /// the direct-handoff case the paper's fast path counts on.
    pub fn push(&self, target: usize, item: T) -> bool {
        let w = target % self.shards.len();
        self.shards[w].lock().push_back(item);
        let idle = {
            let mut park = self.park.lock();
            park.epoch = park.epoch.wrapping_add(1);
            park.idle
        };
        if idle > 0 {
            self.ready.notify_one();
            true
        } else {
            false
        }
    }

    /// Takes the entire backlog of queue `victim` into `local`,
    /// preserving FIFO order. Returns `true` if anything was taken.
    fn drain_into(&self, victim: usize, local: &mut VecDeque<T>) -> bool {
        let mut q = self.shards[victim].lock();
        if q.is_empty() {
            return false;
        }
        if local.is_empty() {
            std::mem::swap(&mut *q, local);
        } else {
            local.extend(q.drain(..));
        }
        true
    }

    /// Dequeues the next item for worker `worker`, blocking until one
    /// arrives. `local` is the worker's private batch (stack-owned by
    /// the worker loop): items drained from a queue are processed from
    /// it without further locking. Returns `None` once [`shutdown`] was
    /// called and every queue (and the local batch) is empty.
    ///
    /// [`shutdown`]: WorkQueues::shutdown
    /// Empty rescans (each yielding the processor) a worker performs
    /// before parking on the condvar. A parked worker costs its waker a
    /// futex syscall and a scheduling round trip; during a steady call
    /// stream the next item arrives within a few yields, so this brief
    /// cooperative poll keeps the hand-off futex-free without holding
    /// the processor hostage (`yield_now` runs anyone else runnable).
    const POLLS_BEFORE_PARK: u32 = 32;

    /// Empty rescans after which `pop_with` reports a quiet queue to
    /// its caller (once per quiet episode, and always before parking).
    /// The very first empty rescan counts: during a busy streak the
    /// rescan finds work and the quiet hook never fires, while a lone
    /// caller's result is flushed after one scan's worth of delay
    /// rather than several yields.
    const POLLS_BEFORE_QUIET: u32 = 1;

    pub fn pop(&self, worker: usize, local: &mut VecDeque<T>) -> Option<T> {
        self.pop_with(worker, local, || {})
    }

    /// Like [`WorkQueues::pop`], but invokes `on_quiet` once the queues
    /// have stayed empty for a few rescans — before this worker could
    /// possibly park. Workers use it to flush deferred output (batched
    /// result frames) exactly when no further work is imminent, so
    /// batches ride out a busy streak but never outlive it.
    pub fn pop_with(
        &self,
        worker: usize,
        local: &mut VecDeque<T>,
        mut on_quiet: impl FnMut(),
    ) -> Option<T> {
        let n = self.shards.len();
        let me = worker % n;
        let mut polls = 0u32;
        loop {
            if let Some(item) = local.pop_front() {
                return Some(item);
            }
            // Record the epoch before scanning: any push after this
            // point either lands in a queue we have not scanned yet or
            // changes the epoch and aborts the park below.
            let epoch = self.park.lock().epoch;
            if self.drain_into(me, local) {
                polls = 0;
                continue;
            }
            // Steal scan, ascending victim index (skipping our own,
            // already-drained queue). One queue lock at a time.
            let mut stole = false;
            for victim in 0..n {
                if victim != me && self.drain_into(victim, local) {
                    stole = true;
                    break;
                }
            }
            if stole {
                polls = 0;
                continue;
            }
            if self.down.load(Ordering::Acquire) {
                return None;
            }
            if polls < Self::POLLS_BEFORE_PARK {
                polls += 1;
                if polls == Self::POLLS_BEFORE_QUIET {
                    on_quiet();
                }
                std::thread::yield_now();
                continue;
            }
            let mut park = self.park.lock();
            if park.epoch != epoch {
                continue;
            }
            park.idle += 1;
            // Coarse deadline only: a changed epoch plus notify is the
            // real wake condition; spurious timeouts just rescan.
            self.ready
                .wait_until(&mut park, Instant::now() + Duration::from_secs(3600));
            park.idle -= 1;
            polls = 0;
        }
    }

    /// Marks the queues shut down and wakes every parked worker. Queued
    /// work is still drained: workers exit only once every queue is
    /// empty, matching the old channel's complete-pending-work
    /// semantics.
    pub fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        {
            let mut park = self.park.lock();
            park.epoch = park.epoch.wrapping_add(1);
        }
        self.ready.notify_all();
    }

    /// Total queued items across all queues (racy, for introspection).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.lock().len()).sum()
    }

    /// True when no items are queued (racy, for tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of currently parked workers (racy, for stats).
    pub fn idle_workers(&self) -> usize {
        self.park.lock().idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip_on_own_queue() {
        let q = WorkQueues::new(2);
        let mut local = VecDeque::new();
        assert!(!q.push(0, 1)); // no worker parked yet
        q.push(0, 2);
        assert_eq!(q.pop(0, &mut local), Some(1));
        assert_eq!(q.pop(0, &mut local), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn idle_worker_steals_from_busy_queue_in_order() {
        let q = WorkQueues::new(4);
        for i in 0..5 {
            q.push(2, i);
        }
        // Worker 0's own queue is empty: it must steal queue 2's whole
        // backlog, preserving FIFO order.
        let mut local = VecDeque::new();
        for i in 0..5 {
            assert_eq!(q.pop(0, &mut local), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn parked_worker_wakes_on_push() {
        let q = Arc::new(WorkQueues::new(2));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut local = VecDeque::new();
            q2.pop(1, &mut local)
        });
        firefly_sync::test_sleep();
        // Pushed to worker 0's queue; parked worker 1 must still wake
        // (global notify) and steal it.
        q.push(0, 42u32);
        assert_eq!(t.join().unwrap(), Some(42));
    }

    #[test]
    fn shutdown_drains_pending_work_then_stops() {
        let q = WorkQueues::new(2);
        q.push(0, "a");
        q.push(1, "b");
        q.shutdown();
        let mut local = VecDeque::new();
        let mut got = vec![
            q.pop(0, &mut local).unwrap(),
            q.pop(0, &mut local).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, ["a", "b"]);
        assert_eq!(q.pop(0, &mut local), None);
    }

    #[test]
    fn shutdown_unblocks_parked_workers() {
        let q = Arc::new(WorkQueues::<u8>::new(3));
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut local = VecDeque::new();
                    q.pop(w, &mut local)
                })
            })
            .collect();
        firefly_sync::test_sleep();
        q.shutdown();
        for t in workers {
            assert_eq!(t.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_workers_nothing_lost() {
        let q = Arc::new(WorkQueues::new(4));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut local = VecDeque::new();
                    let mut got = Vec::new();
                    while let Some(v) = q.pop(w, &mut local) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..400 {
            q.push(i % 4, i);
        }
        q.shutdown();
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<usize>>());
    }

    #[test]
    fn push_reports_idle_worker_presence() {
        let q = Arc::new(WorkQueues::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut local = VecDeque::new();
            q2.pop(0, &mut local)
        });
        // Wait until the worker has actually parked.
        let deadline = Instant::now() + Duration::from_secs(5);
        while q.idle_workers() == 0 {
            assert!(Instant::now() < deadline, "worker never parked");
            std::thread::yield_now();
        }
        assert!(q.push(0, 7));
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
