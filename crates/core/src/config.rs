//! Endpoint configuration.

use std::time::Duration;

/// Tunable parameters of an [`Endpoint`](crate::Endpoint).
#[derive(Debug, Clone)]
pub struct Config {
    /// Size of the shared packet-buffer pool.
    ///
    /// The paper's pool is shared between all user address spaces and the
    /// Nub; it must cover outstanding calls, retained results, and
    /// controller receive buffers.
    pub pool_size: usize,
    /// Number of server threads kept waiting for incoming calls.
    ///
    /// The fast path requires "having enough server threads waiting"
    /// (§3.1); when all are busy, call packets take the slow path through
    /// the work queue.
    pub server_threads: usize,
    /// First retransmission timeout; doubles on every retry.
    pub retransmit_initial: Duration,
    /// Upper bound on the retransmission timeout after backoff.
    pub retransmit_max: Duration,
    /// Total transmissions (first send + retransmissions) before a call
    /// fails.
    pub max_transmissions: u32,
    /// Compute and verify software UDP checksums (§4.2.4 measures the cost
    /// of turning this off).
    pub checksum: bool,
    /// Machine identifier carried in activity IDs; must differ between
    /// endpoints that talk to each other.
    pub machine_id: u32,
    /// Address-space identifier within the machine.
    pub space_id: u16,
    /// Stub engine style: compiled direct-assignment stubs (the shipped
    /// fast path) or interpreted library-style marshalling — the real
    /// stack's version of Table IX's Modula-2+/assembly axis.
    pub stub_style: firefly_idl::StubStyle,
    /// Seed for the endpoint's deterministic RNG (retransmission-backoff
    /// jitter). Fixed by default so test runs are reproducible; vary it
    /// per endpoint to decorrelate retry storms between machines.
    pub rng_seed: u64,
    /// Start with per-call step tracing enabled (see [`crate::trace`]).
    ///
    /// Tracing is pure observability — the paper's Table VII latency
    /// account, live — and can also be toggled at runtime with
    /// [`Endpoint::set_tracing`](crate::Endpoint::set_tracing). Off by
    /// default: the disabled cost is one relaxed atomic load per call.
    pub trace: bool,
    /// Capacity (in records) of the per-endpoint completed-trace ring
    /// buffer, preallocated at endpoint creation.
    pub trace_capacity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            pool_size: 64,
            server_threads: 4,
            retransmit_initial: Duration::from_millis(50),
            retransmit_max: Duration::from_secs(2),
            max_transmissions: 10,
            checksum: true,
            machine_id: 0, // 0 means "derive from the transport address".
            space_id: 1,
            stub_style: firefly_idl::StubStyle::Compiled,
            rng_seed: 0x5eed_f1ef_0001,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_RING_CAPACITY,
        }
    }
}

impl Config {
    /// Convenience: a config with checksums disabled (§4.2.4).
    pub fn without_checksums() -> Self {
        Config {
            checksum: false,
            ..Config::default()
        }
    }

    /// Convenience: tight timeouts for loss-injection tests.
    pub fn fast_retry() -> Self {
        Config {
            retransmit_initial: Duration::from_millis(5),
            retransmit_max: Duration::from_millis(100),
            ..Config::default()
        }
    }

    /// Convenience: a config with per-call step tracing enabled.
    pub fn traced() -> Self {
        Config {
            trace: true,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.pool_size >= 2 * c.server_threads);
        assert!(c.max_transmissions > 1);
        assert!(c.retransmit_max >= c.retransmit_initial);
        assert!(c.checksum);
    }

    #[test]
    fn presets() {
        assert!(!Config::without_checksums().checksum);
        assert!(Config::fast_retry().retransmit_initial < Duration::from_millis(50));
        assert!(!Config::default().trace);
        assert!(Config::traced().trace);
        assert!(Config::traced().trace_capacity > 0);
    }
}
