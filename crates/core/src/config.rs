//! Endpoint configuration.

use std::time::Duration;

/// Tunable parameters of an [`Endpoint`](crate::Endpoint).
#[derive(Debug, Clone)]
pub struct Config {
    /// Size of the shared packet-buffer pool.
    ///
    /// The paper's pool is shared between all user address spaces and the
    /// Nub; it must cover outstanding calls, retained results, and
    /// controller receive buffers.
    pub pool_size: usize,
    /// Number of server threads kept waiting for incoming calls.
    ///
    /// The fast path requires "having enough server threads waiting"
    /// (§3.1); when all are busy, call packets take the slow path through
    /// the work queue. Defaults to the machine's available parallelism
    /// (clamped to [1, 4]): the Firefly ran one Receiver per processor,
    /// and extra workers on fewer cores only break up the receive-burst
    /// waves that the result batcher coalesces.
    pub server_threads: usize,
    /// First retransmission timeout; doubles on every retry.
    pub retransmit_initial: Duration,
    /// Upper bound on the retransmission timeout after backoff.
    pub retransmit_max: Duration,
    /// Total transmissions (first send + retransmissions) before a call
    /// fails.
    pub max_transmissions: u32,
    /// Compute and verify software UDP checksums (§4.2.4 measures the cost
    /// of turning this off).
    pub checksum: bool,
    /// Machine identifier carried in activity IDs; must differ between
    /// endpoints that talk to each other.
    pub machine_id: u32,
    /// Address-space identifier within the machine.
    pub space_id: u16,
    /// Stub engine style: compiled direct-assignment stubs (the shipped
    /// fast path) or interpreted library-style marshalling — the real
    /// stack's version of Table IX's Modula-2+/assembly axis.
    pub stub_style: firefly_idl::StubStyle,
    /// Seed for the endpoint's deterministic RNG (retransmission-backoff
    /// jitter). Fixed by default so test runs are reproducible; vary it
    /// per endpoint to decorrelate retry storms between machines.
    pub rng_seed: u64,
    /// Start with per-call step tracing enabled (see [`crate::trace`]).
    ///
    /// Tracing is pure observability — the paper's Table VII latency
    /// account, live — and can also be toggled at runtime with
    /// [`Endpoint::set_tracing`](crate::Endpoint::set_tracing). Off by
    /// default: the disabled cost is one relaxed atomic load per call.
    pub trace: bool,
    /// Capacity (in records) of the per-endpoint completed-trace ring
    /// buffer, preallocated at endpoint creation.
    pub trace_capacity: usize,
    /// Caller-side busy-wait budget — the §4.2.7 ablation, measured
    /// live instead of estimated.
    ///
    /// When nonzero, a caller thread awaiting a result spins (polling
    /// the call-table entry) for up to this long before parking on the
    /// entry's condition variable, trading caller CPU for the
    /// wakeup/scheduling latency the paper estimates at 440 µs. Zero
    /// (the default) is the paper's shipped behavior: park immediately
    /// and rely on the demultiplexer's direct wakeup. Server-side
    /// threads are unaffected (they park in the work-queue hand-off).
    pub busy_wait_spin: Duration,
    /// Number of runtime shards: the caller-side call table and the
    /// packet-buffer pool are split into this many independent
    /// instances, each with its own locks, selected by a pure hash of
    /// the activity id (see `calltable::shard_for` and docs/SHARDING.md).
    ///
    /// The paper's §4.2 "recoded runtime" what-if removed the global
    /// lock chain from the fast path; sharding is the modern shape of
    /// that change (per-core state, eRPC-style). One shard reproduces
    /// the seed's globally-locked behavior exactly.
    pub shards: usize,
    /// Upper bound on the number of extra datagrams the demultiplexer
    /// drains with nonblocking receives after each blocking receive,
    /// amortizing wakeups and syscalls across a burst. 0 disables
    /// batching (one blocking recv per datagram, the seed behavior).
    pub recv_batch: usize,
    /// Send multi-packet call bodies as one back-to-back blast instead
    /// of Birrell–Nelson stop-and-wait — the batching ablation.
    ///
    /// Off (the default), every non-final fragment waits for its
    /// explicit acknowledgement before the next is sent, exactly as the
    /// paper does; large transfers pay one round trip per fragment. On,
    /// the whole fragment window is transmitted at once and the caller
    /// waits only for the result, re-blasting the entire window on
    /// timeout (server-side reassembly is idempotent, so duplicated
    /// fragments are harmless). This is the §4.2.5 "redesign the RPC
    /// protocol" direction: fewer round trips in exchange for
    /// retransmitting a whole window when any fragment is lost.
    pub fragment_blast: bool,
}

/// Default worker count: one server thread per available processor,
/// clamped to [1, 4] (the Firefly itself had at most five processors,
/// one of which serviced the Ethernet).
fn default_server_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

impl Default for Config {
    fn default() -> Self {
        Config {
            pool_size: 64,
            server_threads: default_server_threads(),
            retransmit_initial: Duration::from_millis(50),
            retransmit_max: Duration::from_secs(2),
            max_transmissions: 10,
            checksum: true,
            machine_id: 0, // 0 means "derive from the transport address".
            space_id: 1,
            stub_style: firefly_idl::StubStyle::Compiled,
            rng_seed: 0x5eed_f1ef_0001,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_RING_CAPACITY,
            busy_wait_spin: Duration::ZERO,
            shards: 4,
            recv_batch: 16,
            fragment_blast: false,
        }
    }
}

impl Config {
    /// Convenience: a config with checksums disabled (§4.2.4).
    pub fn without_checksums() -> Self {
        Config {
            checksum: false,
            ..Config::default()
        }
    }

    /// Convenience: tight timeouts for loss-injection tests.
    pub fn fast_retry() -> Self {
        Config {
            retransmit_initial: Duration::from_millis(5),
            retransmit_max: Duration::from_millis(100),
            ..Config::default()
        }
    }

    /// Convenience: a config with per-call step tracing enabled.
    pub fn traced() -> Self {
        Config {
            trace: true,
            ..Config::default()
        }
    }

    /// Convenience: the §4.2.7 busy-wait ablation — spin up to 200 µs
    /// (comfortably past the paper's 440 µs wakeup estimate scaled to a
    /// modern loopback RTT) before parking.
    pub fn busy_wait() -> Self {
        Config {
            busy_wait_spin: Duration::from_micros(200),
            ..Config::default()
        }
    }

    /// Convenience: the fragment-batching ablation — blast multi-packet
    /// call bodies instead of stop-and-wait.
    pub fn batched_fragments() -> Self {
        Config {
            fragment_blast: true,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.pool_size >= 2 * c.server_threads);
        assert!(c.max_transmissions > 1);
        assert!(c.retransmit_max >= c.retransmit_initial);
        assert!(c.checksum);
        assert!(c.shards >= 1);
        // Each shard must get at least a couple of buffers.
        assert!(c.pool_size >= 2 * c.shards);
    }

    #[test]
    fn presets() {
        assert!(!Config::without_checksums().checksum);
        assert!(Config::fast_retry().retransmit_initial < Duration::from_millis(50));
        assert!(!Config::default().trace);
        assert!(Config::traced().trace);
        assert!(Config::traced().trace_capacity > 0);
        // The ablation toggles must default to the paper's behavior.
        assert!(Config::default().busy_wait_spin.is_zero());
        assert!(!Config::default().fragment_blast);
        assert!(!Config::busy_wait().busy_wait_spin.is_zero());
        assert!(Config::batched_fragments().fragment_blast);
    }
}
