//! Protocol-transition witness: the runtime half of protocol.toml.
//!
//! Every receive-side dispatch decision in the endpoint (server
//! demultiplexer, caller call table) records the `(state, packet-type,
//! flags) -> action` row it just took. The rows are the spec's
//! `[transitions].legal` table verbatim — `TRANSITIONS[i]` must match
//! protocol.toml line for line (a unit test below enforces it) — so
//! `firefly-check --json-edges` can export exactly which spec rows the
//! models and the wire scenario drove, and scripts/cross_diff.py can
//! fail on any observed transition the spec does not allow and on any
//! spec row nothing exercises.
//!
//! Recording is a single relaxed counter increment on an `&'static`
//! table: cheap enough for the demux path, and deliberately free of
//! locks so it can sit inside lock-held regions without entering the
//! lint lock graph.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// The legal transition table, in protocol.toml order.
pub const TRANSITIONS: [&str; 49] = [
    "server-new Call last_fragment -> dispatch",
    "server-new Call please_ack+last_fragment -> dispatch",
    "server-new Call please_ack -> assemble-ack",
    "server-new Call - -> assemble-ack",
    "server-new Call please_ack -> dispatch-ack",
    "server-new Call - -> dispatch-ack",
    "server-new Call last_fragment -> assemble",
    "server-new Call please_ack+last_fragment -> assemble",
    "server-dup-executing Call please_ack+last_fragment -> ack-executing",
    "server-dup-executing Call please_ack -> ack-executing",
    "server-dup-executing Call last_fragment -> drop-duplicate",
    "server-dup-executing Call - -> drop-duplicate",
    "server-dup-retained Call last_fragment -> retransmit-result",
    "server-dup-retained Call please_ack+last_fragment -> retransmit-result",
    "server-dup-retained Call please_ack -> retransmit-result",
    "server-dup-retained Call - -> retransmit-result",
    "server-dup-released Call last_fragment -> drop-duplicate",
    "server-dup-released Call please_ack+last_fragment -> drop-duplicate",
    "server-dup-released Call please_ack -> drop-duplicate",
    "server-dup-released Call - -> drop-duplicate",
    "server-stale Call last_fragment -> drop-stale",
    "server-stale Call please_ack+last_fragment -> drop-stale",
    "server-stale Call please_ack -> drop-stale",
    "server-stale Call - -> drop-stale",
    "server-executing Probe last_fragment -> probe-response",
    "server-retained Probe last_fragment -> retransmit-result",
    "server-released Probe last_fragment -> drop-silent",
    "server-unknown Probe last_fragment -> drop-silent",
    "server-known Ack acks_result -> advance-fragment",
    "server-known Ack last_fragment+acks_result -> release-retained",
    "server-unknown Ack acks_result -> drop-stale",
    "server-unknown Ack last_fragment+acks_result -> drop-stale",
    "caller-open Result last_fragment -> complete-call",
    "caller-open Result last_fragment+call_failed -> fail-call",
    "caller-open Result please_ack -> complete-ack",
    "caller-open Result please_ack+last_fragment -> complete-ack",
    "caller-assembling Result please_ack -> assemble-ack",
    "caller-assembling Result - -> assemble-ack",
    "caller-assembling Result last_fragment -> assemble",
    "caller-assembling Result please_ack+last_fragment -> assemble-ack",
    "caller-orphan Result last_fragment -> recycle-orphan",
    "caller-orphan Result please_ack -> recycle-orphan",
    "caller-orphan Result last_fragment+call_failed -> recycle-orphan",
    "caller-open Ack last_fragment -> quench-retransmit",
    "caller-open Ack - -> advance-fragment",
    "caller-open ProbeResponse last_fragment -> note-alive",
    "caller-orphan Ack last_fragment -> drop-stray",
    "caller-orphan Ack - -> drop-stray",
    "caller-orphan ProbeResponse last_fragment -> drop-stray",
];

/// Row indices, named so instrumentation sites read as the spec rows
/// they record. The four-slot `Call` groups (retained / released /
/// stale duplicates) use `BASE + call_slot(flags)`.
pub mod row {
    pub const NEW_DISPATCH: usize = 0;
    pub const NEW_DISPATCH_PA: usize = 1;
    pub const NEW_ASSEMBLE_ACK_PA: usize = 2;
    pub const NEW_ASSEMBLE_ACK: usize = 3;
    pub const NEW_DISPATCH_ACK_PA: usize = 4;
    pub const NEW_DISPATCH_ACK: usize = 5;
    pub const NEW_ASSEMBLE: usize = 6;
    pub const NEW_ASSEMBLE_PA: usize = 7;
    pub const DUP_EXEC_ACK_PA_LF: usize = 8;
    pub const DUP_EXEC_ACK_PA: usize = 9;
    pub const DUP_EXEC_DROP_LF: usize = 10;
    pub const DUP_EXEC_DROP: usize = 11;
    pub const DUP_RETAINED_BASE: usize = 12;
    pub const DUP_RELEASED_BASE: usize = 16;
    pub const STALE_BASE: usize = 20;
    pub const PROBE_EXECUTING: usize = 24;
    pub const PROBE_RETAINED: usize = 25;
    pub const PROBE_RELEASED: usize = 26;
    pub const PROBE_UNKNOWN: usize = 27;
    pub const ACK_ADVANCE: usize = 28;
    pub const ACK_RELEASE: usize = 29;
    pub const ACK_STALE: usize = 30;
    pub const ACK_STALE_LF: usize = 31;
    pub const CALLER_COMPLETE: usize = 32;
    pub const CALLER_FAIL: usize = 33;
    pub const CALLER_COMPLETE_ACK_PA: usize = 34;
    pub const CALLER_COMPLETE_ACK_PA_LF: usize = 35;
    pub const CALLER_ASSEMBLE_ACK_PA: usize = 36;
    pub const CALLER_ASSEMBLE_ACK: usize = 37;
    pub const CALLER_ASSEMBLE_LF: usize = 38;
    pub const CALLER_ASSEMBLE_ACK_PA_LF: usize = 39;
    pub const CALLER_ORPHAN_RESULT_LF: usize = 40;
    pub const CALLER_ORPHAN_RESULT_PA: usize = 41;
    pub const CALLER_ORPHAN_RESULT_CF: usize = 42;
    pub const CALLER_ACK_QUENCH: usize = 43;
    pub const CALLER_ACK_ADVANCE: usize = 44;
    pub const CALLER_PROBE_RESPONSE: usize = 45;
    pub const CALLER_ORPHAN_ACK_LF: usize = 46;
    pub const CALLER_ORPHAN_ACK: usize = 47;
    pub const CALLER_ORPHAN_PR: usize = 48;
}

/// Slot offset inside the four-row `Call` duplicate groups, keyed by
/// the duplicate's flag shape: `last_fragment` 0, `please_ack +
/// last_fragment` 1, `please_ack` 2, bare 3.
pub fn call_slot(please_ack: bool, last_fragment: bool) -> usize {
    match (please_ack, last_fragment) {
        (false, true) => 0,
        (true, true) => 1,
        (true, false) => 2,
        (false, false) => 3,
    }
}

/// Which spec rows this component has taken, as relaxed counters.
pub struct ProtocolWitness {
    seen: [AtomicU64; TRANSITIONS.len()],
}

impl Default for ProtocolWitness {
    fn default() -> Self {
        ProtocolWitness { seen: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl std::fmt::Debug for ProtocolWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolWitness").field("observed", &self.observed()).finish()
    }
}

impl ProtocolWitness {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one traversal of a spec row. Out-of-range rows are a
    /// programming error at the instrumentation site.
    pub fn record(&self, row: usize) {
        self.seen[row].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a row by its canonical spec string. Returns false (and
    /// records nothing) for a string not in the table, which keeps
    /// harness annotations an exact subset of the spec instead of
    /// silently inventing transitions — callers assert on the result.
    #[must_use]
    pub fn record_named(&self, name: &str) -> bool {
        match TRANSITIONS.iter().position(|t| *t == name) {
            Some(row) => {
                self.record(row);
                true
            }
            None => false,
        }
    }

    /// How many times a row fired.
    pub fn count(&self, row: usize) -> u64 {
        self.seen[row].load(Ordering::Relaxed)
    }

    /// The distinct spec rows taken so far, in table order.
    pub fn observed(&self) -> Vec<&'static str> {
        self.seen
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(i, _)| TRANSITIONS[i])
            .collect()
    }

    /// Union this witness's observations into a shared set.
    pub fn merge_into(&self, out: &mut BTreeSet<&'static str>) {
        for t in self.observed() {
            out.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distinct() {
        let mut set = BTreeSet::new();
        for t in TRANSITIONS {
            assert!(set.insert(t), "duplicate spec row {t:?}");
        }
    }

    #[test]
    fn table_matches_protocol_toml() {
        // The committed spec and this table must agree row for row;
        // drift in either direction breaks the cross-diff contract.
        let spec = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../protocol.toml"
        ))
        .expect("protocol.toml is committed at the workspace root");
        let legal: Vec<&str> = spec
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with('"') && l.contains("->"))
            .map(|l| l.trim_start_matches('"').trim_end_matches(',').trim_end_matches('"'))
            .collect();
        assert_eq!(
            legal.len(),
            TRANSITIONS.len(),
            "protocol.toml [transitions].legal row count drifted from witness table"
        );
        for (i, (spec_row, table_row)) in legal.iter().zip(TRANSITIONS.iter()).enumerate() {
            assert_eq!(spec_row, table_row, "row {i} drifted");
        }
    }

    #[test]
    fn record_named_round_trips_every_row() {
        let w = ProtocolWitness::new();
        for t in TRANSITIONS {
            assert!(w.record_named(t), "{t:?} not accepted");
        }
        assert_eq!(w.observed().len(), TRANSITIONS.len());
    }

    #[test]
    fn record_named_rejects_unknown_rows() {
        let w = ProtocolWitness::new();
        assert!(!w.record_named("server-new Call - -> explode"));
        assert!(w.observed().is_empty());
    }

    #[test]
    fn call_slot_covers_all_shapes() {
        let rows: BTreeSet<usize> = [
            call_slot(false, true),
            call_slot(true, true),
            call_slot(true, false),
            call_slot(false, false),
        ]
        .into_iter()
        .collect();
        assert_eq!(rows, (0..4).collect());
    }
}
