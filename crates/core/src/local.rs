//! Local (same-machine) RPC through shared memory.
//!
//! "Our system currently supports transport … by shared memory to another
//! address space on the same machine" (§3.1). Local RPC uses **the same
//! stubs** as inter-machine RPC — only the transport differs: the
//! marshalled call travels through a shared packet buffer instead of the
//! Ethernet, so "the time for local transport is independent of packet
//! size" (§2.2, where local RPC to `Null()` costs 937 µs versus 2660 µs
//! remote).
//!
//! This implementation dispatches the service procedure on the calling
//! thread after marshalling into a shared pool buffer — the zero-switch
//! variant that the paper's footnote 1 points toward (Bershad et al.'s
//! LRPC work on speeding up Firefly local RPC).

use crate::service::Service;
use crate::{Result, RpcError};
use firefly_idl::{CompiledStub, InterfaceDef, StubEngine, Value, Written};
use firefly_pool::BufferPool;
use std::sync::Arc;
use std::time::Duration;

/// A caller stub bound to a service in this process via shared memory.
#[derive(Clone)]
pub struct LocalClient {
    interface: InterfaceDef,
    service: Arc<dyn Service>,
    stubs: Arc<[CompiledStub]>,
    pool: BufferPool,
}

impl LocalClient {
    pub(crate) fn new(
        interface: InterfaceDef,
        service: Arc<dyn Service>,
        pool: BufferPool,
    ) -> Result<LocalClient> {
        let stubs: Arc<[CompiledStub]> = CompiledStub::for_interface(&interface).into();
        Ok(LocalClient {
            interface,
            service,
            stubs,
            pool,
        })
    }

    /// The bound interface.
    pub fn interface(&self) -> &InterfaceDef {
        &self.interface
    }

    /// Calls a procedure by name through the shared-memory transport.
    pub fn call(&self, procedure: &str, args: &[Value]) -> Result<Vec<Value>> {
        let p = self.interface.procedure(procedure)?;
        self.call_index(p.index(), args)
    }

    /// Calls a procedure by index.
    ///
    /// The full stub pipeline runs — marshal into a shared buffer,
    /// unmarshal at the "server", dispatch, marshal results, unmarshal at
    /// the caller — so measured local-RPC time is directly comparable
    /// with the paper's 937 µs figure, minus the wire.
    pub fn call_index(&self, index: u16, args: &[Value]) -> Result<Vec<Value>> {
        let stub = self
            .stubs
            .get(index as usize)
            .ok_or_else(|| firefly_idl::IdlError::NoSuchProcedure(format!("#{index}")))?;

        // Marshal the call into a shared pool buffer (caller stub).
        let mut call_buf = self.pool.alloc_timeout(Duration::from_secs(1))?;
        let raw = call_buf.raw_mut();
        let call_len = match stub.marshal_call(args, raw) {
            Ok(n) => n,
            Err(firefly_idl::IdlError::BufferTooSmall { needed, .. }) => {
                // Local transport is size-independent: spill to the heap.
                return self.call_large(index, stub, args, needed.max(4096));
            }
            Err(e) => return Err(e.into()),
        };
        call_buf.set_len(call_len);

        // Server stub: unmarshal in place from the shared buffer.
        let server_args = stub.unmarshal_call(&call_buf)?;

        // Server procedure writes results into a second shared buffer.
        let mut result_buf = self.pool.alloc_timeout(Duration::from_secs(1))?;
        let rraw = result_buf.raw_mut();
        let mut writer = stub.result_writer(rraw);
        self.service.dispatch(index, &server_args, &mut writer)?;
        let written = writer.finish()?;
        drop(server_args);

        // Caller stub: unmarshal the results.
        let values = match written {
            Written::InPlace { len } => {
                result_buf.set_len(len);
                stub.unmarshal_result(&result_buf)?
            }
            Written::Spilled(data) => stub.unmarshal_result(&data)?,
        };
        Ok(values)
    }

    /// Slow path for calls whose arguments exceed one packet buffer.
    fn call_large(
        &self,
        index: u16,
        stub: &CompiledStub,
        args: &[Value],
        size_hint: usize,
    ) -> Result<Vec<Value>> {
        let mut size = size_hint;
        let data = loop {
            let mut big = vec![0u8; size];
            match stub.marshal_call(args, &mut big) {
                Ok(n) => {
                    big.truncate(n);
                    break big;
                }
                Err(firefly_idl::IdlError::BufferTooSmall { needed, .. }) => {
                    size = needed.max(size * 2);
                    if size > crate::fragment::MAX_TRANSFER {
                        return Err(RpcError::TooLarge(size));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        };
        let server_args = stub.unmarshal_call(&data)?;
        let mut scratch = vec![0u8; data.len().max(4096)];
        let mut writer = stub.result_writer(&mut scratch);
        self.service.dispatch(index, &server_args, &mut writer)?;
        let written = writer.finish()?;
        drop(server_args);
        let values = match written {
            Written::InPlace { len } => stub.unmarshal_result(&scratch[..len])?,
            Written::Spilled(d) => stub.unmarshal_result(&d)?,
        };
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceBuilder;
    use firefly_idl::{parse_interface, test_interface};

    fn local_client() -> LocalClient {
        let service = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Ok(()))
            .on_call("MaxResult", |_a, w| {
                w.next_bytes(1440)?.fill(0x42);
                Ok(())
            })
            .on_call("MaxArg", |args, _w| {
                assert_eq!(args[0].bytes().unwrap().len(), 1440);
                Ok(())
            })
            .build()
            .unwrap();
        LocalClient::new(test_interface(), service, BufferPool::new(8)).unwrap()
    }

    #[test]
    fn local_null_round_trip() {
        let c = local_client();
        let r = c.call("Null", &[]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn local_max_result() {
        let c = local_client();
        let r = c.call("MaxResult", &[Value::char_array(0)]).unwrap();
        assert_eq!(r[0].as_bytes().unwrap(), &[0x42u8; 1440][..]);
    }

    #[test]
    fn local_max_arg() {
        let c = local_client();
        c.call("MaxArg", &[Value::char_array(1440)]).unwrap();
    }

    #[test]
    fn local_large_arguments_spill() {
        let iface = parse_interface(
            "DEFINITION MODULE Big;
               PROCEDURE Sum(VAR IN blob: ARRAY OF CHAR): INTEGER;
             END Big.",
        )
        .unwrap();
        let service = ServiceBuilder::new(iface.clone())
            .on_call("Sum", |args, w| {
                let total: i64 = args[0].bytes().unwrap().iter().map(|&b| b as i64).sum();
                w.next_value(&Value::Integer(total as i32))?;
                Ok(())
            })
            .build()
            .unwrap();
        let c = LocalClient::new(iface, service, BufferPool::new(4)).unwrap();
        let blob = vec![1u8; 10_000];
        let r = c.call("Sum", &[Value::Bytes(blob)]).unwrap();
        assert_eq!(r[0], Value::Integer(10_000));
    }

    #[test]
    fn local_pool_is_not_leaked() {
        let c = local_client();
        for _ in 0..100 {
            c.call("MaxResult", &[Value::char_array(0)]).unwrap();
        }
        assert_eq!(c.pool.stats().outstanding(), 0);
        assert_eq!(c.pool.free_count() + c.pool.receive_queue_len(), 8);
    }
}
