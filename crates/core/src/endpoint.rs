//! Endpoints: one transport, one buffer pool, one demultiplexer.
//!
//! An `Endpoint` is this reproduction's Firefly: it can export services
//! (server role) and bind clients (caller role) simultaneously over one
//! transport. Its demux thread is the Ethernet receive interrupt routine
//! of §3.1.3: it validates headers and the UDP checksum, consults the
//! call table or the server dispatcher, wakes the destination thread
//! directly, and recycles buffers on the fly.

use crate::calltable::{CallTable, Deliver};
use crate::client::Client;
use crate::config::Config;
use crate::local::LocalClient;
use crate::packet::Packet;
use crate::send::SendCtx;
use crate::server::ServerSide;
use crate::service::Service;
use crate::stats::RpcStats;
use crate::transport::Transport;
use crate::{Result, RpcError};
use firefly_idl::InterfaceDef;
use firefly_pool::BufferPool;
use firefly_wire::PacketType;
use firefly_sync::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between an endpoint, its clients, and its demux thread.
pub(crate) struct EndpointShared {
    pub ctx: Arc<SendCtx>,
    pub calls: CallTable,
    pub config: Config,
    pub machine_id: u32,
    pub space_id: u16,
    /// Endpoint-wide activity thread-id allocator: activities must be
    /// unique across every client bound through this endpoint.
    pub next_thread: std::sync::atomic::AtomicU16,
}

/// A caller/server endpoint bound to one transport.
pub struct Endpoint {
    shared: Arc<EndpointShared>,
    server: Arc<ServerSide>,
    demux: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Endpoint {
    /// Creates an endpoint over `transport` and starts its demux and
    /// server threads.
    pub fn new(transport: Arc<dyn Transport>, config: Config) -> Result<Arc<Endpoint>> {
        let pool = BufferPool::new(config.pool_size);
        let stats = Arc::new(RpcStats::default());
        let ctx = Arc::new(SendCtx::new(
            transport,
            pool,
            Arc::clone(&stats),
            config.checksum,
            config.trace_capacity,
        ));
        ctx.tracer.set_enabled(config.trace);
        let machine_id = if config.machine_id != 0 {
            config.machine_id
        } else {
            // Derive a stable nonzero id from the transport address.
            let addr = ctx.transport.local_addr();
            let mac = crate::send::mac_for(&addr).0;
            u32::from_be_bytes([mac[2], mac[3], mac[4], mac[5]]) | 1
        };
        let shared = Arc::new(EndpointShared {
            ctx: Arc::clone(&ctx),
            calls: CallTable::new(),
            machine_id,
            space_id: config.space_id,
            config,
            next_thread: std::sync::atomic::AtomicU16::new(1),
        });
        let server = ServerSide::new(ctx, shared.config.stub_style);
        // Every endpoint exports the built-in binder, so callers can
        // verify interfaces before their first real call.
        server.export(crate::binder::binder_service(&server)?)?;
        let workers = server.spawn_workers(shared.config.server_threads)?;

        let endpoint = Arc::new(Endpoint {
            shared: Arc::clone(&shared),
            server: Arc::clone(&server),
            demux: Mutex::new(None),
            workers: Mutex::new(workers),
        });
        let demux = {
            let shared = Arc::clone(&shared);
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("firefly-demux".into())
                .spawn(move || demux_loop(shared, server))?
        };
        *endpoint.demux.lock() = Some(demux);
        Ok(endpoint)
    }

    /// The address remote endpoints should bind to.
    pub fn address(&self) -> SocketAddr {
        self.shared.ctx.transport.local_addr()
    }

    /// Exports a service (server role).
    pub fn export(&self, service: Arc<dyn Service>) -> Result<()> {
        self.server.export(service)
    }

    /// Binds `interface` at the remote endpoint, returning a caller stub.
    ///
    /// The returned [`Client`] uses the endpoint's transport — the
    /// bind-time transport choice of §3.1.
    pub fn bind(&self, interface: &InterfaceDef, remote: SocketAddr) -> Result<Client> {
        Ok(Client::new(
            Arc::clone(&self.shared),
            // lint:allow(no-alloc-on-fast-path): bind-time setup (§3.1);
            // the stub keeps its own copy of the interface definition.
            interface.clone(),
            remote,
        ))
    }

    /// Binds `interface` at the remote endpoint after verifying through
    /// the remote binder that it is exported there with a matching UID
    /// and version.
    ///
    /// This is the explicit version of §3.1.1's precondition, "assuming
    /// that binding to a suitable remote instance of the interface has
    /// already occurred".
    pub fn bind_checked(&self, interface: &InterfaceDef, remote: SocketAddr) -> Result<Client> {
        use firefly_idl::Value;
        let binder = self.bind(&crate::binder::binder_interface(), remote)?;
        let r = binder.call(
            "Describe",
            // lint:allow(no-alloc-on-fast-path): binder handshake runs
            // once per bind, before any call traffic.
            &[Value::text(interface.name()), Value::Bytes(Vec::new())],
        )?;
        let uid_hex = String::from_utf8_lossy(r[0].as_bytes().unwrap_or(&[])).into_owned();
        let version = r[1].as_integer().unwrap_or(-1);
        if uid_hex != crate::binder::uid_hex(interface.uid()) {
            return Err(RpcError::Binding(format!(
                "remote `{}` has uid {uid_hex}, local definition has {} — \
                 the interface signatures differ",
                interface.name(),
                crate::binder::uid_hex(interface.uid())
            )));
        }
        if version != i32::from(interface.version()) {
            return Err(RpcError::Binding(format!(
                "remote `{}` is version {version}, local is {}",
                interface.name(),
                interface.version()
            )));
        }
        self.bind(interface, remote)
    }

    /// Binds an interface exported by **this** endpoint through the
    /// shared-memory local transport (the paper's same-machine RPC).
    pub fn bind_local(&self, interface: &InterfaceDef) -> Result<LocalClient> {
        let service = self.server.service_for(interface.uid()).ok_or_else(|| {
            RpcError::Binding(format!(
                "interface `{}` is not exported locally",
                interface.name()
            ))
        })?;
        // lint:allow(no-alloc-on-fast-path): bind-time setup; the local
        // client holds its own interface copy and pool handle.
        LocalClient::new(interface.clone(), service, self.shared.ctx.pool.clone())
    }

    /// Reclaims server-side state for caller activities idle longer than
    /// `max_idle`; returns how many were dropped. The paper keeps
    /// fast-path state only for conversations active "within a few
    /// seconds" (§3.1).
    pub fn prune_idle_activities(&self, max_idle: Duration) -> usize {
        self.server.prune_idle(max_idle)
    }

    /// Number of caller activities currently tracked by the server side.
    pub fn tracked_activities(&self) -> usize {
        self.server.activity_count()
    }

    /// Installs an authorization gate consulted for every incoming call
    /// (`None` clears it). See [`crate::auth::CallGate`].
    pub fn set_call_gate(&self, gate: Option<Arc<dyn crate::auth::CallGate>>) {
        self.server.set_gate(gate);
    }

    /// Runtime counters.
    pub fn stats(&self) -> &RpcStats {
        &self.shared.ctx.stats
    }

    /// The per-call step tracer — the live Table VII latency account.
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.shared.ctx.tracer
    }

    /// Turns per-call step tracing on or off at runtime. Pure
    /// observability: protocol behaviour and results are unaffected.
    pub fn set_tracing(&self, on: bool) {
        self.shared.ctx.tracer.set_enabled(on);
    }

    /// Drains the completed-trace ring and aggregates per-step latency
    /// histograms for both the caller and server roles of this endpoint.
    pub fn trace_report(&self) -> crate::trace::TraceReport {
        self.shared.ctx.tracer.report()
    }

    /// The shared packet-buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.shared.ctx.pool
    }

    /// Stops the demux and server threads and unblocks the transport.
    pub fn shutdown(&self) {
        self.shared.ctx.transport.shutdown();
        self.server.shutdown(self.shared.config.server_threads);
        // Take the handles out under the guards, join after they drop:
        // joining a thread that is itself draining the transport while
        // holding these mutexes would deadlock against `Drop` callers.
        let demux = self.demux.lock().take();
        if let Some(h) = demux {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The receive loop — the reproduction's Ethernet interrupt routine.
fn demux_loop(shared: Arc<EndpointShared>, server: Arc<ServerSide>) {
    let stats = Arc::clone(&shared.ctx.stats);
    loop {
        // Take a receive buffer, preferring recycled ones.
        let mut buf = loop {
            match shared.ctx.pool.take_receive_buffer() {
                Ok(b) => break b,
                Err(_) => {
                    // Pool exhausted: wait briefly for a buffer to free.
                    match shared.ctx.pool.alloc_timeout(Duration::from_millis(100)) {
                        Ok(b) => break b,
                        Err(_) => continue,
                    }
                }
            }
        };
        let (n, src) = match shared.ctx.transport.recv(buf.raw_mut()) {
            Ok(x) => x,
            Err(_) => return, // Shutdown.
        };
        buf.set_len(n);
        let pkt = match Packet::from_buf(buf) {
            Ok(p) => p,
            Err(_) => {
                RpcStats::bump(&stats.validation_drops);
                continue;
            }
        };
        match pkt.rpc.packet_type {
            PacketType::Call => server.handle_call_packet(pkt, src),
            PacketType::Probe => {
                server.handle_probe(&pkt.rpc, src);
                shared.ctx.pool.recycle_to_receive_queue(pkt.into_buf());
            }
            PacketType::Result => match shared.calls.deliver(pkt) {
                Deliver::Accepted => {
                    RpcStats::bump(&stats.results_received);
                    RpcStats::bump(&stats.direct_wakeups);
                }
                Deliver::AcceptedNeedsAck(ack) => {
                    RpcStats::bump(&stats.results_received);
                    RpcStats::bump(&stats.direct_wakeups);
                    let _ = shared.ctx.send_ack(&ack, src);
                }
                Deliver::Orphan(pkt) => {
                    RpcStats::bump(&stats.orphan_results);
                    shared.ctx.pool.recycle_to_receive_queue(pkt.into_buf());
                    RpcStats::bump(&stats.buffers_recycled);
                }
            },
            PacketType::Ack | PacketType::ProbeResponse => {
                if pkt.rpc.flags.acks_result {
                    // The caller acknowledged one of our result fragments.
                    server.handle_result_ack(&pkt.rpc);
                    shared.ctx.pool.recycle_to_receive_queue(pkt.into_buf());
                } else {
                    RpcStats::bump(&stats.acks_received);
                    match shared.calls.deliver(pkt) {
                        Deliver::Accepted | Deliver::AcceptedNeedsAck(_) => {
                            RpcStats::bump(&stats.direct_wakeups);
                        }
                        Deliver::Orphan(pkt) => {
                            shared.ctx.pool.recycle_to_receive_queue(pkt.into_buf());
                        }
                    }
                }
            }
        }
    }
}
