//! Endpoints: one transport, one buffer pool, one demultiplexer.
//!
//! An `Endpoint` is this reproduction's Firefly: it can export services
//! (server role) and bind clients (caller role) simultaneously over one
//! transport. Its demux thread is the Ethernet receive interrupt routine
//! of §3.1.3: it validates headers and the UDP checksum, consults the
//! call table or the server dispatcher, wakes the destination thread
//! directly, and recycles buffers on the fly.

use crate::calltable::{Deliver, ShardedCallTable};
use crate::client::Client;
use crate::config::Config;
use crate::local::LocalClient;
use crate::packet::Packet;
use crate::send::SendCtx;
use crate::server::ServerSide;
use crate::service::Service;
use crate::stats::RpcStats;
use crate::transport::Transport;
use crate::{Result, RpcError};
use firefly_idl::InterfaceDef;
use firefly_pool::{PacketBuf, ShardedPool};
use firefly_wire::{coalesced_frame_len, PacketType};
use firefly_sync::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between an endpoint, its clients, and its demux thread.
pub(crate) struct EndpointShared {
    pub ctx: Arc<SendCtx>,
    pub calls: ShardedCallTable,
    pub config: Config,
    pub machine_id: u32,
    pub space_id: u16,
    /// Endpoint-wide activity thread-id allocator: activities must be
    /// unique across every client bound through this endpoint.
    pub next_thread: std::sync::atomic::AtomicU16,
}

/// A caller/server endpoint bound to one transport.
pub struct Endpoint {
    shared: Arc<EndpointShared>,
    server: Arc<ServerSide>,
    demux: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Endpoint {
    /// Creates an endpoint over `transport` and starts its demux and
    /// server threads.
    pub fn new(transport: Arc<dyn Transport>, config: Config) -> Result<Arc<Endpoint>> {
        let pool = ShardedPool::new(config.pool_size, config.shards);
        let stats = Arc::new(RpcStats::default());
        let ctx = Arc::new(SendCtx::new(
            transport,
            pool,
            Arc::clone(&stats),
            config.checksum,
            config.trace_capacity,
        ));
        ctx.tracer.set_enabled(config.trace);
        let machine_id = if config.machine_id != 0 {
            config.machine_id
        } else {
            // Derive a stable nonzero id from the transport address.
            let addr = ctx.transport.local_addr();
            let mac = crate::send::mac_for(&addr).0;
            u32::from_be_bytes([mac[2], mac[3], mac[4], mac[5]]) | 1
        };
        let shared = Arc::new(EndpointShared {
            ctx: Arc::clone(&ctx),
            calls: ShardedCallTable::new(config.shards),
            machine_id,
            space_id: config.space_id,
            config,
            next_thread: std::sync::atomic::AtomicU16::new(1),
        });
        let server = ServerSide::new(ctx, shared.config.stub_style, shared.config.server_threads);
        // Every endpoint exports the built-in binder, so callers can
        // verify interfaces before their first real call.
        server.export(crate::binder::binder_service(&server)?)?;
        let workers = server.spawn_workers()?;

        let endpoint = Arc::new(Endpoint {
            shared: Arc::clone(&shared),
            server: Arc::clone(&server),
            demux: Mutex::new(None),
            workers: Mutex::new(workers),
        });
        let demux = {
            let shared = Arc::clone(&shared);
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("firefly-demux".into())
                .spawn(move || demux_loop(shared, server))?
        };
        *endpoint.demux.lock() = Some(demux);
        Ok(endpoint)
    }

    /// The address remote endpoints should bind to.
    pub fn address(&self) -> SocketAddr {
        self.shared.ctx.transport.local_addr()
    }

    /// Exports a service (server role).
    pub fn export(&self, service: Arc<dyn Service>) -> Result<()> {
        self.server.export(service)
    }

    /// Binds `interface` at the remote endpoint, returning a caller stub.
    ///
    /// The returned [`Client`] uses the endpoint's transport — the
    /// bind-time transport choice of §3.1.
    pub fn bind(&self, interface: &InterfaceDef, remote: SocketAddr) -> Result<Client> {
        Ok(Client::new(
            Arc::clone(&self.shared),
            // lint:allow(no-alloc-on-fast-path): bind-time setup (§3.1);
            // the stub keeps its own copy of the interface definition.
            interface.clone(),
            remote,
        ))
    }

    /// Binds `interface` at the remote endpoint after verifying through
    /// the remote binder that it is exported there with a matching UID
    /// and version.
    ///
    /// This is the explicit version of §3.1.1's precondition, "assuming
    /// that binding to a suitable remote instance of the interface has
    /// already occurred".
    pub fn bind_checked(&self, interface: &InterfaceDef, remote: SocketAddr) -> Result<Client> {
        use firefly_idl::Value;
        let binder = self.bind(&crate::binder::binder_interface(), remote)?;
        let r = binder.call(
            "Describe",
            // lint:allow(no-alloc-on-fast-path): binder handshake runs
            // once per bind, before any call traffic.
            &[Value::text(interface.name()), Value::Bytes(Vec::new())],
        )?;
        let uid_hex = String::from_utf8_lossy(r[0].as_bytes().unwrap_or(&[])).into_owned();
        let version = r[1].as_integer().unwrap_or(-1);
        if uid_hex != crate::binder::uid_hex(interface.uid()) {
            return Err(RpcError::Binding(format!(
                "remote `{}` has uid {uid_hex}, local definition has {} — \
                 the interface signatures differ",
                interface.name(),
                crate::binder::uid_hex(interface.uid())
            )));
        }
        if version != i32::from(interface.version()) {
            return Err(RpcError::Binding(format!(
                "remote `{}` is version {version}, local is {}",
                interface.name(),
                interface.version()
            )));
        }
        self.bind(interface, remote)
    }

    /// Binds an interface exported by **this** endpoint through the
    /// shared-memory local transport (the paper's same-machine RPC).
    pub fn bind_local(&self, interface: &InterfaceDef) -> Result<LocalClient> {
        let service = self.server.service_for(interface.uid()).ok_or_else(|| {
            RpcError::Binding(format!(
                "interface `{}` is not exported locally",
                interface.name()
            ))
        })?;
        // Local RPC is lock-free per call, so one pool shard suffices.
        // lint:allow(no-alloc-on-fast-path): bind-time setup; the local
        // client holds its own interface copy and pool handle.
        LocalClient::new(interface.clone(), service, self.shared.ctx.pool.shard(0).clone())
    }

    /// Reclaims server-side state for caller activities idle longer than
    /// `max_idle`; returns how many were dropped. The paper keeps
    /// fast-path state only for conversations active "within a few
    /// seconds" (§3.1).
    pub fn prune_idle_activities(&self, max_idle: Duration) -> usize {
        self.server.prune_idle(max_idle)
    }

    /// Number of caller activities currently tracked by the server side.
    pub fn tracked_activities(&self) -> usize {
        self.server.activity_count()
    }

    /// Installs an authorization gate consulted for every incoming call
    /// (`None` clears it). See [`crate::auth::CallGate`].
    pub fn set_call_gate(&self, gate: Option<Arc<dyn crate::auth::CallGate>>) {
        self.server.set_gate(gate);
    }

    /// Runtime counters.
    pub fn stats(&self) -> &RpcStats {
        &self.shared.ctx.stats
    }

    /// The per-call step tracer — the live Table VII latency account.
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.shared.ctx.tracer
    }

    /// Turns per-call step tracing on or off at runtime. Pure
    /// observability: protocol behaviour and results are unaffected.
    pub fn set_tracing(&self, on: bool) {
        self.shared.ctx.tracer.set_enabled(on);
    }

    /// Drains the completed-trace ring and aggregates per-step latency
    /// histograms for both the caller and server roles of this endpoint.
    pub fn trace_report(&self) -> crate::trace::TraceReport {
        self.shared.ctx.tracer.report()
    }

    /// The shared (sharded) packet-buffer pool.
    pub fn pool(&self) -> &ShardedPool {
        &self.shared.ctx.pool
    }

    /// The distinct protocol.toml transition rows this endpoint has
    /// taken so far, across its server demux (send-context witness) and
    /// every caller call-table shard. This is what `firefly-check`'s
    /// wire scenario exports for the cross-diff coverage gate.
    pub fn protocol_transitions(&self) -> Vec<&'static str> {
        let mut rows = std::collections::BTreeSet::new();
        self.shared.ctx.witness.merge_into(&mut rows);
        self.shared.calls.merge_witnesses(&mut rows);
        // Table order reads better than BTreeSet's lexicographic order.
        crate::witness::TRANSITIONS
            .iter()
            .copied()
            .filter(|t| rows.contains(t))
            .collect()
    }

    /// Stops the demux and server threads and unblocks the transport.
    pub fn shutdown(&self) {
        self.shared.ctx.transport.shutdown();
        self.server.shutdown();
        // Take the handles out under the guards, join after they drop:
        // joining a thread that is itself draining the transport while
        // holding these mutexes would deadlock against `Drop` callers.
        let demux = self.demux.lock().take();
        if let Some(h) = demux {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Takes a receive buffer, preferring recycled ones; rotates the shard
/// cursor so receive-buffer pressure spreads across shards.
fn take_receive_buf(shared: &EndpointShared, cursor: &mut usize) -> PacketBuf {
    loop {
        *cursor = cursor.wrapping_add(1);
        match shared.ctx.pool.take_receive_buffer_from(*cursor) {
            Ok(b) => return b,
            Err(_) => {
                // Every shard exhausted: wait briefly for a free.
                if let Ok(b) = shared
                    .ctx
                    .pool
                    .alloc_timeout_from(*cursor, Duration::from_millis(100))
                {
                    return b;
                }
            }
        }
    }
}

/// Nonblocking receive attempts (each yielding the processor) the
/// demux makes before falling back to a blocking receive; see the
/// comment at the poll site.
const DEMUX_POLLS_BEFORE_BLOCK: usize = 32;

/// The receive loop — the reproduction's Ethernet interrupt routine.
///
/// Batching: the first datagram of a burst is taken with a blocking
/// receive; up to `config.recv_batch` more are then drained with
/// nonblocking receives, so one demux wakeup (and, over UDP, one
/// blocking-mode transition) serves the whole burst. The unused buffer
/// that discovers the end of the burst is carried into the next
/// blocking receive, keeping the demux's held-buffer count at one.
fn demux_loop(shared: Arc<EndpointShared>, server: Arc<ServerSide>) {
    let stats = Arc::clone(&shared.ctx.stats);
    let batch = shared.config.recv_batch;
    let mut cursor = 0usize;
    let mut spare: Option<PacketBuf> = None;
    loop {
        let mut buf = match spare.take() {
            Some(b) => b,
            None => take_receive_buf(&shared, &mut cursor),
        };
        // Cooperative poll before the blocking receive: during a steady
        // call stream the next datagram arrives within a few yields
        // (the sender is runnable on this very machine in tests and
        // benchmarks), and catching it nonblocking saves the sender the
        // futex wake and this thread the scheduler round trip. The
        // budget is small enough to cost only a bounded handful of
        // no-op syscalls before an idle endpoint genuinely parks.
        let mut polled = None;
        for _ in 0..DEMUX_POLLS_BEFORE_BLOCK {
            match shared.ctx.transport.try_recv(buf.raw_mut()) {
                Ok(Some(x)) => {
                    polled = Some(x);
                    break;
                }
                Ok(None) => std::thread::yield_now(),
                Err(_) => return, // Shutdown.
            }
        }
        let (n, src) = match polled {
            Some(x) => x,
            None => match shared.ctx.transport.recv(buf.raw_mut()) {
                Ok(x) => x,
                Err(_) => return, // Shutdown.
            },
        };
        buf.set_len(n);
        process_datagram(&shared, &server, &stats, &mut cursor, buf, src);
        let mut drained = 0;
        while drained < batch {
            let mut b = take_receive_buf(&shared, &mut cursor);
            match shared.ctx.transport.try_recv(b.raw_mut()) {
                Ok(Some((n, src))) => {
                    b.set_len(n);
                    process_datagram(&shared, &server, &stats, &mut cursor, b, src);
                    drained += 1;
                }
                Ok(None) => {
                    spare = Some(b);
                    break;
                }
                Err(_) => return, // Shutdown.
            }
        }
    }
}

/// Largest number of *trailing* frames one coalesced datagram can
/// carry: a 1514-byte datagram holds at most ⌊1514 / 74⌋ = 20
/// minimum-size frames, and the first stays in the receive buffer.
const MAX_COALESCED_TAILS: usize = firefly_wire::MAX_FRAME_LEN / firefly_wire::MIN_FRAME_LEN;

/// Splits one received datagram into its coalesced frames and processes
/// each in arrival order.
///
/// The sending transport may pack several complete frames back to back
/// into one datagram ([`Transport::send_batch`]); each frame's IP
/// total-length field gives its boundary. The common case — one frame
/// per datagram — is detected by the first boundary matching the
/// datagram length and stays zero-copy. For a packed datagram the head
/// frame is processed in place and each tail frame is copied into its
/// own pool buffer first, so every frame flows through the same owned
/// [`Packet`] path; processing stays in wire order, so replies within
/// one activity are never reordered.
fn process_datagram(
    shared: &EndpointShared,
    server: &ServerSide,
    stats: &RpcStats,
    cursor: &mut usize,
    mut buf: PacketBuf,
    src: SocketAddr,
) {
    let n = buf.len();
    let first = match coalesced_frame_len(&buf) {
        Some(len) => len,
        None => {
            // Shorter than any frame, or an implausible length field;
            // `Packet::from_buf` would reject it anyway, but without a
            // boundary there is nothing to walk.
            RpcStats::bump(&stats.validation_drops);
            buf.recycle();
            return;
        }
    };
    if first == n {
        // Common case: one frame per datagram, no copies.
        process_frame(shared, server, stats, buf, src);
        return;
    }
    // A split datagram means batched peer traffic: the frames below are
    // about to wake several local threads at once, so arm the send-side
    // combining window before any of them reaches the transport.
    shared.ctx.note_coalesced_delivery();
    // Copy the tail frames out *before* shrinking the head in place.
    let mut tails: [Option<PacketBuf>; MAX_COALESCED_TAILS] = [const { None }; MAX_COALESCED_TAILS];
    let mut count = 0;
    let mut off = first;
    while off < n && count < tails.len() {
        let Some(len) = coalesced_frame_len(&buf[off..n]) else {
            // Trailing garbage or a truncated pack: drop the remainder.
            RpcStats::bump(&stats.validation_drops);
            break;
        };
        let mut tail = take_receive_buf(shared, cursor);
        tail.raw_mut()[..len].copy_from_slice(&buf[off..off + len]);
        tail.set_len(len);
        tails[count] = Some(tail);
        count += 1;
        off += len;
    }
    buf.set_len(first);
    process_frame(shared, server, stats, buf, src);
    for slot in tails.iter_mut().take(count) {
        if let Some(tail) = slot.take() {
            process_frame(shared, server, stats, tail, src);
        }
    }
}

/// Demultiplexes one received frame — validation, routing, direct
/// wakeup, on-the-fly buffer recycling (§3.1.3).
fn process_frame(
    shared: &EndpointShared,
    server: &ServerSide,
    stats: &RpcStats,
    buf: PacketBuf,
    src: SocketAddr,
) {
    let pkt = match Packet::from_buf(buf) {
        Ok(p) => p,
        Err(e) => {
            // A garbage packet-type byte is counted apart from other
            // validation failures: it is the shape a version-skewed or
            // hostile peer produces, and the chaos garbage-frame mix
            // asserts it never errors the demux loop.
            match e {
                crate::RpcError::Wire(firefly_wire::WireError::BadPacketType(_)) => {
                    RpcStats::bump(&stats.unknown_type_drops);
                }
                _ => RpcStats::bump(&stats.validation_drops),
            }
            return;
        }
    };
    match pkt.rpc.packet_type {
        PacketType::Call => server.handle_call_packet(pkt, src),
        PacketType::Probe => {
            server.handle_probe(&pkt.rpc, src);
            pkt.into_buf().recycle();
        }
        PacketType::Result => match shared.calls.deliver(pkt) {
            Deliver::Accepted => {
                RpcStats::bump(&stats.results_received);
                RpcStats::bump(&stats.direct_wakeups);
            }
            Deliver::AcceptedNeedsAck(ack) => {
                RpcStats::bump(&stats.results_received);
                RpcStats::bump(&stats.direct_wakeups);
                let _ = shared.ctx.send_ack(&ack, src);
            }
            Deliver::Orphan(pkt) => {
                RpcStats::bump(&stats.orphan_results);
                pkt.into_buf().recycle();
                RpcStats::bump(&stats.buffers_recycled);
            }
        },
        PacketType::Ack | PacketType::ProbeResponse => {
            if pkt.rpc.flags.acks_result {
                // The caller acknowledged one of our result fragments.
                server.handle_result_ack(&pkt.rpc);
                pkt.into_buf().recycle();
            } else {
                RpcStats::bump(&stats.acks_received);
                let is_probe_response = pkt.rpc.packet_type == PacketType::ProbeResponse;
                match shared.calls.deliver(pkt) {
                    Deliver::Accepted | Deliver::AcceptedNeedsAck(_) => {
                        RpcStats::bump(&stats.direct_wakeups);
                    }
                    Deliver::Orphan(pkt) => {
                        // A ProbeResponse with no outstanding probe (the
                        // probing call already completed, or the probe was
                        // a duplicate) is protocol noise, not an error.
                        if is_probe_response {
                            RpcStats::bump(&stats.stray_probe_responses);
                        }
                        pkt.into_buf().recycle();
                    }
                }
            }
        }
    }
}
