//! The Firefly RPC runtime.
//!
//! This crate is the reproduction's equivalent of the Firefly RPC runtime
//! plus the RPC-relevant parts of the Nub (the Firefly kernel): the custom
//! RPC packet exchange protocol layered on IP/UDP, the shared call table
//! with **direct thread wakeup from the demultiplexer**, bind-time
//! transport selection, retransmission with implicit acknowledgements, and
//! multi-packet calls and results.
//!
//! # Architecture (mirrors §3.1 of the paper)
//!
//! ```text
//!  caller program ──▶ caller stub ──▶ Starter    (get pool buffer)
//!                                  ─▶ marshal    (firefly-idl engines)
//!                                  ─▶ Transporter(register in call table,
//!                                                 send, await wakeup,
//!                                                 retransmit on timeout)
//!                                  ─▶ unmarshal
//!                                  ─▶ Ender      (recycle the buffer)
//!
//!  demux thread ("Ethernet interrupt routine"):
//!      recv → validate headers + UDP checksum → look up call table
//!           → wake the waiting caller thread directly        (fast path)
//!           → or hand a call packet to an idle server thread (fast path)
//!           → or queue for the slow path when nobody waits
//!
//!  server thread ──▶ Receiver ──▶ server stub ─▶ service procedure
//!                 ◀── marshal results into the result packet ◀──
//! ```
//!
//! An [`Endpoint`] owns one transport, one buffer pool, one demux thread,
//! a caller-side call table and a server-side dispatcher; it can act as
//! caller and server simultaneously, like a Firefly. [`Client`]s are
//! created by binding an interface to a remote endpoint; services are
//! exported with [`Endpoint::export`].
//!
//! Three transports are provided, chosen at bind time exactly as in the
//! paper ("Firefly RPC allows choosing from several different transport
//! mechanisms at RPC bind time"):
//!
//! * [`transport::UdpTransport`] — real UDP sockets (inter-process or
//!   inter-machine); the full 74-/1514-byte frame travels as the datagram
//!   payload so byte-level accounting matches the paper,
//! * [`transport::LoopbackNet`] — a deterministic in-process Ethernet
//!   segment with configurable loss, duplication, corruption and delay for
//!   protocol testing,
//! * [`local`] — same-machine shared-memory RPC (the paper's third
//!   transport; its `Null()` takes 937 µs on the Firefly versus 2660 µs
//!   remote).
//!
//! # Examples
//!
//! ```
//! use firefly_rpc::{Endpoint, Config, ServiceBuilder};
//! use firefly_idl::{test_interface, Value};
//! use firefly_rpc::transport::LoopbackNet;
//!
//! let net = LoopbackNet::new();
//! let server = Endpoint::new(net.station(1), Config::default()).unwrap();
//! let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
//!
//! let service = ServiceBuilder::new(test_interface())
//!     .on_call("Null", |_args, _w| Ok(()))
//!     .on_call("MaxResult", |_args, w| {
//!         w.next_bytes(1440)?.fill(0xab);
//!         Ok(())
//!     })
//!     .on_call("MaxArg", |_args, _w| Ok(()))
//!     .build()
//!     .unwrap();
//! server.export(service).unwrap();
//!
//! let client = caller.bind(&test_interface(), server.address()).unwrap();
//! client.call("Null", &[]).unwrap();
//! // The caller passes its variable `b` for the VAR OUT argument; only
//! // its identity matters — the value travels back in the result packet.
//! let b = Value::char_array(1440);
//! let r = client.call("MaxResult", &[b]).unwrap();
//! assert_eq!(r[0].as_bytes().unwrap().len(), 1440);
//! ```

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

pub mod auth;
pub mod binder;
pub mod calltable;
pub mod client;
pub mod config;
pub mod endpoint;
pub mod error;
pub mod fragment;
pub mod local;
pub mod packet;
pub(crate) mod send;
pub mod server;
pub mod service;
pub mod shard;
pub mod stats;
pub mod trace;
pub mod transport;
pub mod witness;

pub use client::Client;
pub use config::Config;
pub use endpoint::Endpoint;
pub use error::RpcError;
pub use service::{Service, ServiceBuilder};
pub use stats::RpcStats;
pub use trace::{TraceRecord, TraceReport, Tracer};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RpcError>;
