//! The caller side: binding, Starter, Transporter and Ender.
//!
//! A [`Client`] is the result of binding an interface to a remote
//! endpoint. Its [`Client::call`] follows the five caller-stub steps of
//! §3.1.1 exactly:
//!
//! 1. **Starter** — obtain a packet buffer with a partially filled-in
//!    header,
//! 2. **marshal** the arguments into the call packet (compiled stubs),
//! 3. **Transporter** — register the call in the call table, transmit,
//!    and wait for the result with retransmission and probing,
//! 4. **unmarshal** the result packet into caller values,
//! 5. **Ender** — return the packet buffer to the pool (recycled straight
//!    to the receive queue, as the paper's interrupt handler does).
//!
//! Each OS thread making calls concurrently gets its own *activity*; an
//! activity has at most one outstanding call, and its monotonically
//! increasing sequence number gives the protocol its implicit-ack and
//! duplicate-filtering structure.

use crate::calltable::Wait;
use crate::endpoint::EndpointShared;
use crate::packet::Assembled;
use crate::{Result, RpcError};
use firefly_idl::{engines_for_interface, InterfaceDef, StubEngine, Value};
use firefly_wire::{
    ActivityId, PacketFlags, PacketType, RpcHeader, DATA_OFFSET, MAX_SINGLE_PACKET_DATA,
};
use firefly_sync::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// One reusable activity slot with its sequence counter and the header of
/// the last result received (so an explicit ack can be sent at teardown).
struct Slot {
    activity: ActivityId,
    next_seq: u32,
    last_result: Option<RpcHeader>,
}

/// Pool of activity slots: one per concurrently calling thread.
///
/// Thread ids come from the endpoint-wide allocator so activities are
/// unique even when several clients are bound through one endpoint.
struct ActivityPool {
    free: Mutex<Vec<Slot>>,
    shared: Arc<EndpointShared>,
    machine: u32,
    space: u16,
}

impl ActivityPool {
    fn acquire(&self) -> Slot {
        if let Some(slot) = self.free.lock().pop() {
            return slot;
        }
        let next = self
            .shared
            .next_thread
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Slot {
            activity: ActivityId::new(self.machine, self.space, next),
            next_seq: 1,
            last_result: None,
        }
    }

    fn release(&self, slot: Slot) {
        self.free.lock().push(slot);
    }
}

/// A bound caller stub for one interface at one remote endpoint.
///
/// Cloneable and thread-safe: concurrent calls from many threads use
/// distinct activities, which is exactly how Table I's multi-threaded
/// caller works.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

struct ClientInner {
    shared: Arc<EndpointShared>,
    interface: InterfaceDef,
    stubs: Vec<Box<dyn StubEngine>>,
    remote: SocketAddr,
    activities: ActivityPool,
}

impl Client {
    pub(crate) fn new(
        shared: Arc<EndpointShared>,
        interface: InterfaceDef,
        remote: SocketAddr,
    ) -> Client {
        let stubs = engines_for_interface(&interface, shared.config.stub_style);
        let machine = shared.machine_id;
        let space = shared.space_id;
        Client {
            inner: Arc::new(ClientInner {
                activities: ActivityPool {
                    // lint:allow(no-alloc-on-fast-path): one-time Client
                    // construction at bind time, not the per-call path.
                    free: Mutex::new(Vec::new()),
                    shared: Arc::clone(&shared),
                    machine,
                    space,
                },
                shared,
                interface,
                stubs,
                remote,
            }),
        }
    }

    /// The bound interface.
    pub fn interface(&self) -> &InterfaceDef {
        &self.inner.interface
    }

    /// The remote endpoint address.
    pub fn remote(&self) -> SocketAddr {
        self.inner.remote
    }

    /// Calls a procedure by name; returns the result-direction values in
    /// plan order.
    pub fn call(&self, procedure: &str, args: &[Value]) -> Result<Vec<Value>> {
        let p = self.inner.interface.procedure(procedure)?;
        self.call_inner(p.index(), args, None)
    }

    /// Calls a procedure by name with an overall deadline.
    ///
    /// The paper's semantics wait indefinitely while the server is alive
    /// (probing); a deadline bounds the caller's patience instead. On
    /// [`RpcError::DeadlineExceeded`] the call may still execute at the
    /// server — callers needing exactly-once observability must design
    /// idempotent procedures.
    pub fn call_with_deadline(
        &self,
        procedure: &str,
        args: &[Value],
        deadline: std::time::Duration,
    ) -> Result<Vec<Value>> {
        let p = self.inner.interface.procedure(procedure)?;
        self.call_inner(p.index(), args, Some(Instant::now() + deadline))
    }

    /// Calls a procedure by its on-wire index.
    pub fn call_index(&self, index: u16, args: &[Value]) -> Result<Vec<Value>> {
        self.call_inner(index, args, None)
    }

    fn call_inner(
        &self,
        index: u16,
        args: &[Value],
        deadline: Option<Instant>,
    ) -> Result<Vec<Value>> {
        let inner = &self.inner;
        let stub = inner
            .stubs
            .get(index as usize)
            .ok_or_else(|| firefly_idl::IdlError::NoSuchProcedure(format!("#{index}")))?;
        let shared = &inner.shared;
        // The live latency account (Table VII): stamp each step boundary
        // into the stack-resident span. Inert unless tracing is enabled.
        let mut span = shared.ctx.tracer.caller_span(index);

        // --- Starter: obtain an activity and a packet buffer. ---
        // The activity is acquired first so the buffer can come from the
        // activity's home shard: caller, demultiplexer and server worker
        // then all touch the same pool shard for this call.
        let mut slot = inner.activities.acquire();
        let seq = slot.next_seq;
        slot.next_seq += 1;
        let activity = slot.activity;
        let shard = crate::calltable::shard_for(activity, shared.ctx.pool.shard_count());
        let mut call_buf = match shared
            .ctx
            .pool
            .alloc_timeout_from(shard, std::time::Duration::from_secs(2))
        {
            Ok(buf) => buf,
            Err(e) => {
                inner.activities.release(slot);
                return Err(e.into());
            }
        };
        span.stamp(crate::trace::Stamp::BufferAcquired);

        // --- Marshal the arguments. ---
        // Fast path straight into the packet buffer; oversized argument
        // lists re-marshal into a heap buffer for fragmentation
        // (marshalling is pure, so the retry is safe).
        let mut heap_data: Option<Vec<u8>> = None;
        let raw = call_buf.raw_mut();
        let marshalled = (|| -> Result<usize> {
            match stub.marshal_call(args, &mut raw[DATA_OFFSET..]) {
                Ok(n) => Ok(n),
                Err(firefly_idl::IdlError::BufferTooSmall { .. }) => {
                    let mut size = 4 * MAX_SINGLE_PACKET_DATA;
                    loop {
                        // lint:allow(no-alloc-on-fast-path): oversized
                        // argument lists take the fragmentation slow path;
                        // single-packet calls marshal straight into the
                        // pooled buffer above.
                        let mut big = vec![0u8; size];
                        match stub.marshal_call(args, &mut big) {
                            Ok(n) => {
                                big.truncate(n);
                                heap_data = Some(big);
                                return Ok(n);
                            }
                            Err(firefly_idl::IdlError::BufferTooSmall { needed, .. }) => {
                                size = needed.max(size * 2);
                                if size > crate::fragment::MAX_TRANSFER {
                                    return Err(RpcError::TooLarge(size));
                                }
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                Err(e) => Err(e.into()),
            }
        })();
        let data_len = match marshalled {
            Ok(n) => n,
            Err(e) => {
                inner.activities.release(slot);
                return Err(e);
            }
        };
        span.stamp(crate::trace::Stamp::MarshalDone);

        // --- Transporter: register, send, await, retransmit. ---
        let header = RpcHeader {
            packet_type: PacketType::Call,
            flags: PacketFlags::single_packet(),
            activity,
            call_seq: seq,
            fragment: 0,
            fragment_count: 1,
            interface_uid: inner.interface.uid(),
            interface_version: inner.interface.version(),
            procedure: index,
            data_len: data_len as u16,
        };

        let result = (|| -> Result<Assembled> {
            let entry = shared.calls.register(activity, seq);
            let outcome = match &heap_data {
                None => {
                    // Single packet, zero copy: headers around the data in
                    // the pool buffer.
                    let total = shared
                        .ctx
                        .builder_from(&header, inner.remote)
                        .encode_into(call_buf.raw_mut(), data_len)?;
                    call_buf.set_len(total);
                    self.transact_single(&header, &call_buf, &entry, deadline, &mut span)
                }
                Some(data) => self.transact_multi(&header, data, &entry, deadline, &mut span),
            };
            shared.calls.unregister(activity);
            outcome
        })();

        // --- Unmarshal + Ender. ---
        let outcome = match result {
            Ok(o) => o,
            Err(e) => {
                inner.activities.release(slot);
                return Err(e);
            }
        };
        crate::stats::RpcStats::bump(&shared.ctx.stats.calls_completed);
        slot.last_result = Some(*outcome.rpc());
        if outcome.rpc().flags.call_failed {
            let msg = String::from_utf8_lossy(outcome.data()).into_owned();
            inner.activities.release(slot);
            return Err(RpcError::Remote(msg));
        }
        let values = stub.unmarshal_result(outcome.data());
        span.stamp(crate::trace::Stamp::UnmarshalDone);
        inner.activities.release(slot);
        // Ender: recycle the call buffer straight onto its home shard's
        // receive queue, the paper's on-the-fly buffer replacement.
        call_buf.recycle();
        crate::stats::RpcStats::bump(&shared.ctx.stats.buffers_recycled);
        span.stamp(crate::trace::Stamp::CallEnd);
        if span.finish() {
            crate::stats::RpcStats::bump(&shared.ctx.stats.trace_records);
        }
        Ok(values?)
    }

    /// Waits on a call entry, honoring the configured §4.2.7 busy-wait
    /// spin budget before parking (zero budget: plain condvar wait).
    fn wait_on(&self, entry: &crate::calltable::CallEntry, deadline: Instant) -> Wait {
        let spin = self.inner.shared.config.busy_wait_spin;
        if spin.is_zero() {
            entry.wait(deadline)
        } else {
            entry.wait_spinning(deadline, spin)
        }
    }

    /// Sends a single-packet call and waits for the result.
    fn transact_single(
        &self,
        header: &RpcHeader,
        frame: &[u8],
        entry: &crate::calltable::CallEntry,
        deadline: Option<Instant>,
        span: &mut crate::trace::Span<'_>,
    ) -> Result<Assembled> {
        let shared = &self.inner.shared;
        let cfg = &shared.config;
        shared.ctx.send_call(frame, self.inner.remote)?;
        // First-write-wins: for fragmented calls the `Sent` stamp was
        // already taken at the first fragment.
        span.stamp(crate::trace::Stamp::Sent);
        crate::stats::RpcStats::bump(&shared.ctx.stats.calls_sent);

        // Backoff jitter is seeded from the endpoint config (mixed with
        // the activity and sequence number so concurrent callers
        // decorrelate), which keeps retry timing reproducible in tests.
        let mut jitter = firefly_rng::Rng::new(
            cfg.rng_seed
                ^ (u64::from(header.activity.machine) << 32)
                ^ (u64::from(header.activity.space) << 16)
                ^ u64::from(header.activity.thread)
                ^ (u64::from(header.call_seq) << 48),
        );
        let mut timeout = cfg.retransmit_initial;
        let mut transmissions = 1u32;
        let mut acked = false;
        let mut probes = 0u32;
        loop {
            let mut wake_at = Instant::now() + timeout;
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(RpcError::DeadlineExceeded);
                }
                wake_at = wake_at.min(d);
            }
            match self.wait_on(entry, wake_at) {
                Wait::Complete(a) => {
                    span.stamp(crate::trace::Stamp::ResultReceived);
                    return Ok(a);
                }
                Wait::Acked { fragment, .. } => {
                    // Only an ack that covers *this* packet proves the
                    // server holds the complete call. Acks of earlier
                    // fragments can surface here (delayed, duplicated,
                    // or left in the slot by the fragment loop) while
                    // the final fragment itself was lost; believing
                    // them would switch to probing a call the server
                    // never started — which it answers with silence —
                    // instead of retransmitting the missing packet.
                    if fragment >= header.fragment {
                        acked = true;
                        probes = 0;
                        timeout = cfg.retransmit_max;
                    }
                }
                Wait::TimedOut => {
                    if acked {
                        // The server said it is working; probe instead of
                        // retransmitting the call.
                        probes += 1;
                        if probes > 120 {
                            return Err(RpcError::CallFailed { transmissions });
                        }
                        let probe = RpcHeader {
                            packet_type: PacketType::Probe,
                            data_len: 0,
                            ..*header
                        };
                        shared.ctx.send_built(
                            &shared.ctx.builder_from(&probe, self.inner.remote),
                            &[],
                            self.inner.remote,
                        )?;
                    } else {
                        if transmissions >= cfg.max_transmissions {
                            return Err(RpcError::CallFailed { transmissions });
                        }
                        // Retransmit with please-ack so the server answers
                        // even while the call executes.
                        let retransmit = shared
                            .ctx
                            .builder_from(header, self.inner.remote)
                            .please_ack(true);
                        shared.ctx.send_built(
                            &retransmit,
                            frame_data(frame, header),
                            self.inner.remote,
                        )?;
                        transmissions += 1;
                        crate::stats::RpcStats::bump(&shared.ctx.stats.retransmissions);
                        // Exponential backoff with up to +25% deterministic
                        // jitter so synchronized callers spread out.
                        timeout = (timeout * 2)
                            .min(cfg.retransmit_max)
                            .mul_f64(1.0 + jitter.f64() * 0.25);
                    }
                }
            }
        }
    }

    /// Sends a multi-packet call stop-and-wait, then waits for the result.
    fn transact_multi(
        &self,
        header: &RpcHeader,
        data: &[u8],
        entry: &crate::calltable::CallEntry,
        deadline: Option<Instant>,
        span: &mut crate::trace::Span<'_>,
    ) -> Result<Assembled> {
        let shared = &self.inner.shared;
        let cfg = &shared.config;
        let count = crate::fragment::fragment_count(data.len())?;
        let chunks: Vec<(u16, &[u8])> = crate::fragment::fragments(data).collect();
        if cfg.fragment_blast && chunks.len() > 1 {
            return self.transact_blast(header, &chunks, count, entry, deadline, span);
        }
        // Send every fragment but the last stop-and-wait.
        for &(index, chunk) in &chunks[..chunks.len() - 1] {
            let frag_header = RpcHeader {
                fragment: index,
                fragment_count: count,
                data_len: chunk.len() as u16,
                ..*header
            };
            let builder = shared
                .ctx
                .builder_from(&frag_header, self.inner.remote)
                .fragment(index, count)
                .please_ack(true);
            shared.ctx.send_built(&builder, chunk, self.inner.remote)?;
            // The account's "send" boundary is the first transmission of
            // the first fragment (first-write-wins on later fragments).
            span.stamp(crate::trace::Stamp::Sent);
            crate::stats::RpcStats::bump(&shared.ctx.stats.fragments_sent);
            let mut attempts = 1;
            loop {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(RpcError::DeadlineExceeded);
                    }
                }
                match self.wait_on(
                    entry,
                    Instant::now()
                        + cfg
                            .retransmit_initial
                            .max(std::time::Duration::from_millis(20)),
                ) {
                    Wait::Acked { fragment, .. } if fragment >= index => break,
                    Wait::Acked { .. } => continue,
                    Wait::Complete(a) => {
                        // Server already answered (dup of an earlier call).
                        span.stamp(crate::trace::Stamp::ResultReceived);
                        return Ok(a);
                    }
                    Wait::TimedOut => {
                        attempts += 1;
                        if attempts > cfg.max_transmissions {
                            return Err(RpcError::CallFailed {
                                transmissions: attempts,
                            });
                        }
                        shared.ctx.send_built(&builder, chunk, self.inner.remote)?;
                        crate::stats::RpcStats::bump(&shared.ctx.stats.retransmissions);
                    }
                }
            }
        }
        // The final fragment behaves like a single-packet call.
        let (index, chunk) = *chunks.last().ok_or(RpcError::Internal {
            context: "fragmented transfer produced zero fragments",
        })?;
        let final_header = RpcHeader {
            fragment: index,
            fragment_count: count,
            data_len: chunk.len() as u16,
            ..*header
        };
        let frame = shared
            .ctx
            .builder_from(&final_header, self.inner.remote)
            .fragment(index, count)
            .build(chunk)?;
        crate::stats::RpcStats::bump(&shared.ctx.stats.fragments_sent);
        self.transact_single(&final_header, frame.bytes(), entry, deadline, span)
    }

    /// Sends a multi-packet call as one back-to-back fragment blast —
    /// the batching ablation ([`Config::fragment_blast`]).
    ///
    /// The whole window goes out at once and the caller waits only for
    /// the result. Timeout recovery re-blasts the entire window (with
    /// please-ack on the final fragment so progress is observable);
    /// server-side reassembly is idempotent, so duplicates are harmless.
    /// The ack/probe state machine mirrors [`Client::transact_single`]:
    /// only an acknowledgement covering the final fragment proves the
    /// server holds the complete call and switches us to probing.
    fn transact_blast(
        &self,
        header: &RpcHeader,
        chunks: &[(u16, &[u8])],
        count: u16,
        entry: &crate::calltable::CallEntry,
        deadline: Option<Instant>,
        span: &mut crate::trace::Span<'_>,
    ) -> Result<Assembled> {
        let shared = &self.inner.shared;
        let cfg = &shared.config;
        let final_index = match chunks.last() {
            Some(&(index, _)) => index,
            None => {
                return Err(RpcError::Internal {
                    context: "fragmented transfer produced zero fragments",
                })
            }
        };
        let send_window = |please_ack_final: bool| -> Result<()> {
            for &(index, chunk) in chunks {
                let frag_header = RpcHeader {
                    fragment: index,
                    fragment_count: count,
                    data_len: chunk.len() as u16,
                    ..*header
                };
                let builder = shared
                    .ctx
                    .builder_from(&frag_header, self.inner.remote)
                    .fragment(index, count)
                    .please_ack(please_ack_final && index == final_index);
                shared.ctx.send_built(&builder, chunk, self.inner.remote)?;
                crate::stats::RpcStats::bump(&shared.ctx.stats.fragments_sent);
            }
            Ok(())
        };
        send_window(false)?;
        span.stamp(crate::trace::Stamp::Sent);
        crate::stats::RpcStats::bump(&shared.ctx.stats.calls_sent);

        let final_header = RpcHeader {
            fragment: final_index,
            fragment_count: count,
            ..*header
        };
        let mut timeout = cfg.retransmit_initial;
        let mut transmissions = 1u32;
        let mut acked = false;
        let mut probes = 0u32;
        loop {
            let mut wake_at = Instant::now() + timeout;
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(RpcError::DeadlineExceeded);
                }
                wake_at = wake_at.min(d);
            }
            match self.wait_on(entry, wake_at) {
                Wait::Complete(a) => {
                    span.stamp(crate::trace::Stamp::ResultReceived);
                    return Ok(a);
                }
                Wait::Acked { fragment, .. } => {
                    // The server acks every non-final fragment it
                    // buffers; only an ack covering the final fragment
                    // proves it holds the complete call.
                    if fragment >= final_index {
                        acked = true;
                        probes = 0;
                        timeout = cfg.retransmit_max;
                    }
                }
                Wait::TimedOut => {
                    if acked {
                        // The server is executing; probe, don't re-blast.
                        probes += 1;
                        if probes > 120 {
                            return Err(RpcError::CallFailed { transmissions });
                        }
                        let probe = RpcHeader {
                            packet_type: PacketType::Probe,
                            data_len: 0,
                            ..final_header
                        };
                        shared.ctx.send_built(
                            &shared.ctx.builder_from(&probe, self.inner.remote),
                            &[],
                            self.inner.remote,
                        )?;
                    } else {
                        if transmissions >= cfg.max_transmissions {
                            return Err(RpcError::CallFailed { transmissions });
                        }
                        send_window(true)?;
                        transmissions += 1;
                        crate::stats::RpcStats::bump(&shared.ctx.stats.retransmissions);
                        timeout = (timeout * 2).min(cfg.retransmit_max);
                    }
                }
            }
        }
    }
}

/// Extracts the data region from an encoded call frame for retransmission.
fn frame_data<'f>(frame: &'f [u8], header: &RpcHeader) -> &'f [u8] {
    &frame[DATA_OFFSET..DATA_OFFSET + header.data_len as usize]
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Explicitly acknowledge the last results so the server can free
        // its retained result packets (otherwise they wait for an implicit
        // ack that will never come).
        let slots = std::mem::take(&mut *self.activities.free.lock());
        for slot in slots {
            if let Some(res) = slot.last_result {
                let mut ack = firefly_wire::RpcHeader::ack_for(&res);
                // The retained result may be multi-packet and the slot
                // remembers whichever fragment's header completed the
                // call. The teardown ack must name the final fragment
                // with last-fragment set, or the server treats it as a
                // mid-transfer fragment ack and never frees retention.
                ack.fragment = ack.fragment_count.saturating_sub(1);
                ack.flags.last_fragment = true;
                let _ = self.shared.ctx.send_ack(&ack, self.remote);
            }
        }
    }
}
