//! `firefly-rpcd`: serve or call any Modula-2+ interface over UDP from
//! the command line.
//!
//! ```text
//! firefly-rpcd info  <idl-file> [--stubs]
//! firefly-rpcd serve <idl-file> [--addr 127.0.0.1:0] [--trace]
//! firefly-rpcd call  <idl-file> <server-addr> <procedure> [arg]...
//! ```
//!
//! `serve` exports the interface with echo handlers: every result-
//! direction value is defaulted, except that CHAR-array outputs echo the
//! first CHAR-array input when there is one. `call` parses positional
//! arguments according to the procedure's declared call-direction
//! parameter types (`VAR OUT` parameters take no argument).

use firefly_idl::ast::{Mode, TypeExpr};
use firefly_idl::{parse_interface, InterfaceDef, Value};
use firefly_metrics::table::{fnum, Align, Table};
use firefly_rpc::trace::{RoleReport, TraceReport};
use firefly_rpc::transport::UdpTransport;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  firefly-rpcd info  <idl-file> [--stubs]\n  \
         firefly-rpcd serve <idl-file> [--addr HOST:PORT] [--trace]\n  \
         firefly-rpcd call  <idl-file> <server-addr> <procedure> [arg]..."
    );
    exit(2);
}

fn load_interface(path: &str) -> InterfaceDef {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    parse_interface(&src).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

/// A neutral value of the given type (for echoed/defaulted results).
fn default_value(ty: &TypeExpr) -> Value {
    match ty {
        TypeExpr::Integer => Value::Integer(0),
        TypeExpr::Cardinal => Value::Cardinal(0),
        TypeExpr::Char => Value::Char(0),
        TypeExpr::Boolean => Value::Boolean(false),
        TypeExpr::Real => Value::Real(0.0),
        TypeExpr::Text => Value::Text(None),
        TypeExpr::FixedArray { len, elem } if **elem == TypeExpr::Char => {
            Value::Bytes(vec![0; *len])
        }
        TypeExpr::FixedArray { len, elem } => {
            Value::Array((0..*len).map(|_| default_value(elem)).collect())
        }
        TypeExpr::OpenArray { elem } if **elem == TypeExpr::Char => Value::Bytes(Vec::new()),
        TypeExpr::OpenArray { .. } => Value::Array(Vec::new()),
        TypeExpr::Record { fields } => {
            Value::Record(fields.iter().map(|(_, t)| default_value(t)).collect())
        }
    }
}

/// Parses one CLI argument according to its declared type.
fn parse_arg(ty: &TypeExpr, text: &str) -> Result<Value, String> {
    match ty {
        TypeExpr::Integer => text
            .parse()
            .map(Value::Integer)
            .map_err(|e| format!("INTEGER: {e}")),
        TypeExpr::Cardinal => text
            .parse()
            .map(Value::Cardinal)
            .map_err(|e| format!("CARDINAL: {e}")),
        TypeExpr::Char => text
            .bytes()
            .next()
            .map(Value::Char)
            .ok_or_else(|| "CHAR: empty".into()),
        TypeExpr::Boolean => match text {
            "true" | "TRUE" | "1" => Ok(Value::Boolean(true)),
            "false" | "FALSE" | "0" => Ok(Value::Boolean(false)),
            other => Err(format!("BOOLEAN: `{other}`")),
        },
        TypeExpr::Real => text
            .parse()
            .map(Value::Real)
            .map_err(|e| format!("REAL: {e}")),
        TypeExpr::Text => Ok(if text == "NIL" {
            Value::Text(None)
        } else {
            Value::text(text)
        }),
        TypeExpr::FixedArray { elem, len } if **elem == TypeExpr::Char => {
            let mut bytes = text.as_bytes().to_vec();
            bytes.resize(*len, b' ');
            Ok(Value::Bytes(bytes))
        }
        TypeExpr::OpenArray { elem } if **elem == TypeExpr::Char => {
            Ok(Value::Bytes(text.as_bytes().to_vec()))
        }
        other => Err(format!("cannot parse `{}` from the CLI", other.to_modula())),
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Bytes(b) => match std::str::from_utf8(b) {
            Ok(s) => format!("{s:?} ({} bytes)", b.len()),
            Err(_) => format!("{} raw bytes", b.len()),
        },
        Value::Text(Some(t)) => format!("{t:?}"),
        Value::Text(None) => "NIL".into(),
        other => format!("{other:?}"),
    }
}

fn cmd_info(interface: &InterfaceDef, stubs: bool) {
    println!(
        "interface {} (uid {:#018x}, version {})",
        interface.name(),
        interface.uid(),
        interface.version()
    );
    for p in interface.procedures() {
        println!("  [{}] {}", p.index(), p.to_modula());
    }
    if stubs {
        println!("\n--- generated Rust stubs ---\n");
        println!("{}", firefly_idl::codegen::rust_stubs(interface));
    }
}

fn cmd_serve(interface: InterfaceDef, addr: SocketAddr, trace: bool) {
    let transport = UdpTransport::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        exit(1);
    });
    let config = Config {
        trace,
        ..Config::default()
    };
    let endpoint = Endpoint::new(transport, config).expect("endpoint");
    let mut builder = ServiceBuilder::new(interface.clone());
    for p in interface.procedures() {
        let name = p.name().to_string();
        let params: Vec<(Mode, TypeExpr)> = p
            .params()
            .iter()
            .map(|prm| (prm.mode, prm.ty.clone()))
            .collect();
        let result_ty = p.result().cloned();
        builder = builder.on_call(p.name(), move |args, w| {
            // Echo policy: CHAR-array outputs copy the first CHAR-array
            // input; everything else gets a default.
            let echo: Option<Vec<u8>> = args.iter().find_map(|a| a.bytes().map(<[u8]>::to_vec));
            eprintln!("serving {name}({} args)", args.len());
            for (mode, ty) in &params {
                if !matches!(mode, Mode::VarOut | Mode::VarInOut) {
                    continue;
                }
                let is_char_array = matches!(
                    ty,
                    TypeExpr::OpenArray { elem } | TypeExpr::FixedArray { elem, .. }
                        if **elem == TypeExpr::Char
                );
                if is_char_array {
                    if let (Some(bytes), TypeExpr::OpenArray { .. }) = (&echo, ty) {
                        w.next_bytes(bytes.len())?.copy_from_slice(bytes);
                        continue;
                    }
                }
                w.next_value(&default_value(ty))?;
            }
            if let Some(rt) = &result_ty {
                w.next_value(&default_value(rt))?;
            }
            Ok(())
        });
    }
    let service = builder.build().expect("handlers cover every procedure");
    endpoint.export(service).expect("export");
    println!(
        "serving {} on {}{} (ctrl-c to stop)",
        interface.name(),
        endpoint.address(),
        if trace { " [tracing]" } else { "" }
    );
    if trace {
        // Stop on stdin EOF (pipe closed) or a lone "q" line, then
        // print the merged per-step histogram table for the whole
        // serve lifetime — the server's own Table VII.
        let stop = Arc::new(AtomicBool::new(false));
        spawn_stdin_watcher(Arc::clone(&stop));
        let mut total = TraceReport::empty();
        loop {
            std::thread::park_timeout(std::time::Duration::from_secs(10));
            // Drain before checking the flag so records that landed
            // just ahead of shutdown make the final table.
            let report = endpoint.trace_report();
            total.merge(&report);
            if stop.load(Ordering::Acquire) {
                break;
            }
            if report.server.records == 0 {
                continue;
            }
            // Periodic view: this drain interval only, raw means.
            println!("--- trace: {} server calls ---", report.server.records);
            for (name, h) in &report.server.steps {
                println!(
                    "  {name:<34} mean {:8.2} us  p50 {:8.2}  p99 {:8.2}",
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(99.0)
                );
            }
            if report.dropped > 0 {
                println!("  ({} records dropped by the ring)", report.dropped);
            }
        }
        print_final_report(&total);
        return;
    }
    loop {
        // Serving happens on the endpoint's own threads; this thread
        // only has to stay alive. `park` needs no wakeup schedule
        // (spurious unparks just loop) and burns nothing while waiting.
        std::thread::park();
    }
}

/// Watches stdin from a helper thread; EOF or a lone `q` sets `stop`
/// and unparks the serve loop.
fn spawn_stdin_watcher(stop: Arc<AtomicBool>) {
    let serve_thread = std::thread::current();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim() == "q" => break,
                Ok(_) => {}
            }
        }
        stop.store(true, Ordering::Release);
        serve_thread.unpark();
    });
}

fn role_rows(t: &mut Table, role: &RoleReport) {
    for (name, h) in &role.steps {
        t.row_owned(vec![
            name.to_string(),
            fnum(h.mean(), 2),
            fnum(h.percentile(50.0), 2),
            fnum(h.percentile(95.0), 2),
            fnum(h.percentile(99.0), 2),
        ]);
    }
    t.row_owned(vec![
        "TOTAL (step sum)".into(),
        fnum(role.accounted_mean_us(), 2),
        "".into(),
        "".into(),
        "".into(),
    ]);
}

/// The shutdown report: every step's latency histogram, merged over
/// the entire serve lifetime.
fn print_final_report(total: &TraceReport) {
    if total.server.records == 0 && total.caller.records == 0 {
        println!("shutting down: no traced calls");
        return;
    }
    if total.server.records > 0 {
        let mut t = Table::new(&["Step", "Mean µs", "p50", "p95", "p99"])
            .title(&format!(
                "Shutdown trace report: {} server calls",
                total.server.records
            ))
            .aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        role_rows(&mut t, &total.server);
        print!("{t}");
    }
    if total.caller.records > 0 {
        let mut t = Table::new(&["Step", "Mean µs", "p50", "p95", "p99"])
            .title(&format!(
                "Shutdown trace report: {} caller records",
                total.caller.records
            ))
            .aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        role_rows(&mut t, &total.caller);
        print!("{t}");
    }
    if total.dropped > 0 {
        println!("({} records dropped by the ring)", total.dropped);
    }
}

fn cmd_call(interface: InterfaceDef, addr: SocketAddr, proc_name: &str, raw_args: &[String]) {
    let p = interface.procedure(proc_name).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    // Assemble the full argument vector: CLI args fill call-direction
    // parameters in order; VAR OUT gets placeholders.
    let mut args = Vec::new();
    let mut cli = raw_args.iter();
    for prm in p.params() {
        match prm.mode {
            Mode::VarOut => args.push(default_value(&prm.ty)),
            _ => {
                let Some(text) = cli.next() else {
                    eprintln!(
                        "missing argument for `{}: {}`",
                        prm.name,
                        prm.ty.to_modula()
                    );
                    exit(1);
                };
                match parse_arg(&prm.ty, text) {
                    Ok(v) => args.push(v),
                    Err(e) => {
                        eprintln!("argument `{}`: {e}", prm.name);
                        exit(1);
                    }
                }
            }
        }
    }
    let caller = Endpoint::new(
        UdpTransport::localhost().expect("socket"),
        Config::default(),
    )
    .expect("endpoint");
    let client = caller.bind(&interface, addr).expect("bind");
    match client.call(proc_name, &args) {
        Ok(results) => {
            if results.is_empty() {
                println!("ok (no results)");
            }
            for (i, r) in results.iter().enumerate() {
                println!("result[{i}] = {}", render(r));
            }
        }
        Err(e) => {
            eprintln!("call failed: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => {
            let Some(path) = args.get(1) else { usage() };
            cmd_info(&load_interface(path), args.iter().any(|a| a == "--stubs"));
        }
        Some("serve") => {
            let Some(path) = args.get(1) else { usage() };
            let addr: SocketAddr = args
                .iter()
                .position(|a| a == "--addr")
                .and_then(|i| args.get(i + 1))
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .unwrap_or_else(|| "127.0.0.1:0".parse().expect("literal"));
            cmd_serve(load_interface(path), addr, args.iter().any(|a| a == "--trace"));
        }
        Some("call") => {
            if args.len() < 4 {
                usage();
            }
            let interface = load_interface(&args[1]);
            let addr: SocketAddr = args[2].parse().unwrap_or_else(|_| usage());
            cmd_call(interface, addr, &args[3], &args[4..]);
        }
        _ => usage(),
    }
}
