//! Error type for the RPC runtime.

use std::fmt;

/// Errors surfaced to RPC callers and servers.
#[derive(Debug)]
pub enum RpcError {
    /// The call timed out after exhausting retransmissions — the paper's
    /// "call failed" outcome when a server machine is down or unreachable.
    CallFailed {
        /// How many times the call packet was (re)transmitted.
        transmissions: u32,
    },
    /// The remote RPC runtime rejected the call (unknown interface, bad
    /// version, marshalling failure at the server, …).
    Remote(String),
    /// A wire-format error.
    Wire(firefly_wire::WireError),
    /// A marshalling error.
    Idl(firefly_idl::IdlError),
    /// The packet buffer pool was exhausted.
    Pool(firefly_pool::PoolError),
    /// An I/O error from the transport.
    Io(std::io::Error),
    /// The endpoint is shutting down.
    Shutdown,
    /// A binding error (e.g. exporting two services for one interface).
    Binding(String),
    /// Arguments or results exceeded what the protocol can carry.
    TooLarge(usize),
    /// The caller's deadline passed before the result arrived (the call
    /// may still execute at the server).
    DeadlineExceeded,
    /// A runtime invariant did not hold. This replaces fast-path
    /// panics: instead of taking down the demultiplexer or a worker
    /// thread, a broken invariant fails only the call that hit it.
    Internal {
        /// Which invariant was violated, for the error report.
        context: &'static str,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::CallFailed { transmissions } => {
                write!(f, "call failed after {transmissions} transmissions")
            }
            RpcError::Remote(m) => write!(f, "remote error: {m}"),
            RpcError::Wire(e) => write!(f, "wire error: {e}"),
            RpcError::Idl(e) => write!(f, "marshalling error: {e}"),
            RpcError::Pool(e) => write!(f, "buffer pool error: {e}"),
            RpcError::Io(e) => write!(f, "transport error: {e}"),
            RpcError::Shutdown => write!(f, "endpoint shut down"),
            RpcError::Binding(m) => write!(f, "binding error: {m}"),
            RpcError::TooLarge(n) => write!(f, "{n} bytes exceed the maximum transferable size"),
            RpcError::DeadlineExceeded => write!(f, "caller deadline exceeded"),
            RpcError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Wire(e) => Some(e),
            RpcError::Idl(e) => Some(e),
            RpcError::Pool(e) => Some(e),
            RpcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<firefly_wire::WireError> for RpcError {
    fn from(e: firefly_wire::WireError) -> Self {
        RpcError::Wire(e)
    }
}

impl From<firefly_idl::IdlError> for RpcError {
    fn from(e: firefly_idl::IdlError) -> Self {
        RpcError::Idl(e)
    }
}

impl From<firefly_pool::PoolError> for RpcError {
    fn from(e: firefly_pool::PoolError) -> Self {
        RpcError::Pool(e)
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_detail() {
        let e = RpcError::CallFailed { transmissions: 11 };
        assert!(e.to_string().contains("11"));
        let e = RpcError::Remote("no such interface".into());
        assert!(e.to_string().contains("no such interface"));
    }

    #[test]
    fn internal_carries_the_broken_invariant() {
        let e = RpcError::Internal {
            context: "fragmented transfer produced zero fragments",
        };
        assert!(e.to_string().contains("invariant"));
        assert!(e.to_string().contains("zero fragments"));
    }

    #[test]
    fn conversions() {
        let e: RpcError = firefly_pool::PoolError::Exhausted.into();
        assert!(matches!(e, RpcError::Pool(_)));
        let e: RpcError = firefly_wire::WireError::FrameTooLong(2000).into();
        assert!(matches!(e, RpcError::Wire(_)));
    }
}
