//! Authorization hooks.
//!
//! The paper notes Firefly RPC "contains the structural hooks for
//! authenticated and secure calls" without using them on the fast path
//! (§7). This module is that hook: a [`CallGate`] inspects every
//! incoming call before dispatch — after duplicate filtering, so
//! retransmissions of an authorized call are not re-judged — and can
//! refuse it, turning the call into a remote error at the caller.
//!
//! The gate sees the caller's activity identifier (machine, address
//! space, thread) and the target interface/procedure; real deployments
//! would key this on cryptographic identity, which the activity id
//! stands in for here.

use firefly_wire::ActivityId;

/// A server-side authorization hook, invoked once per (non-duplicate)
/// incoming call.
pub trait CallGate: Send + Sync {
    /// Returns `Err(reason)` to refuse the call; the reason travels back
    /// to the caller as a remote error.
    fn authorize(
        &self,
        caller: ActivityId,
        interface_uid: u64,
        procedure: u16,
    ) -> Result<(), String>;
}

/// A gate built from a closure.
pub struct GateFn<F>(pub F);

impl<F> CallGate for GateFn<F>
where
    F: Fn(ActivityId, u64, u16) -> Result<(), String> + Send + Sync,
{
    fn authorize(
        &self,
        caller: ActivityId,
        interface_uid: u64,
        procedure: u16,
    ) -> Result<(), String> {
        (self.0)(caller, interface_uid, procedure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_fn_forwards() {
        let gate = GateFn(|caller: ActivityId, _uid, proc_| {
            if caller.machine == 666 {
                Err("blocked machine".into())
            } else if proc_ == 9 {
                Err("blocked procedure".into())
            } else {
                Ok(())
            }
        });
        assert!(gate.authorize(ActivityId::new(1, 1, 1), 0, 0).is_ok());
        assert!(gate.authorize(ActivityId::new(666, 1, 1), 0, 0).is_err());
        assert!(gate.authorize(ActivityId::new(1, 1, 1), 0, 9).is_err());
    }
}
