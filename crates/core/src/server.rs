//! The server side: Receiver, server threads, duplicate filtering, and
//! result retention.
//!
//! One `ServerSide` per endpoint. The demux thread routes call packets
//! here; `ServerSide::handle_call_packet` performs the interrupt-level
//! work (duplicate filtering, fragment reassembly, retained-result
//! retransmission) and hands fresh calls to a waiting server thread —
//! "if the interrupt routine can find a server thread … it attaches the
//! buffer containing the call packet to the call table entry and awakens
//! the server thread directly" (§3.1.3). The server thread then plays
//! `Receiver`: it up-calls the interface stub, which up-calls the service
//! procedure, marshals the results into a result packet and sends it.

use crate::calltable::shard_for;
use crate::packet::{Assembled, Packet};
use crate::send::SendCtx;
use crate::service::Service;
use crate::shard::WorkQueues;
use crate::stats::RpcStats;
use crate::witness::{call_slot, row};
use crate::{Result, RpcError};
use firefly_idl::{engines_for_interface, StubEngine, StubStyle, Written};
use firefly_pool::PacketBuf;
use firefly_sync::{Condvar, Mutex, RwLock};
use firefly_wire::{ActivityId, PacketType, RpcHeader, DATA_OFFSET, MAX_SINGLE_PACKET_DATA};
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The retained (already transmitted) result of an activity's last call,
/// kept for retransmission until the next call from the same activity
/// implicitly acknowledges it.
///
/// The single-frame cases are inlined so the fast path stores its one
/// pooled result buffer without allocating a list around it.
enum Retained {
    /// Nothing retained (initial state, or released by an explicit ack).
    None,
    /// The result frame lives in a pool buffer (single-packet fast path).
    Pooled(PacketBuf),
    /// One heap-built frame (the call-failed path).
    Heap(Vec<u8>),
    /// Multi-packet results: one heap-built frame per fragment.
    Frames(Vec<Vec<u8>>),
}

impl Retained {
    fn is_none(&self) -> bool {
        matches!(self, Retained::None)
    }

    /// Visits every retained frame in transmission order.
    fn for_each_frame(&self, mut f: impl FnMut(&[u8])) {
        match self {
            Retained::None => {}
            Retained::Pooled(b) => f(b),
            Retained::Heap(v) => f(v),
            Retained::Frames(frames) => {
                for v in frames {
                    f(v);
                }
            }
        }
    }
}

#[derive(Default)]
struct Reassembly {
    seq: u32,
    count: u16,
    received: Vec<Option<Vec<u8>>>,
}

struct ActState {
    /// When the activity last carried traffic (for idle reclamation).
    last_used: Instant,
    /// Highest call sequence number seen from this activity.
    last_seq: u32,
    /// True while a server thread executes the current call.
    in_progress: bool,
    /// Result frame(s) of the last completed call.
    retained: Retained,
    /// Fragment-ack notification for multi-packet result transmission:
    /// `(seq, fragment)` most recently acknowledged by the caller.
    acked_frag: Option<(u32, u16)>,
    /// Partial multi-packet call.
    reassembly: Option<Reassembly>,
}

struct Activity {
    state: Mutex<ActState>,
    cond: Condvar,
}

struct ServiceEntry {
    service: Arc<dyn Service>,
    stubs: Vec<Box<dyn StubEngine>>,
    name: String,
    version: u16,
}

enum Work {
    Call {
        call: Assembled,
        src: SocketAddr,
        /// Demux-level receive stamp ([`crate::trace`] nanos); 0 when
        /// tracing was off at receipt.
        received_at: u64,
    },
}

/// A worker's pending single-packet result frames, transmitted in one
/// [`Transport::send_batch`] call — which coalesces consecutive frames
/// to the same caller into single datagrams — whenever the worker runs
/// out of immediately-available work or the batch reaches capacity.
///
/// Frames are *copied* in: retransmission retention keeps the pool
/// buffer in the activity slot independently, so deferring the send
/// never extends a buffer's lifetime.
struct ResultBatch {
    bytes: Vec<u8>,
    frames: Vec<(usize, SocketAddr)>,
}

impl ResultBatch {
    /// Flush once this many frames are pending even if more local work
    /// remains, bounding the latency batching can add under load.
    const MAX_FRAMES: usize = 16;

    fn new() -> ResultBatch {
        ResultBatch {
            bytes: Vec::with_capacity(Self::MAX_FRAMES * 96),
            frames: Vec::with_capacity(Self::MAX_FRAMES),
        }
    }

    fn add(&mut self, frame: &[u8], dst: SocketAddr) {
        self.bytes.extend_from_slice(frame);
        self.frames.push((frame.len(), dst));
    }

    fn is_full(&self) -> bool {
        self.frames.len() >= Self::MAX_FRAMES
    }

    fn flush(&mut self, transport: &dyn crate::transport::Transport) {
        if self.frames.is_empty() {
            return;
        }
        let mut batch: Vec<(&[u8], SocketAddr)> = Vec::with_capacity(self.frames.len());
        let mut off = 0;
        for &(len, dst) in &self.frames {
            batch.push((&self.bytes[off..off + len], dst));
            off += len;
        }
        // A UDP send failure here is indistinguishable from packet loss
        // on the wire; the caller's retransmission machinery recovers.
        let _ = transport.send_batch(&batch);
        self.bytes.clear();
        self.frames.clear();
    }
}

/// The server half of an endpoint.
pub(crate) struct ServerSide {
    services: RwLock<HashMap<u64, ServiceEntry>>,
    gate: RwLock<Option<Arc<dyn crate::auth::CallGate>>>,
    stub_style: StubStyle,
    activities: Mutex<HashMap<ActivityId, Arc<Activity>>>,
    /// Per-worker receive queues with ascending-index work stealing;
    /// the demux enqueues each call on `shard_for(activity)`'s queue.
    queues: WorkQueues<Work>,
    ctx: Arc<SendCtx>,
}

impl ServerSide {
    pub fn new(ctx: Arc<SendCtx>, stub_style: StubStyle, workers: usize) -> Arc<ServerSide> {
        Arc::new(ServerSide {
            services: RwLock::new(HashMap::new()),
            gate: RwLock::new(None),
            stub_style,
            activities: Mutex::new(HashMap::new()),
            queues: WorkQueues::new(workers),
            ctx,
        })
    }

    /// Spawns one server thread per work queue; they wait for calls
    /// until shutdown. Fails with the underlying I/O error if the OS
    /// refuses a thread.
    pub fn spawn_workers(self: &Arc<Self>) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
        (0..self.queues.worker_count())
            .map(|i| {
                let me = Arc::clone(self);
                std::thread::Builder::new()
                    // lint:allow(no-alloc-on-fast-path): one-time worker
                    // naming at endpoint startup, not the per-call path.
                    .name(format!("firefly-server-{i}"))
                    .spawn(move || me.worker_loop(i))
            })
            .collect()
    }

    /// Stops all workers once their queued work is drained.
    pub fn shutdown(&self) {
        self.queues.shutdown();
    }

    /// Looks up an exported service by interface UID.
    pub fn service_for(&self, uid: u64) -> Option<Arc<dyn Service>> {
        self.services
            .read()
            .get(&uid)
            .map(|e| Arc::clone(&e.service))
    }

    /// Installs (or clears) the authorization gate.
    pub fn set_gate(&self, gate: Option<Arc<dyn crate::auth::CallGate>>) {
        *self.gate.write() = gate;
    }

    /// Reclaims per-activity state idle for longer than `max_idle`.
    ///
    /// The paper's call table similarly holds state only while "other
    /// calls from this caller address space to the same remote server
    /// address space have occurred recently, within a few seconds"
    /// (§3.1); older conversations fall off the fast path and their
    /// retained buffers return to the pool. Returns the number of
    /// activities reclaimed.
    pub fn prune_idle(&self, max_idle: Duration) -> usize {
        let mut map = self.activities.lock();
        let before = map.len();
        map.retain(|_, act| {
            let st = act.state.lock();
            st.in_progress || st.last_used.elapsed() < max_idle
        });
        before - map.len()
    }

    /// Number of tracked caller activities.
    pub fn activity_count(&self) -> usize {
        self.activities.lock().len()
    }

    /// Lists exported interfaces as `(name, uid, version)`.
    pub fn exported(&self) -> Vec<(String, u64, u16)> {
        self.services
            .read()
            .iter()
            // lint:allow(no-alloc-on-fast-path): introspection for the
            // binder and tooling, never on the per-call path.
            .map(|(uid, e)| (e.name.clone(), *uid, e.version))
            .collect()
    }

    /// Registers an exported service.
    pub fn export(&self, service: Arc<dyn Service>) -> Result<()> {
        // lint:allow(no-alloc-on-fast-path): export happens once at
        // bind time (§3.1), before any call traffic.
        let interface = service.interface().clone();
        let stubs = engines_for_interface(&interface, self.stub_style);
        let mut services = self.services.write();
        if services.contains_key(&interface.uid()) {
            return Err(RpcError::Binding(format!(
                "interface `{}` is already exported",
                interface.name()
            )));
        }
        services.insert(
            interface.uid(),
            ServiceEntry {
                service,
                stubs,
                name: interface.name().to_string(),
                version: interface.version(),
            },
        );
        Ok(())
    }

    fn activity(&self, id: ActivityId) -> Arc<Activity> {
        let mut map = self.activities.lock();
        Arc::clone(map.entry(id).or_insert_with(|| {
            Arc::new(Activity {
                state: Mutex::new(ActState {
                    last_used: Instant::now(),
                    last_seq: 0,
                    in_progress: false,
                    retained: Retained::None,
                    acked_frag: None,
                    reassembly: None,
                }),
                cond: Condvar::new(),
            })
        }))
    }

    /// The duplicate-group slot of a call's flag shape, or `None` for a
    /// shape no legal sender produces (stray ack/failed bits on a Call):
    /// the witness records only rows the spec names.
    fn call_witness_slot(rpc: &RpcHeader) -> Option<usize> {
        if rpc.flags.acks_result || rpc.flags.call_failed {
            return None;
        }
        Some(call_slot(rpc.flags.please_ack, rpc.flags.last_fragment))
    }

    /// Interrupt-level handling of an incoming call packet.
    pub fn handle_call_packet(&self, pkt: Packet, src: SocketAddr) {
        // Stamp receipt first, before any protocol work, so the server
        // account starts at the demux boundary (0 with tracing off).
        let received_at = self.ctx.tracer.stamp_if_enabled();
        let stats = &self.ctx.stats;
        RpcStats::bump(&stats.calls_received);
        let rpc = pkt.rpc;
        let slot = Self::call_witness_slot(&rpc);
        let act = self.activity(rpc.activity);
        let mut st = act.state.lock();
        st.last_used = Instant::now();

        if rpc.call_seq < st.last_seq {
            // A stale call from a past round; drop and recycle.
            if let Some(s) = slot {
                self.ctx.witness.record(row::STALE_BASE + s);
            }
            self.recycle(pkt);
            return;
        }
        if rpc.call_seq == st.last_seq && st.last_seq != 0 {
            // Duplicate of the current call (a caller retransmission).
            RpcStats::bump(&stats.duplicate_calls);
            // Move the retained result out and release the guard before
            // touching the wire — a transport send can block, and
            // blocking under the activity lock stalls the demux.
            let retained = std::mem::replace(&mut st.retained, Retained::None);
            let executing = st.in_progress;
            let ack_executing = retained.is_none() && executing && rpc.flags.please_ack;
            drop(st);
            if !retained.is_none() {
                // "the last result packet … must be retained for possible
                // retransmission": answer the duplicate from it.
                if let Some(s) = slot {
                    self.ctx.witness.record(row::DUP_RETAINED_BASE + s);
                }
                retained.for_each_frame(|frame| {
                    let _ = self.ctx.transport.send(frame, src);
                });
                RpcStats::bump(&stats.retransmissions);
                self.restore_retained(&act, rpc.call_seq, retained);
            } else if ack_executing {
                // The call is executing; tell the caller to stop
                // retransmitting.
                if slot.is_some() {
                    self.ctx.witness.record(if rpc.flags.last_fragment {
                        row::DUP_EXEC_ACK_PA_LF
                    } else {
                        row::DUP_EXEC_ACK_PA
                    });
                }
                let _ = self.ctx.send_ack(&RpcHeader::ack_for(&rpc), src);
            } else if let Some(s) = slot {
                // Dropped without answer: still executing (no ack asked),
                // or the result was already delivered and released.
                if executing {
                    self.ctx.witness.record(if rpc.flags.last_fragment {
                        row::DUP_EXEC_DROP_LF
                    } else {
                        row::DUP_EXEC_DROP
                    });
                } else {
                    self.ctx.witness.record(row::DUP_RELEASED_BASE + s);
                }
            }
            self.recycle(pkt);
            return;
        }

        // A new call (or the first fragment(s) of one).
        if rpc.fragment_count > 1 {
            let reass = match &mut st.reassembly {
                Some(r) if r.seq == rpc.call_seq => r,
                // A different (or no) sequence in the slot: start fresh.
                // `Option::insert` hands back the new value without an
                // expect(), so this path cannot panic the receiver.
                slot => slot.insert(Reassembly {
                    seq: rpc.call_seq,
                    count: rpc.fragment_count,
                    // lint:allow(no-alloc-on-fast-path): multi-fragment
                    // calls take the stop-and-wait slow path; the
                    // single-packet fast path never reaches this arm.
                    received: vec![None; rpc.fragment_count as usize],
                }),
            };
            if rpc.fragment_count != reass.count || rpc.fragment >= reass.count {
                self.recycle(pkt);
                return;
            }
            RpcStats::bump(&stats.fragments_received);
            let idx = rpc.fragment as usize;
            if reass.received[idx].is_none() {
                // lint:allow(no-alloc-on-fast-path): fragment bodies
                // outlive the pooled packet buffer, so the slow path
                // copies them out; single-packet calls never do.
                reass.received[idx] = Some(pkt.data().to_vec());
            }
            let complete = reass.received.iter().all(|f| f.is_some());
            // Stop-and-wait: every non-final fragment is acked — after
            // the activity guard drops, since the ack hits the wire.
            let ack_fragment = !rpc.flags.last_fragment;
            if !complete {
                if slot.is_some() {
                    self.ctx.witness.record(if rpc.flags.last_fragment {
                        // Early-arriving final fragment: assembly goes on.
                        if rpc.flags.please_ack {
                            row::NEW_ASSEMBLE_PA
                        } else {
                            row::NEW_ASSEMBLE
                        }
                    } else if rpc.flags.please_ack {
                        row::NEW_ASSEMBLE_ACK_PA
                    } else {
                        row::NEW_ASSEMBLE_ACK
                    });
                }
                drop(st);
                if ack_fragment {
                    let _ = self.ctx.send_ack(&RpcHeader::ack_for(&rpc), src);
                }
                self.recycle(pkt);
                return;
            }
            // `complete` has just verified every slot, so the double
            // flatten drops nothing; written without expect() so a
            // worker thread can never panic on a malformed interleaving.
            let Some(parts) = st.reassembly.take() else {
                self.recycle(pkt);
                return;
            };
            let data: Vec<u8> = parts.received.into_iter().flatten().flatten().collect();
            if slot.is_some() {
                self.ctx.witness.record(if ack_fragment {
                    // A non-final fragment completed the call (the final
                    // one arrived early): ack it, then dispatch.
                    if rpc.flags.please_ack {
                        row::NEW_DISPATCH_ACK_PA
                    } else {
                        row::NEW_DISPATCH_ACK
                    }
                } else if rpc.flags.please_ack {
                    row::NEW_DISPATCH_PA
                } else {
                    row::NEW_DISPATCH
                });
            }
            self.begin_call(&mut st, rpc.call_seq);
            drop(st);
            if ack_fragment {
                let _ = self.ctx.send_ack(&RpcHeader::ack_for(&rpc), src);
            }
            self.recycle(pkt);
            self.enqueue(
                rpc.activity,
                Work::Call {
                    call: Assembled::Multi { rpc, data },
                    src,
                    received_at,
                },
            );
            return;
        }

        if slot.is_some() && rpc.flags.last_fragment {
            self.ctx.witness.record(if rpc.flags.please_ack {
                row::NEW_DISPATCH_PA
            } else {
                row::NEW_DISPATCH
            });
        }
        self.begin_call(&mut st, rpc.call_seq);
        drop(st);
        self.enqueue(
            rpc.activity,
            Work::Call {
                call: Assembled::Single(pkt),
                src,
                received_at,
            },
        );
    }

    /// Marks a new call in progress and releases the previous retained
    /// result — the arrival of a newer call is its implicit ack (§3.2).
    fn begin_call(&self, st: &mut ActState, seq: u32) {
        st.last_seq = seq;
        st.in_progress = true;
        if let Retained::Pooled(buf) = std::mem::replace(&mut st.retained, Retained::None) {
            // "the interrupt handler removes the buffer found in that
            // call table entry and adds it to the … receive queue."
            // `recycle` returns it to the shard that allocated it.
            buf.recycle();
            RpcStats::bump(&self.ctx.stats.buffers_recycled);
        }
    }

    /// Routes a call to the worker owning its activity's shard. A
    /// `true` from the push means a parked worker was woken directly —
    /// the paper's direct-handoff fast path; `false` means every worker
    /// was busy and the call waits in the queue (the slow path).
    fn enqueue(&self, activity: ActivityId, work: Work) {
        let target = shard_for(activity, self.queues.worker_count());
        if self.queues.push(target, work) {
            RpcStats::bump(&self.ctx.stats.direct_wakeups);
        } else {
            RpcStats::bump(&self.ctx.stats.slow_path_queued);
        }
    }

    /// Interrupt-level handling of a probe.
    ///
    /// Three cases: the call is still executing — answer ProbeResponse so
    /// the caller keeps waiting; the call already completed — the result
    /// packet must have been lost, so retransmit the retained result (a
    /// ProbeResponse here would livelock: the caller would keep probing
    /// and the server would keep saying "in progress" forever); the call
    /// is unknown — stay silent and let the caller's transmission budget
    /// expire.
    pub fn handle_probe(&self, rpc: &RpcHeader, src: SocketAddr) {
        // Probes on the wire carry exactly last-fragment; the witness
        // records only that spec shape.
        let spec_probe = rpc.flags.last_fragment
            && !rpc.flags.please_ack
            && !rpc.flags.acks_result
            && !rpc.flags.call_failed;
        let act = self.activity(rpc.activity);
        let mut st = act.state.lock();
        if st.last_seq != rpc.call_seq {
            if spec_probe {
                self.ctx.witness.record(row::PROBE_UNKNOWN);
            }
            return;
        }
        // As in the duplicate path: take the result out and drop the
        // guard before retransmitting, so the wire is never touched
        // under the activity lock.
        let retained = std::mem::replace(&mut st.retained, Retained::None);
        let executing = st.in_progress;
        drop(st);
        if !retained.is_none() {
            if spec_probe {
                self.ctx.witness.record(row::PROBE_RETAINED);
            }
            retained.for_each_frame(|frame| {
                let _ = self.ctx.transport.send(frame, src);
            });
            RpcStats::bump(&self.ctx.stats.retransmissions);
            self.restore_retained(&act, rpc.call_seq, retained);
            RpcStats::bump(&self.ctx.stats.probes_answered);
            return;
        }
        if executing {
            if spec_probe {
                self.ctx.witness.record(row::PROBE_EXECUTING);
            }
            let response = RpcHeader {
                packet_type: PacketType::ProbeResponse,
                data_len: 0,
                ..*rpc
            };
            let _ = self
                .ctx
                .send_built(&self.ctx.builder_from(&response, src), &[], src);
            RpcStats::bump(&self.ctx.stats.probes_answered);
        } else if spec_probe {
            // Result delivered and released: stay silent (the caller's
            // next call starts a fresh round).
            self.ctx.witness.record(row::PROBE_RELEASED);
        }
    }

    /// Interrupt-level handling of a caller's ack of one of our result
    /// fragments.
    pub fn handle_result_ack(&self, rpc: &RpcHeader) {
        RpcStats::bump(&self.ctx.stats.acks_received);
        // Caller result-acks carry acks-result, optionally with
        // last-fragment for the final (releasing) ack; anything else is
        // off-spec and goes unrecorded.
        let spec_ack = rpc.packet_type == PacketType::Ack
            && rpc.flags.acks_result
            && !rpc.flags.please_ack
            && !rpc.flags.call_failed;
        let act = self.activity(rpc.activity);
        let mut st = act.state.lock();
        if rpc.call_seq != st.last_seq {
            if spec_ack {
                self.ctx.witness.record(if rpc.flags.last_fragment {
                    row::ACK_STALE_LF
                } else {
                    row::ACK_STALE
                });
            }
            return;
        }
        if spec_ack {
            self.ctx.witness.record(if rpc.flags.last_fragment {
                row::ACK_RELEASE
            } else {
                row::ACK_ADVANCE
            });
        }
        st.acked_frag = Some((rpc.call_seq, rpc.fragment));
        if rpc.flags.last_fragment {
            // Explicit ack of the complete result: release retention.
            if let Retained::Pooled(buf) = std::mem::replace(&mut st.retained, Retained::None) {
                buf.recycle();
                RpcStats::bump(&self.ctx.stats.buffers_recycled);
            }
        }
        drop(st);
        act.cond.notify_all();
    }

    fn recycle(&self, pkt: Packet) {
        pkt.into_buf().recycle();
        RpcStats::bump(&self.ctx.stats.buffers_recycled);
    }

    /// Puts a retained result back after a guard-free retransmission.
    /// Retransmitting takes the result *out* of the activity slot so no
    /// transport send happens under the state lock; if a newer call
    /// claimed the slot while the guard was released, the pooled buffer
    /// goes back to the receive queue instead of the slot.
    fn restore_retained(&self, act: &Activity, seq: u32, retained: Retained) {
        let mut st = act.state.lock();
        if st.last_seq == seq && st.retained.is_none() {
            st.retained = retained;
            return;
        }
        drop(st);
        if let Retained::Pooled(buf) = retained {
            buf.recycle();
            RpcStats::bump(&self.ctx.stats.buffers_recycled);
        }
    }

    fn worker_loop(self: Arc<Self>, worker: usize) {
        // The worker's private batch: a whole queue drained (own or
        // stolen) is processed from here without further locking.
        let mut local = VecDeque::new();
        // Pending result frames. Flushed when the batch fills or the
        // queues go quiet (never later than the pre-park check inside
        // `pop_with`), so no caller ever waits on a parked worker's
        // buffered result; while work keeps arriving, results
        // accumulate and go out coalesced.
        let mut results = ResultBatch::new();
        loop {
            if results.is_full() {
                results.flush(&*self.ctx.transport);
            }
            // `pop_with` flushes the pending results once the queues
            // have stayed quiet for a few rescans (and always before
            // this worker could park), so during a busy streak results
            // keep coalescing across drains and steals, while an idle
            // lull bounds their latency at a handful of yields.
            let next = self
                .queues
                .pop_with(worker, &mut local, || results.flush(&*self.ctx.transport));
            match next {
                Some(Work::Call {
                    call,
                    src,
                    received_at,
                }) => self.dispatch(call, src, received_at, &mut results),
                None => break,
            }
        }
        results.flush(&*self.ctx.transport);
    }

    /// The Receiver: execute one call and transmit its result.
    fn dispatch(&self, call: Assembled, src: SocketAddr, received_at: u64, results: &mut ResultBatch) {
        let rpc = *call.rpc();
        // The server half of the latency account: `Received` carries the
        // demux stamp, `Dispatched` is stamped here (the wakeup delta).
        let mut span = self.ctx.tracer.server_span(rpc.procedure, received_at);
        let outcome = self.execute(&call, src, &mut span, results);
        if outcome.is_ok() && span.finish() {
            RpcStats::bump(&self.ctx.stats.trace_records);
        }
        let act = self.activity(rpc.activity);
        let mut st = act.state.lock();
        if st.last_seq != rpc.call_seq {
            // A newer call superseded us while executing; discard.
            return;
        }
        st.in_progress = false;
        match outcome {
            Ok(retained) => st.retained = retained,
            Err(e) => {
                // Error result: single packet, call_failed flag, message
                // as data.
                drop(st);
                let msg = e.to_string();
                let data = &msg.as_bytes()[..msg.len().min(MAX_SINGLE_PACKET_DATA)];
                // `result_for` resets the flag word to the single-packet
                // shape; spelling the header as `..rpc` here used to leak
                // the call's please-ack bit into the error result, making
                // the caller send an ack nobody consumed.
                let header = RpcHeader::result_for(&rpc, data.len());
                let builder = self.ctx.builder_from(&header, src).call_failed(true);
                let _ = self.ctx.send_built(&builder, data, src);
                let mut st = act.state.lock();
                if st.last_seq == rpc.call_seq {
                    if let Ok(frame) = builder.build(data) {
                        st.retained = Retained::Heap(frame.into_bytes());
                    }
                }
            }
        }
    }

    /// Runs the stub + service and transmits the result packets; returns
    /// the frames to retain.
    fn execute(
        &self,
        call: &Assembled,
        src: SocketAddr,
        span: &mut crate::trace::Span<'_>,
        results: &mut ResultBatch,
    ) -> Result<Retained> {
        let rpc = *call.rpc();
        // The authorization hook runs after duplicate filtering, before
        // any service code (§7's "structural hooks").
        if let Some(gate) = self.gate.read().as_ref() {
            gate.authorize(rpc.activity, rpc.interface_uid, rpc.procedure)
                .map_err(|reason| RpcError::Remote(format!("call refused: {reason}")))?;
        }
        let services = self.services.read();
        let entry = services.get(&rpc.interface_uid).ok_or_else(|| {
            RpcError::Remote(format!("no such interface {:#x}", rpc.interface_uid))
        })?;
        if entry.version != rpc.interface_version {
            return Err(RpcError::Remote(format!(
                "interface version mismatch: have {}, caller wants {}",
                entry.version, rpc.interface_version
            )));
        }
        let stub = entry
            .stubs
            .get(rpc.procedure as usize)
            .ok_or_else(|| RpcError::Remote(format!("no procedure #{}", rpc.procedure)))?;

        // Unmarshal in place: CHAR arrays borrow the call packet.
        let args = stub.unmarshal_call(call.data())?;

        // Marshal the result straight into a fresh pool buffer from the
        // activity's shard (caller threads on other shards contend on
        // nothing); large results spill to the heap transparently.
        let shard = shard_for(rpc.activity, self.ctx.pool.shard_count());
        let mut result_buf = self
            .ctx
            .pool
            .alloc_timeout_from(shard, Duration::from_secs(1))?;
        let raw = result_buf.raw_mut();
        let mut writer = stub.result_writer(&mut raw[DATA_OFFSET..]);
        entry.service.dispatch(rpc.procedure, &args, &mut writer)?;
        let written = writer.finish()?;
        drop(args);
        drop(services);
        span.stamp(crate::trace::Stamp::StubDone);

        let result_header = RpcHeader::result_for(&rpc, written.len());
        match written {
            Written::InPlace { len } => {
                // Single packet: headers in place around the data, queue
                // the frame on the worker's result batch (coalesced into
                // shared datagrams at the next flush), retain the pool
                // buffer — no per-call list around it.
                let total = self
                    .ctx
                    .builder_from(&result_header, src)
                    .encode_into(result_buf.raw_mut(), len)?;
                result_buf.set_len(total);
                results.add(&result_buf, src);
                span.stamp(crate::trace::Stamp::ResultSent);
                Ok(Retained::Pooled(result_buf))
            }
            Written::Spilled(data) => {
                drop(result_buf);
                // Stop-and-wait blocks on caller acks; flush pending
                // results first so other callers aren't stalled behind
                // this one's fragment round trips.
                results.flush(&*self.ctx.transport);
                self.send_multi_result(&rpc, &data, src, span)
            }
        }
    }

    /// Transmits a multi-packet result stop-and-wait and returns the
    /// frames for retention.
    fn send_multi_result(
        &self,
        rpc: &RpcHeader,
        data: &[u8],
        src: SocketAddr,
        span: &mut crate::trace::Span<'_>,
    ) -> Result<Retained> {
        let count = crate::fragment::fragment_count(data.len())?;
        let act = self.activity(rpc.activity);
        let mut retained: Vec<Vec<u8>> = Vec::with_capacity(count as usize);
        for (index, chunk) in crate::fragment::fragments(data) {
            let last = index + 1 == count;
            let header = RpcHeader {
                packet_type: PacketType::Result,
                fragment: index,
                fragment_count: count,
                ..*rpc
            };
            let builder = self
                .ctx
                .builder_from(&header, src)
                .fragment(index, count)
                .please_ack(!last);
            let frame = builder.build(chunk)?;
            self.ctx.transport.send(frame.bytes(), src)?;
            RpcStats::bump(&self.ctx.stats.fragments_sent);
            if !last {
                // Stop and wait for the caller's ack, retransmitting a
                // few times before giving up on the whole call.
                let mut attempts = 0;
                loop {
                    let deadline = Instant::now() + Duration::from_millis(200);
                    let mut st = act.state.lock();
                    let acked = loop {
                        if st.last_seq != rpc.call_seq {
                            return Err(RpcError::Remote("superseded".into()));
                        }
                        if let Some((s, f)) = st.acked_frag {
                            if s == rpc.call_seq && f >= index {
                                break true;
                            }
                        }
                        if act.cond.wait_until(&mut st, deadline).timed_out() {
                            break false;
                        }
                    };
                    drop(st);
                    if acked {
                        break;
                    }
                    attempts += 1;
                    if attempts > 10 {
                        return Err(RpcError::Remote(
                            "caller stopped acking result fragments".into(),
                        ));
                    }
                    self.ctx.transport.send(frame.bytes(), src)?;
                    RpcStats::bump(&self.ctx.stats.retransmissions);
                }
            }
            retained.push(frame.into_bytes());
        }
        // The account's boundary is the hand-off of the last fragment.
        span.stamp(crate::trace::Stamp::ResultSent);
        Ok(Retained::Frames(retained))
    }
}
