//! The caller-side call table: direct wakeup from the demultiplexer.
//!
//! "Such server threads are registered in the call table of the server
//! machine. … the interrupt routine … attaches the buffer containing the
//! call packet to the call table entry and awakens the server thread
//! directly." (§3.1.3.) On the caller side the same table lets the
//! interrupt routine find the thread waiting for a result: "the Ethernet
//! interrupt routine validates the arriving result packet, does the UDP
//! checksum, and tries to find the caller thread waiting in the call
//! table. If successful, the interrupt routine directly awakens the caller
//! thread."
//!
//! This module is that table for the caller role: the demux thread calls
//! [`CallTable::deliver`], which attaches the packet to the entry and
//! signals the entry's condition variable — **one wakeup per packet**, no
//! intermediate datalink thread.

use crate::packet::{Assembled, Packet};
use crate::witness::{row, ProtocolWitness};
use firefly_wire::{ActivityId, PacketFlags, PacketType, RpcHeader};
use firefly_sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// What the demultiplexer should do after a delivery attempt.
#[derive(Debug)]
pub enum Deliver {
    /// The packet was attached to a waiting call (or buffered as a
    /// fragment) and the thread was awakened if complete.
    Accepted,
    /// The packet was accepted and the sender expects an explicit
    /// acknowledgement (non-final result fragment, or please-ack).
    AcceptedNeedsAck(RpcHeader),
    /// Nobody is waiting for this packet; the buffer should be recycled.
    Orphan(Packet),
}

/// Result of waiting on a call entry.
#[derive(Debug)]
pub enum Wait {
    /// The complete result arrived.
    Complete(Assembled),
    /// The server acknowledged a packet of ours; `fragment` says which
    /// fragment was acknowledged and `last` whether it was the final one
    /// (an ack of the final fragment, or of a retransmitted single-packet
    /// call, means the call is in progress — keep waiting, do not
    /// retransmit).
    Acked {
        /// Fragment index acknowledged.
        fragment: u16,
        /// True when the acknowledged fragment was the last.
        last: bool,
    },
    /// The wait timed out; the caller should retransmit or give up.
    TimedOut,
}

#[derive(Debug, Default)]
struct Reassembly {
    count: u16,
    received: Vec<Option<Vec<u8>>>,
}

#[derive(Debug)]
struct EntryState {
    /// The call sequence number this entry expects.
    seq: u32,
    /// Set when the complete result has arrived.
    outcome: Option<Assembled>,
    /// The server acknowledged our call since the last wait:
    /// `(fragment, last)`.
    acked: Option<(u16, bool)>,
    /// Partial multi-packet result.
    reassembly: Option<Reassembly>,
}

/// One outstanding call, waited on by exactly one caller thread.
#[derive(Debug)]
pub struct CallEntry {
    state: Mutex<EntryState>,
    cond: Condvar,
}

impl CallEntry {
    /// Labels this entry's state lock for `firefly-check` with its lint
    /// lock-order class ("calltable"). No-op outside a checked schedule.
    pub fn check_labels(&self) {
        self.state.check_label("calltable");
    }

    /// Non-blocking check: consumes an already-delivered outcome or
    /// pending ack if one is attached; never parks. The polling half of
    /// the §4.2.7 busy-wait ablation.
    pub fn poll(&self) -> Option<Wait> {
        let mut st = self.state.lock();
        if let Some(outcome) = st.outcome.take() {
            return Some(Wait::Complete(outcome));
        }
        if let Some((fragment, last)) = st.acked.take() {
            return Some(Wait::Acked { fragment, last });
        }
        None
    }

    /// Spin-then-park wait — the §4.2.7 busy-wait ablation, measured
    /// live. Polls the entry in a spin loop for up to `spin`, then falls
    /// back to the ordinary condvar [`CallEntry::wait`]. Spinning trades
    /// caller CPU for the direct-wakeup scheduling latency the paper
    /// estimates at 440 µs; the park fallback keeps the semantics (and
    /// the timeout/retransmission machinery above it) identical.
    pub fn wait_spinning(&self, deadline: Instant, spin: std::time::Duration) -> Wait {
        let spin_until = Instant::now() + spin;
        loop {
            if let Some(w) = self.poll() {
                return w;
            }
            let now = Instant::now();
            if now >= spin_until || now >= deadline {
                break;
            }
            std::hint::spin_loop();
        }
        self.wait(deadline)
    }

    /// Blocks until the result arrives, the server acks, or the deadline
    /// passes.
    pub fn wait(&self, deadline: Instant) -> Wait {
        let mut st = self.state.lock();
        loop {
            if let Some(outcome) = st.outcome.take() {
                return Wait::Complete(outcome);
            }
            if let Some((fragment, last)) = st.acked.take() {
                return Wait::Acked { fragment, last };
            }
            if self.cond.wait_until(&mut st, deadline).timed_out() {
                // Re-check before reporting timeout: the wakeup may have
                // raced the deadline.
                if let Some(outcome) = st.outcome.take() {
                    return Wait::Complete(outcome);
                }
                if let Some((fragment, last)) = st.acked.take() {
                    return Wait::Acked { fragment, last };
                }
                return Wait::TimedOut;
            }
        }
    }
}

/// The caller-side call table, shared by caller threads and the demux
/// thread.
#[derive(Debug, Default)]
pub struct CallTable {
    entries: Mutex<HashMap<ActivityId, Arc<CallEntry>>>,
    /// Caller-side protocol-transition witness: which protocol.toml rows
    /// this table's [`CallTable::deliver`] has taken. Relaxed counters.
    witness: ProtocolWitness,
}

/// The spec row an orphaned caller-bound packet matches, if its exact
/// `(type, flags)` shape is one the protocol table names. Shapes the
/// legal senders never produce (e.g. a malformed fragment index) record
/// nothing: the witness only reports rows the spec knows.
fn orphan_row(pkt_type: PacketType, f: PacketFlags) -> Option<usize> {
    match (pkt_type, f.please_ack, f.last_fragment, f.acks_result, f.call_failed) {
        (PacketType::Result, false, true, false, false) => Some(row::CALLER_ORPHAN_RESULT_LF),
        (PacketType::Result, true, false, false, false) => Some(row::CALLER_ORPHAN_RESULT_PA),
        (PacketType::Result, false, true, false, true) => Some(row::CALLER_ORPHAN_RESULT_CF),
        (PacketType::Ack, false, true, false, false) => Some(row::CALLER_ORPHAN_ACK_LF),
        (PacketType::Ack, false, false, false, false) => Some(row::CALLER_ORPHAN_ACK),
        (PacketType::ProbeResponse, false, true, false, false) => Some(row::CALLER_ORPHAN_PR),
        _ => None,
    }
}

impl CallTable {
    /// Creates an empty table.
    pub fn new() -> CallTable {
        CallTable::default()
    }

    /// The protocol-transition witness for this table.
    pub fn witness(&self) -> &ProtocolWitness {
        &self.witness
    }

    /// Labels the table lock for `firefly-check` with its lint
    /// lock-order class ("calltable"). No-op outside a checked schedule.
    pub fn check_labels(&self) {
        self.entries.check_label("calltable");
    }

    /// Registers an outstanding call; at most one per activity.
    ///
    /// The paper registers the call *after* transmitting the packet,
    /// overlapping registration with transmission ("For the RPC fast path
    /// the calling thread gets the call registered before the result
    /// packet arrives"); we register before sending, which is equivalent
    /// but immune to an instant result racing the registration.
    pub fn register(&self, activity: ActivityId, seq: u32) -> Arc<CallEntry> {
        let entry = Arc::new(CallEntry {
            state: Mutex::new(EntryState {
                seq,
                outcome: None,
                acked: None,
                reassembly: None,
            }),
            cond: Condvar::new(),
        });
        self.entries.lock().insert(activity, Arc::clone(&entry));
        entry
    }

    /// Removes the entry for an activity (after completion or failure).
    pub fn unregister(&self, activity: ActivityId) {
        self.entries.lock().remove(&activity);
    }

    /// Number of outstanding calls.
    pub fn outstanding(&self) -> usize {
        self.entries.lock().len()
    }

    /// Routes a caller-bound packet (Result, server→caller Ack, or
    /// ProbeResponse) to its waiting thread.
    pub fn deliver(&self, pkt: Packet) -> Deliver {
        let entry = {
            let entries = self.entries.lock();
            match entries.get(&pkt.rpc.activity) {
                Some(e) => Arc::clone(e),
                None => {
                    if let Some(r) = orphan_row(pkt.rpc.packet_type, pkt.rpc.flags) {
                        self.witness.record(r);
                    }
                    return Deliver::Orphan(pkt);
                }
            }
        };
        let mut st = entry.state.lock();
        if pkt.rpc.call_seq != st.seq || st.outcome.is_some() {
            // A late duplicate from an earlier transmission round.
            drop(st);
            if let Some(r) = orphan_row(pkt.rpc.packet_type, pkt.rpc.flags) {
                self.witness.record(r);
            }
            return Deliver::Orphan(pkt);
        }
        match pkt.rpc.packet_type {
            PacketType::Ack | PacketType::ProbeResponse => {
                let last =
                    pkt.rpc.flags.last_fragment || pkt.rpc.fragment + 1 >= pkt.rpc.fragment_count;
                st.acked = Some((pkt.rpc.fragment, last));
                drop(st);
                entry.cond.notify_one();
                if pkt.rpc.packet_type == PacketType::ProbeResponse {
                    self.witness.record(row::CALLER_PROBE_RESPONSE);
                } else if pkt.rpc.flags.last_fragment {
                    self.witness.record(row::CALLER_ACK_QUENCH);
                } else {
                    self.witness.record(row::CALLER_ACK_ADVANCE);
                }
                Deliver::Accepted
            }
            PacketType::Result => {
                if pkt.rpc.fragment_count <= 1 {
                    let flags = pkt.rpc.flags;
                    st.outcome = Some(Assembled::Single(pkt));
                    drop(st);
                    entry.cond.notify_one();
                    if flags.last_fragment && !flags.please_ack {
                        self.witness.record(if flags.call_failed {
                            row::CALLER_FAIL
                        } else {
                            row::CALLER_COMPLETE
                        });
                    }
                    return Deliver::Accepted;
                }
                // Multi-packet result: buffer the fragment.
                let rpc = pkt.rpc;
                let frag = rpc.fragment as usize;
                let count = rpc.fragment_count;
                let reass = st.reassembly.get_or_insert_with(|| Reassembly {
                    count,
                    // lint:allow(no-alloc-on-fast-path): multi-fragment
                    // reassembly is the stop-and-wait slow path; the
                    // single-packet fast path never reaches this arm.
                    received: vec![None; count as usize],
                });
                if reass.count != count || frag >= reass.received.len() {
                    drop(st);
                    return Deliver::Orphan(pkt);
                }
                if reass.received[frag].is_none() {
                    // lint:allow(no-alloc-on-fast-path): fragment bodies
                    // outlive the pooled packet buffer, so the slow path
                    // copies them out; single-packet results never do.
                    reass.received[frag] = Some(pkt.data().to_vec());
                }
                let complete = reass.received.iter().all(|f| f.is_some());
                let ack = RpcHeader::ack_for(&rpc);
                if complete {
                    // `complete` has just verified every slot, so the
                    // double flatten drops nothing; written without
                    // expect() so the demultiplexer thread can never
                    // panic here (a dead demux strands every caller).
                    let Some(parts) = st.reassembly.take() else {
                        drop(st);
                        return Deliver::Orphan(pkt);
                    };
                    let data = parts.received.into_iter().flatten().flatten().collect();
                    st.outcome = Some(Assembled::Multi { rpc, data });
                    drop(st);
                    entry.cond.notify_one();
                    // The final fragment needs no explicit ack unless asked:
                    // the next call from this activity implicitly acks it.
                    if rpc.flags.please_ack {
                        self.witness.record(if rpc.flags.last_fragment {
                            row::CALLER_COMPLETE_ACK_PA_LF
                        } else {
                            row::CALLER_COMPLETE_ACK_PA
                        });
                        return Deliver::AcceptedNeedsAck(ack);
                    }
                    if rpc.flags.last_fragment {
                        self.witness.record(if rpc.flags.call_failed {
                            row::CALLER_FAIL
                        } else {
                            row::CALLER_COMPLETE
                        });
                    }
                    return Deliver::Accepted;
                }
                drop(st);
                // Non-final fragments are always acknowledged explicitly
                // (Birrell–Nelson stop-and-wait for multi-packet bodies),
                // as is any fragment that asks. A reordered *final*
                // fragment arriving before the rest must NOT be acked
                // unless it asks: an ack carrying last-fragment tells the
                // server the whole result got through, and it would
                // release the retained result while earlier fragments are
                // still in flight — a lost fragment then strands the call
                // until the server-side retransmission path recovers it.
                if rpc.flags.please_ack || !rpc.flags.last_fragment {
                    self.witness.record(if rpc.flags.last_fragment {
                        row::CALLER_ASSEMBLE_ACK_PA_LF
                    } else if rpc.flags.please_ack {
                        row::CALLER_ASSEMBLE_ACK_PA
                    } else {
                        row::CALLER_ASSEMBLE_ACK
                    });
                    return Deliver::AcceptedNeedsAck(ack);
                }
                self.witness.record(row::CALLER_ASSEMBLE_LF);
                Deliver::Accepted
            }
            PacketType::Call | PacketType::Probe => {
                // Caller-bound routing never sees these.
                drop(st);
                Deliver::Orphan(pkt)
            }
        }
    }
}

/// Pure shard-selection function: maps an activity id to a shard index.
///
/// Every layer that shards by activity — the call table, the buffer
/// pool, the server work queues — uses this one function, so a caller
/// thread, the demultiplexer, and a server worker handling the same
/// call always land on the same shard, across retransmissions and
/// duplicates (the id is in the packet header, so a duplicate hashes
/// identically). FNV-1a over the id's three fields spreads the
/// sequential `thread` counters that [`crate::client::ActivityPool`]
/// mints.
pub fn shard_for(activity: ActivityId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let machine = activity.machine.to_le_bytes();
    let space = activity.space.to_le_bytes();
    let thread = activity.thread.to_le_bytes();
    let bytes = [machine.as_slice(), space.as_slice(), thread.as_slice()];
    for chunk in bytes {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

/// The caller-side call table split into independent shards, each a
/// full [`CallTable`] with its own lock, selected by [`shard_for`].
///
/// One shard reproduces the seed's single global table exactly; with
/// more, concurrent callers on different activities take disjoint
/// locks on register/deliver/unregister. The demultiplexer holds at
/// most one shard's lock at a time (each delivery resolves its shard
/// before locking), so no cross-shard lock order arises here at all.
#[derive(Debug)]
pub struct ShardedCallTable {
    shards: Vec<CallTable>,
    /// Lock-free count of registered calls, kept by register/unregister.
    /// A *hint* (racy by design): callers read it to pick the contended
    /// yield-wait over parking, where being off by one for an instant
    /// only mis-picks a wait strategy, never correctness.
    in_flight: std::sync::atomic::AtomicUsize,
}

impl ShardedCallTable {
    /// Creates a table with `shards` independent shards (at least one).
    pub fn new(shards: usize) -> ShardedCallTable {
        ShardedCallTable {
            shards: (0..shards.max(1)).map(|_| CallTable::new()).collect(),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `activity`.
    pub fn shard(&self, activity: ActivityId) -> &CallTable {
        &self.shards[shard_for(activity, self.shards.len())]
    }

    /// All shards, for per-shard introspection in tests.
    pub fn shards(&self) -> &[CallTable] {
        &self.shards
    }

    /// Labels every shard's lock for `firefly-check`. No-op outside a
    /// checked schedule.
    pub fn check_labels(&self) {
        for s in &self.shards {
            s.check_labels();
        }
    }

    /// Registers an outstanding call in its activity's shard.
    pub fn register(&self, activity: ActivityId, seq: u32) -> Arc<CallEntry> {
        self.in_flight
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shard(activity).register(activity, seq)
    }

    /// Removes the entry for an activity from its shard.
    pub fn unregister(&self, activity: ActivityId) {
        self.shard(activity).unregister(activity);
        self.in_flight
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Racy count of registered calls (see the field docs); cheap enough
    /// for the per-wait caller fast path.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of outstanding calls across all shards.
    pub fn outstanding(&self) -> usize {
        self.shards.iter().map(|s| s.outstanding()).sum()
    }

    /// Routes a caller-bound packet to its activity's shard.
    pub fn deliver(&self, pkt: Packet) -> Deliver {
        self.shards[shard_for(pkt.rpc.activity, self.shards.len())].deliver(pkt)
    }

    /// Unions every shard's protocol-transition witness into `out`.
    pub fn merge_witnesses(&self, out: &mut std::collections::BTreeSet<&'static str>) {
        for s in &self.shards {
            s.witness().merge_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly_pool::BufferPool;
    use firefly_wire::{FrameBuilder, PacketFlags, PacketType};
    use std::time::Duration;

    fn activity() -> ActivityId {
        ActivityId::new(7, 1, 1)
    }

    fn result_packet(seq: u32, data: &[u8], frag: u16, count: u16) -> Packet {
        let frame = FrameBuilder::new(PacketType::Result)
            .activity(activity())
            .call_seq(seq)
            .fragment(frag, count)
            .build(data)
            .unwrap();
        let pool = BufferPool::new(1);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        Packet::from_buf(buf).unwrap()
    }

    fn ack_packet(seq: u32) -> Packet {
        let frame = FrameBuilder::new(PacketType::Ack)
            .activity(activity())
            .call_seq(seq)
            .build(&[])
            .unwrap();
        let pool = BufferPool::new(1);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        Packet::from_buf(buf).unwrap()
    }

    #[test]
    fn single_packet_result_wakes_waiter() {
        let table = CallTable::new();
        let entry = table.register(activity(), 5);
        let pkt = result_packet(5, &[1, 2, 3], 0, 1);
        assert!(matches!(table.deliver(pkt), Deliver::Accepted));
        match entry.wait(Instant::now() + Duration::from_secs(1)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[1, 2, 3]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_seq_is_orphaned() {
        let table = CallTable::new();
        let _entry = table.register(activity(), 5);
        let pkt = result_packet(4, &[], 0, 1);
        assert!(matches!(table.deliver(pkt), Deliver::Orphan(_)));
    }

    #[test]
    fn out_of_order_and_duplicate_fragments_reassemble_without_panic() {
        // Regression for the reassembly rewrite: the completion path
        // must tolerate any arrival order and duplicated fragments
        // (the old expect()-based code assumed a clean interleaving).
        let table = CallTable::new();
        let entry = table.register(activity(), 9);
        // A reordered final fragment arriving first is buffered but NOT
        // acked (it carries last-fragment without please-ack; acking it
        // would tell the server the whole result arrived).
        assert!(matches!(
            table.deliver(result_packet(9, &[30, 31], 2, 3)),
            Deliver::Accepted
        ));
        assert!(matches!(
            table.deliver(result_packet(9, &[10, 11], 0, 3)),
            Deliver::AcceptedNeedsAck(_)
        ));
        // Duplicate of an already-buffered fragment.
        assert!(matches!(
            table.deliver(result_packet(9, &[10, 11], 0, 3)),
            Deliver::AcceptedNeedsAck(_)
        ));
        assert!(matches!(
            table.deliver(result_packet(9, &[20, 21], 1, 3)),
            Deliver::Accepted
        ));
        match entry.wait(Instant::now() + Duration::from_secs(1)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[10, 11, 20, 21, 30, 31]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fragment_index_out_of_range_is_orphaned_not_a_panic() {
        let table = CallTable::new();
        let _entry = table.register(activity(), 9);
        assert!(matches!(
            table.deliver(result_packet(9, &[1], 0, 3)),
            Deliver::AcceptedNeedsAck(_)
        ));
        // Claims fragment 7 of 3 — malformed; must be orphaned.
        assert!(matches!(
            table.deliver(result_packet(9, &[2], 7, 3)),
            Deliver::Orphan(_)
        ));
        // A count mismatch mid-reassembly is equally malformed.
        assert!(matches!(
            table.deliver(result_packet(9, &[3], 1, 5)),
            Deliver::Orphan(_)
        ));
    }

    #[test]
    fn unknown_activity_is_orphaned() {
        let table = CallTable::new();
        let pkt = result_packet(1, &[], 0, 1);
        assert!(matches!(table.deliver(pkt), Deliver::Orphan(_)));
    }

    #[test]
    fn ack_reports_in_progress() {
        let table = CallTable::new();
        let entry = table.register(activity(), 9);
        assert!(matches!(table.deliver(ack_packet(9)), Deliver::Accepted));
        assert!(matches!(
            entry.wait(Instant::now() + Duration::from_secs(1)),
            Wait::Acked { last: true, .. }
        ));
        // The flag is consumed; the next wait times out.
        assert!(matches!(
            entry.wait(Instant::now() + Duration::from_millis(10)),
            Wait::TimedOut
        ));
    }

    #[test]
    fn fragments_reassemble_in_any_order() {
        let table = CallTable::new();
        let entry = table.register(activity(), 2);
        let p1 = result_packet(2, &[4, 5, 6], 1, 3);
        let p0 = result_packet(2, &[1, 2, 3], 0, 3);
        let p2 = result_packet(2, &[7, 8], 2, 3);
        assert!(matches!(table.deliver(p1), Deliver::AcceptedNeedsAck(_)));
        assert!(matches!(table.deliver(p0), Deliver::AcceptedNeedsAck(_)));
        // The final fragment completes the call.
        assert!(matches!(table.deliver(p2), Deliver::Accepted));
        match entry.wait(Instant::now() + Duration::from_secs(1)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[1, 2, 3, 4, 5, 6, 7, 8]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_fragment_is_idempotent() {
        let table = CallTable::new();
        let entry = table.register(activity(), 2);
        for _ in 0..3 {
            let p0 = result_packet(2, &[1, 2], 0, 2);
            let _ = table.deliver(p0);
        }
        let p1 = result_packet(2, &[3], 1, 2);
        assert!(matches!(table.deliver(p1), Deliver::Accepted));
        match entry.wait(Instant::now() + Duration::from_secs(1)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[1, 2, 3]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn late_duplicate_result_after_completion_is_orphaned() {
        let table = CallTable::new();
        let entry = table.register(activity(), 3);
        assert!(matches!(
            table.deliver(result_packet(3, &[1], 0, 1)),
            Deliver::Accepted
        ));
        // A duplicate of the same result (e.g. server retransmission).
        assert!(matches!(
            table.deliver(result_packet(3, &[1], 0, 1)),
            Deliver::Orphan(_)
        ));
        assert!(matches!(
            entry.wait(Instant::now() + Duration::from_secs(1)),
            Wait::Complete(_)
        ));
    }

    #[test]
    fn concurrent_wait_and_deliver() {
        let table = Arc::new(CallTable::new());
        let entry = table.register(activity(), 1);
        let t2 = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            firefly_sync::test_sleep();
            t2.deliver(result_packet(1, &[42], 0, 1));
        });
        match entry.wait(Instant::now() + Duration::from_secs(5)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[42]),
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
        table.unregister(activity());
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn please_ack_on_final_fragment_requests_ack() {
        let table = CallTable::new();
        let _entry = table.register(activity(), 4);
        // A retransmitted single-fragment result sets please_ack; we should
        // accept it (completing the call) and still send the ack — but for
        // single-packet results the runtime acks implicitly via next call,
        // so only the multi-fragment final case requests one here.
        let frame = FrameBuilder::new(PacketType::Result)
            .activity(activity())
            .call_seq(4)
            .fragment(1, 2)
            .please_ack(true)
            .build(&[9])
            .unwrap();
        let pool = BufferPool::new(2);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        let final_frag = Packet::from_buf(buf).unwrap();
        let first = result_packet(4, &[8], 0, 2);
        assert!(matches!(table.deliver(first), Deliver::AcceptedNeedsAck(_)));
        match table.deliver(final_frag) {
            Deliver::AcceptedNeedsAck(ack) => {
                assert_eq!(ack.packet_type, PacketType::Ack);
                assert!(ack.flags.acks_result);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn early_final_fragment_acked_only_when_asked() {
        // Without please-ack, a reordered final fragment buffers
        // silently: an ack would carry last-fragment and the server
        // would release its retained result prematurely.
        let table = CallTable::new();
        let _entry = table.register(activity(), 6);
        assert!(matches!(
            table.deliver(result_packet(6, &[9], 1, 2)),
            Deliver::Accepted
        ));
        // With please-ack the sender explicitly wants the fragment
        // confirmed, so the ack goes out.
        let table2 = CallTable::new();
        let _entry2 = table2.register(activity(), 6);
        let frame = FrameBuilder::new(PacketType::Result)
            .activity(activity())
            .call_seq(6)
            .fragment(1, 2)
            .please_ack(true)
            .build(&[9])
            .unwrap();
        let pool = BufferPool::new(1);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        assert!(matches!(
            table2.deliver(Packet::from_buf(buf).unwrap()),
            Deliver::AcceptedNeedsAck(_)
        ));
    }

    #[test]
    fn deliver_records_spec_transitions() {
        let table = CallTable::new();
        let _entry = table.register(activity(), 5);
        let _ = table.deliver(result_packet(5, &[1], 0, 1));
        // A duplicate of the completed result orphans.
        let _ = table.deliver(result_packet(5, &[1], 0, 1));
        let observed = table.witness().observed();
        assert!(observed.contains(&"caller-open Result last_fragment -> complete-call"));
        assert!(observed.contains(&"caller-orphan Result last_fragment -> recycle-orphan"));
        // Every observed row is a spec row by construction.
        for t in &observed {
            assert!(crate::witness::TRANSITIONS.contains(t));
        }
    }

    #[test]
    fn shard_for_is_pure_and_in_range() {
        for thread in 0..64u16 {
            let id = ActivityId::new(9, 2, thread);
            let s = shard_for(id, 4);
            assert!(s < 4);
            // A duplicate/retransmitted packet carries the same id and
            // must hash to the same shard.
            assert_eq!(s, shard_for(id, 4));
        }
        assert_eq!(shard_for(activity(), 1), 0);
        assert_eq!(shard_for(activity(), 0), 0);
    }

    #[test]
    fn shard_for_spreads_sequential_threads() {
        // ActivityPool mints sequential thread ids; the hash must not
        // collapse them onto one shard.
        let mut hit = [false; 4];
        for thread in 0..16u16 {
            hit[shard_for(ActivityId::new(1, 1, thread), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "sequential ids map to {hit:?}");
    }

    #[test]
    fn sharded_table_routes_by_activity() {
        let table = ShardedCallTable::new(4);
        let id = activity();
        let entry = table.register(id, 5);
        assert_eq!(table.shard(id).outstanding(), 1);
        assert_eq!(table.outstanding(), 1);
        assert!(matches!(
            table.deliver(result_packet(5, &[1], 0, 1)),
            Deliver::Accepted
        ));
        match entry.wait(Instant::now() + Duration::from_secs(1)) {
            Wait::Complete(a) => assert_eq!(a.data(), &[1]),
            other => panic!("unexpected {other:?}"),
        }
        table.unregister(id);
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn flags_helper_builds_ack_with_direction() {
        // Guard against regressions in the ack direction logic the demux
        // depends on for routing.
        let rpc = RpcHeader {
            packet_type: PacketType::Result,
            flags: PacketFlags::single_packet(),
            activity: activity(),
            call_seq: 1,
            fragment: 0,
            fragment_count: 1,
            interface_uid: 0,
            interface_version: 0,
            procedure: 0,
            data_len: 0,
        };
        assert!(RpcHeader::ack_for(&rpc).flags.acks_result);
    }
}
