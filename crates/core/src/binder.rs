//! The binder: RPC-based interface discovery.
//!
//! The paper's fast path begins "assuming that binding to a suitable
//! remote instance of the interface has already occurred" (§3.1.1). This
//! module makes that step concrete: every endpoint exports a built-in
//! `Binder` interface — itself an ordinary RPC service, eating the
//! system's own dog food — through which callers verify, before their
//! first real call, that the server exports the interface they parsed,
//! with a matching UID and version.
//!
//! [`Endpoint::bind_checked`](crate::Endpoint::bind_checked) performs the
//! lookup + verification + bind in one step.

use crate::server::ServerSide;
use crate::service::ServiceBuilder;
use crate::{Result, RpcError};
use firefly_idl::{parse_interface, InterfaceDef, Value};
use std::sync::{Arc, Weak};

/// The binder's own interface definition.
pub const BINDER_SOURCE: &str = "\
DEFINITION MODULE Binder;
  PROCEDURE Count(): INTEGER;
  PROCEDURE Lookup(name: Text.T): BOOLEAN;
  PROCEDURE Describe(name: Text.T; VAR OUT uidHex: ARRAY OF CHAR): INTEGER;
END Binder.
";

/// Parses [`BINDER_SOURCE`].
pub fn binder_interface() -> InterfaceDef {
    parse_interface(BINDER_SOURCE).expect("built-in Binder interface parses")
}

/// Formats an interface UID the way the binder transmits it.
pub fn uid_hex(uid: u64) -> String {
    format!("{uid:016x}")
}

/// Builds the binder service over a server side.
///
/// Holds only a weak reference: the binder lives *inside* the service
/// table it describes, and a strong reference would leak the endpoint.
pub(crate) fn binder_service(server: &Arc<ServerSide>) -> Result<Arc<dyn crate::Service>> {
    let for_count: Weak<ServerSide> = Arc::downgrade(server);
    let for_lookup = for_count.clone();
    let for_describe = for_count.clone();
    ServiceBuilder::new(binder_interface())
        .on_call("Count", move |_args, w| {
            let server = for_count.upgrade().ok_or(RpcError::Shutdown)?;
            w.next_value(&Value::Integer(server.exported().len() as i32))?;
            Ok(())
        })
        .on_call("Lookup", move |args, w| {
            let server = for_lookup.upgrade().ok_or(RpcError::Shutdown)?;
            let name = args[0].value().and_then(Value::as_text).unwrap_or("");
            let found = server.exported().iter().any(|(n, _, _)| n == name);
            w.next_value(&Value::Boolean(found))?;
            Ok(())
        })
        .on_call("Describe", move |args, w| {
            let server = for_describe.upgrade().ok_or(RpcError::Shutdown)?;
            let name = args[0].value().and_then(Value::as_text).unwrap_or("");
            let entry = server
                .exported()
                .into_iter()
                .find(|(n, _, _)| n == name)
                .ok_or_else(|| RpcError::Remote(format!("no interface named `{name}`")))?;
            let hex = uid_hex(entry.1);
            w.next_bytes(hex.len())?.copy_from_slice(hex.as_bytes());
            w.next_value(&Value::Integer(entry.2 as i32))?;
            Ok(())
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binder_interface_is_stable() {
        let a = binder_interface();
        let b = binder_interface();
        assert_eq!(a.uid(), b.uid());
        assert_eq!(a.procedures().len(), 3);
    }

    #[test]
    fn uid_hex_is_16_chars() {
        assert_eq!(uid_hex(0xdead_beef).len(), 16);
        assert_eq!(uid_hex(0xdead_beef), "00000000deadbeef");
    }
}
