//! Runtime counters proving fast-path behaviour.
//!
//! The paper's performance story rests on structural claims — one wakeup
//! per packet, demultiplexing in the interrupt routine, buffers recycled
//! on the fly, retransmissions absent from the fast path. These counters
//! make the same claims checkable on the Rust stack: integration tests
//! assert, for example, that a healthy run performs zero retransmissions
//! and never takes the slow path.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Monotonic counters for one endpoint.
        #[derive(Debug, Default)]
        pub struct RpcStats {
            $($(#[$doc])* pub(crate) $name: AtomicU64,)+
        }

        impl RpcStats {
            $(
                $(#[$doc])*
                pub fn $name(&self) -> u64 {
                    self.$name.load(Ordering::Relaxed)
                }
            )+

            /// Renders all counters for diagnostics.
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                // lint:allow(no-alloc-on-fast-path): snapshot() is a
                // reporting helper called after runs, never per packet.
                vec![$((stringify!($name), self.$name()),)+]
            }
        }
    };
}

counters! {
    /// Call packets sent (first transmissions only).
    calls_sent,
    /// Calls completed with a result delivered to the caller.
    calls_completed,
    /// Call/result retransmissions performed by callers on this endpoint.
    retransmissions,
    /// Result packets received that completed a waiting call.
    results_received,
    /// Call packets received by the server side.
    calls_received,
    /// Duplicate call packets answered from the retained result.
    duplicate_calls,
    /// Duplicate or orphaned result packets dropped.
    orphan_results,
    /// Explicit acknowledgements sent.
    acks_sent,
    /// Explicit acknowledgements received.
    acks_received,
    /// Probe packets answered.
    probes_answered,
    /// Frames dropped because validation failed (bad checksum, bad header).
    validation_drops,
    /// Frames dropped because the packet-type byte is not a known type.
    /// Split from `validation_drops` so the chaos garbage-frame mix can
    /// prove unknown types are counted and dropped, never demux errors.
    unknown_type_drops,
    /// ProbeResponse packets with no outstanding probe, dropped silently.
    stray_probe_responses,
    /// Packets handed directly to a waiting thread (the fast path).
    direct_wakeups,
    /// Call packets queued because no server thread was waiting (slow path).
    slow_path_queued,
    /// Receive buffers recycled straight back to the receive queue.
    buffers_recycled,
    /// Multi-packet fragments sent.
    fragments_sent,
    /// Multi-packet fragments received.
    fragments_received,
    /// Completed per-call trace records pushed into the trace ring.
    /// Observability of the observability: stays 0 with tracing off.
    trace_records,
}

impl RpcStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Display for RpcStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, value)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name:>20}  {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_bump() {
        let s = RpcStats::default();
        assert_eq!(s.calls_sent(), 0);
        RpcStats::bump(&s.calls_sent);
        RpcStats::bump(&s.calls_sent);
        assert_eq!(s.calls_sent(), 2);
        assert_eq!(s.retransmissions(), 0);
    }

    #[test]
    fn display_renders_every_counter() {
        let s = RpcStats::default();
        RpcStats::bump(&s.calls_sent);
        let text = s.to_string();
        assert!(text.contains("calls_sent  1"));
        assert!(text.lines().count() >= 15);
    }

    #[test]
    fn snapshot_lists_all_counters() {
        let s = RpcStats::default();
        let snap = s.snapshot();
        assert!(snap.len() >= 15);
        assert!(snap.iter().any(|(n, _)| *n == "direct_wakeups"));
    }
}
