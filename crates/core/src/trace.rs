//! Per-call step tracing: the paper's latency account, live.
//!
//! The paper's central artifact is Tables VI–VIII: one RPC broken into
//! steps whose sum matches the measured end-to-end time within a few
//! percent. This module gives the real Rust stack the same account of
//! itself. Each in-flight call carries a fixed-size [`Span`] on its own
//! thread's stack; the runtime stamps `Instant`-derived nanoseconds into
//! preallocated slots at the step boundaries of §3.1 — Starter, marshal,
//! Transporter send, wire wait, unmarshal, Ender on the caller;
//! demux hand-off, server stub, result send on the server — and completed
//! records drain into a preallocated ring buffer per endpoint.
//!
//! Fast-path discipline (enforced by `firefly-lint`, see `lint.toml`):
//!
//! * **no allocation** on the write path — the record is a stack-local
//!   `Copy` struct, the ring slots are preallocated at endpoint creation,
//!   and a push is a single array-slot overwrite;
//! * **no panics** — stamping and pushing are total functions;
//! * **no new lock-order classes above the leaves** — the ring mutex
//!   (`ring`) is the last class in the global order (`calltable → pool →
//!   stats → trace`) and is only ever taken with no other lock held;
//! * **no behaviour change** — tracing never touches protocol state;
//!   with tracing disabled the entire cost is one relaxed atomic load
//!   per call.
//!
//! Aggregation ([`Tracer::report`]) happens off the fast path: drained
//! records feed per-step [`firefly_metrics::Histogram`]s (mean + p50/p95/
//! p99), which `Endpoint::trace_report`, the `latency_account` bench
//! binary and `firefly-rpcd --trace` render as a Table VII/VIII-style
//! account. See `docs/TRACING.md` for the record format and the mapping
//! from steps to the paper's rows.

use firefly_metrics::Histogram;
use firefly_sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of stamp slots in a record — enough for the caller's seven
/// step boundaries (the server uses the first four).
pub const STAMP_SLOTS: usize = 8;

/// Default ring capacity per endpoint (records, not bytes); at ~80 bytes
/// per record this is ~80 KiB, preallocated once at endpoint creation.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Which half of the RPC a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The caller side: Starter → marshal → Transporter → unmarshal →
    /// Ender (§3.1.1).
    Caller,
    /// The server side: demux hand-off → Receiver/stub → result send
    /// (§3.1.3).
    Server,
}

/// A stamped step boundary. Caller and server boundaries map to
/// disjoint slot ranges of one record; a record only ever carries one
/// role's stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stamp {
    // Caller-side boundaries, in call order.
    /// Entry to the call path, after procedure lookup.
    CallStart,
    /// Starter done: a pool packet buffer is in hand.
    BufferAcquired,
    /// Arguments marshalled into the call packet (or the heap staging
    /// buffer for multi-packet calls).
    MarshalDone,
    /// Transporter handed the first transmission to the transport.
    Sent,
    /// The demultiplexer woke this thread with the complete result.
    ResultReceived,
    /// Result values unmarshalled.
    UnmarshalDone,
    /// Ender done: the call buffer is recycled to the receive queue.
    CallEnd,
    // Server-side boundaries, in call order.
    /// The demux thread accepted the (complete) call packet.
    Received,
    /// A server thread picked the call off the work queue.
    Dispatched,
    /// Server stub finished: arguments unmarshalled, service executed,
    /// results marshalled into the result packet.
    StubDone,
    /// The (last) result packet was handed to the transport.
    ResultSent,
}

impl Stamp {
    /// The record slot this boundary stamps.
    pub const fn slot(self) -> usize {
        match self {
            Stamp::CallStart => 0,
            Stamp::BufferAcquired => 1,
            Stamp::MarshalDone => 2,
            Stamp::Sent => 3,
            Stamp::ResultReceived => 4,
            Stamp::UnmarshalDone => 5,
            Stamp::CallEnd => 6,
            Stamp::Received => 0,
            Stamp::Dispatched => 1,
            Stamp::StubDone => 2,
            Stamp::ResultSent => 3,
        }
    }
}

/// Caller steps as `(name, from-slot, to-slot)` — the rows of the real
/// stack's Table VII. Each step is the delta between two stamps.
pub const CALLER_STEPS: [(&str, usize, usize); 6] = [
    ("Starter (acquire call buffer)", 0, 1),
    ("Caller stub: marshal arguments", 1, 2),
    ("Transporter: register + send call", 2, 3),
    ("Wire + server + wakeup", 3, 4),
    ("Caller stub: unmarshal result", 4, 5),
    ("Ender (recycle buffer)", 5, 6),
];

/// Server steps as `(name, from-slot, to-slot)`.
pub const SERVER_STEPS: [(&str, usize, usize); 3] = [
    ("Demux hand-off / server wakeup", 0, 1),
    ("Server stub + service procedure", 1, 2),
    ("Result marshal + send", 2, 3),
];

/// Number of stamps a complete record of each role carries.
pub const CALLER_STAMP_COUNT: usize = 7;
/// Number of stamps a complete server record carries.
pub const SERVER_STAMP_COUNT: usize = 4;

/// One completed call's stamps. `Copy` and fixed-size by design: the
/// in-flight record lives on the calling thread's stack and moves into
/// a preallocated ring slot on completion — never the heap.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Caller- or server-side record.
    pub role: Role,
    /// On-wire procedure index of the traced call.
    pub procedure: u16,
    /// Nanoseconds since the owning tracer's epoch; 0 means "not
    /// stamped" (real stamps are clamped to ≥ 1).
    pub stamps: [u64; STAMP_SLOTS],
}

impl TraceRecord {
    /// An unstamped record (ring slots start in this state).
    pub const fn empty() -> TraceRecord {
        TraceRecord {
            role: Role::Caller,
            procedure: 0,
            stamps: [0; STAMP_SLOTS],
        }
    }

    /// The number of stamps a complete record of this role carries.
    pub fn expected_stamps(&self) -> usize {
        match self.role {
            Role::Caller => CALLER_STAMP_COUNT,
            Role::Server => SERVER_STAMP_COUNT,
        }
    }

    /// True when every slot this role uses is stamped.
    pub fn is_complete(&self) -> bool {
        self.stamps[..self.expected_stamps()].iter().all(|&s| s != 0)
    }

    /// Signed delta in nanoseconds between two stamped slots, or `None`
    /// when either is unstamped. Stamps come from one monotonic clock,
    /// so a negative delta indicates record corruption — tests assert
    /// it never happens.
    pub fn step_delta(&self, from: usize, to: usize) -> Option<i64> {
        let (a, b) = (self.stamps[from], self.stamps[to]);
        if a == 0 || b == 0 {
            return None;
        }
        Some(b as i64 - a as i64)
    }

    /// First-to-last stamped nanoseconds: the whole traced span.
    pub fn span_nanos(&self) -> u64 {
        let used = &self.stamps[..self.expected_stamps()];
        let first = used.iter().copied().find(|&s| s != 0).unwrap_or(0);
        let last = used.iter().copied().filter(|&s| s != 0).max().unwrap_or(0);
        last.saturating_sub(first)
    }

    /// The step table for this record's role.
    pub fn steps(&self) -> &'static [(&'static str, usize, usize)] {
        match self.role {
            Role::Caller => &CALLER_STEPS,
            Role::Server => &SERVER_STEPS,
        }
    }
}

/// The preallocated completed-record ring: fixed capacity, overwrites
/// the oldest record when full (counting what it dropped).
struct Ring {
    records: Vec<TraceRecord>,
    /// Next slot to write.
    head: usize,
    /// Number of valid records (≤ capacity).
    len: usize,
    /// Records overwritten before being drained, total.
    dropped: u64,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        // Preallocated once at endpoint creation (bind time, §3.1);
        // the per-call push below only overwrites these slots.
        let mut records = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            records.push(TraceRecord::empty());
        }
        Ring {
            records,
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        let cap = self.records.len();
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        self.records[self.head] = rec;
        self.head = (self.head + 1) % cap;
        if self.len < cap {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Visits the buffered records oldest-first and empties the ring.
    fn drain(&mut self, mut f: impl FnMut(&TraceRecord)) {
        let cap = self.records.len();
        if cap == 0 || self.len == 0 {
            self.len = 0;
            return;
        }
        let start = (self.head + cap - self.len) % cap;
        for i in 0..self.len {
            f(&self.records[(start + i) % cap]);
        }
        self.len = 0;
    }
}

/// Per-endpoint trace collector: an enable flag, a monotonic epoch, and
/// the completed-record ring.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    recorded: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// Creates a tracer with a ring of `capacity` records, disabled.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            recorded: AtomicU64::new(0),
            ring: Mutex::new(Ring::with_capacity(capacity)),
        }
    }

    /// Turns tracing on or off. Spans created while disabled are inert;
    /// flipping the flag never affects protocol behaviour.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether call paths are currently being stamped.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.ring.lock().records.len()
    }

    /// Labels the ring lock for `firefly-check` with its lint
    /// lock-order class ("trace"). No-op outside a checked schedule.
    pub fn check_labels(&self) {
        self.ring.check_label("trace");
    }

    /// Completed records pushed since creation (including any later
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records overwritten before being drained, total.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Nanoseconds since this tracer's epoch, clamped to ≥ 1 so a real
    /// stamp is always distinguishable from an empty slot.
    pub fn now_nanos(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    /// `now_nanos()` when enabled, 0 otherwise — for carrying a receive
    /// timestamp across the demux → worker hand-off as a bare integer.
    pub fn stamp_if_enabled(&self) -> u64 {
        if self.enabled() {
            self.now_nanos()
        } else {
            0
        }
    }

    /// Starts a caller-side span with `CallStart` stamped; inert when
    /// tracing is disabled.
    pub fn caller_span(&self, procedure: u16) -> Span<'_> {
        if !self.enabled() {
            return Span::inert();
        }
        let mut record = TraceRecord::empty();
        record.role = Role::Caller;
        record.procedure = procedure;
        record.stamps[Stamp::CallStart.slot()] = self.now_nanos();
        Span {
            tracer: Some(self),
            record,
        }
    }

    /// Starts a server-side span from the demux-level receive stamp
    /// (`received_at`, from [`Tracer::stamp_if_enabled`]) with
    /// `Dispatched` stamped now. Inert when tracing is disabled or the
    /// packet was received while it was.
    pub fn server_span(&self, procedure: u16, received_at: u64) -> Span<'_> {
        if !self.enabled() || received_at == 0 {
            return Span::inert();
        }
        let mut record = TraceRecord::empty();
        record.role = Role::Server;
        record.procedure = procedure;
        record.stamps[Stamp::Received.slot()] = received_at;
        record.stamps[Stamp::Dispatched.slot()] = self.now_nanos();
        Span {
            tracer: Some(self),
            record,
        }
    }

    /// Pushes a completed record into the ring. Public so tests and
    /// tools can exercise the ring without driving a real call.
    pub fn push(&self, rec: TraceRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.ring.lock().push(rec);
    }

    /// Visits all buffered records oldest-first, empties the ring, and
    /// returns the number of records dropped (overwritten) so far.
    pub fn drain(&self, f: impl FnMut(&TraceRecord)) -> u64 {
        let mut ring = self.ring.lock();
        ring.drain(f);
        ring.dropped
    }

    /// Drains the ring and aggregates per-step latency histograms —
    /// the real stack's Table VII, as data.
    pub fn report(&self) -> TraceReport {
        let mut report = TraceReport::empty();
        report.dropped = self.drain(|rec| report.add(rec));
        report
    }
}

/// One in-flight call's trace handle. Stack-allocated and fixed-size;
/// when inert (tracing disabled) every operation is a no-op.
pub struct Span<'t> {
    tracer: Option<&'t Tracer>,
    record: TraceRecord,
}

impl<'t> Span<'t> {
    /// A span that records nothing.
    pub fn inert() -> Span<'t> {
        Span {
            tracer: None,
            record: TraceRecord::empty(),
        }
    }

    /// True when this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }

    /// Stamps a step boundary with the current time. First-write-wins:
    /// retransmission loops revisit boundaries, and the account wants
    /// the first transmission (the paper's fast path has exactly one).
    pub fn stamp(&mut self, stamp: Stamp) {
        if let Some(tracer) = self.tracer {
            let slot = &mut self.record.stamps[stamp.slot()];
            if *slot == 0 {
                *slot = tracer.now_nanos();
            }
        }
    }

    /// Completes the span, pushing its record into the tracer's ring.
    /// Returns true when a record was actually pushed. Dropping a span
    /// without finishing (error paths) records nothing — only calls
    /// that completed belong in the account.
    pub fn finish(mut self) -> bool {
        match self.tracer.take() {
            Some(tracer) => {
                tracer.push(self.record);
                true
            }
            None => false,
        }
    }
}

/// Aggregated per-step histograms for one role.
pub struct RoleReport {
    /// `(step name, latency histogram in µs)` in step order.
    pub steps: Vec<(&'static str, Histogram)>,
    /// First-to-last span per record, µs.
    pub total: Histogram,
    /// Records aggregated.
    pub records: u64,
}

impl RoleReport {
    fn empty(steps: &'static [(&'static str, usize, usize)]) -> RoleReport {
        let mut out = Vec::with_capacity(steps.len());
        for (name, _, _) in steps {
            out.push((*name, Histogram::new()));
        }
        RoleReport {
            steps: out,
            total: Histogram::new(),
            records: 0,
        }
    }

    fn add(&mut self, rec: &TraceRecord, steps: &'static [(&'static str, usize, usize)]) {
        self.records += 1;
        for (i, (_, from, to)) in steps.iter().enumerate() {
            if let Some(delta) = rec.step_delta(*from, *to) {
                self.steps[i].1.record(delta.max(0) as f64 / 1000.0);
            }
        }
        self.total.record(rec.span_nanos() as f64 / 1000.0);
    }

    /// Sum of the per-step means, µs — the "accounted" total.
    pub fn accounted_mean_us(&self) -> f64 {
        self.steps.iter().map(|(_, h)| h.mean()).sum()
    }
}

/// A drained, aggregated account: per-step histograms for both roles.
pub struct TraceReport {
    /// Caller-side steps (Starter … Ender).
    pub caller: RoleReport,
    /// Server-side steps (demux hand-off … result send).
    pub server: RoleReport,
    /// Records overwritten in the ring before this drain.
    pub dropped: u64,
}

impl TraceReport {
    /// An empty report.
    pub fn empty() -> TraceReport {
        TraceReport {
            caller: RoleReport::empty(&CALLER_STEPS),
            server: RoleReport::empty(&SERVER_STEPS),
            dropped: 0,
        }
    }

    /// Folds one record into the per-role histograms.
    pub fn add(&mut self, rec: &TraceRecord) {
        match rec.role {
            Role::Caller => self.caller.add(rec, &CALLER_STEPS),
            Role::Server => self.server.add(rec, &SERVER_STEPS),
        }
    }

    /// Merges another report into this one (e.g. caller + server
    /// endpoints of one process).
    pub fn merge(&mut self, other: &TraceReport) {
        for (a, b) in self.caller.steps.iter_mut().zip(&other.caller.steps) {
            a.1.merge(&b.1);
        }
        self.caller.total.merge(&other.caller.total);
        self.caller.records += other.caller.records;
        for (a, b) in self.server.steps.iter_mut().zip(&other.server.steps) {
            a.1.merge(&b.1);
        }
        self.server.total.merge(&other.server.total);
        self.server.records += other.server.records;
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_records_nothing() {
        let tracer = Tracer::new(8);
        let mut span = tracer.caller_span(1); // Disabled: inert.
        assert!(!span.is_recording());
        span.stamp(Stamp::BufferAcquired);
        assert!(!span.finish());
        assert_eq!(tracer.recorded(), 0);
        assert_eq!(tracer.report().caller.records, 0);
    }

    #[test]
    fn enabled_span_round_trips_through_the_ring() {
        let tracer = Tracer::new(8);
        tracer.set_enabled(true);
        let mut span = tracer.caller_span(3);
        assert!(span.is_recording());
        for s in [
            Stamp::BufferAcquired,
            Stamp::MarshalDone,
            Stamp::Sent,
            Stamp::ResultReceived,
            Stamp::UnmarshalDone,
            Stamp::CallEnd,
        ] {
            span.stamp(s);
        }
        assert!(span.finish());
        let mut seen = 0;
        let dropped = tracer.drain(|rec| {
            seen += 1;
            assert_eq!(rec.procedure, 3);
            assert_eq!(rec.role, Role::Caller);
            assert!(rec.is_complete());
            for (_, from, to) in CALLER_STEPS {
                assert!(rec.step_delta(from, to).unwrap() >= 0);
            }
        });
        assert_eq!(seen, 1);
        assert_eq!(dropped, 0);
        assert_eq!(tracer.recorded(), 1);
    }

    #[test]
    fn stamps_are_first_write_wins() {
        let tracer = Tracer::new(2);
        tracer.set_enabled(true);
        let mut span = tracer.caller_span(0);
        span.stamp(Stamp::Sent);
        let first = {
            // Peek through a drain after finishing a clone of the state.
            span.stamp(Stamp::Sent); // Second stamp must not move it.
            span.finish();
            let mut v = 0;
            tracer.drain(|r| v = r.stamps[Stamp::Sent.slot()]);
            v
        };
        assert!(first > 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tracer = Tracer::new(3);
        tracer.set_enabled(true);
        for i in 0..5u16 {
            let mut rec = TraceRecord::empty();
            rec.procedure = i;
            rec.stamps[0] = u64::from(i) + 1;
            tracer.push(rec);
        }
        let mut procs = Vec::new();
        let dropped = tracer.drain(|r| procs.push(r.procedure));
        assert_eq!(procs, vec![2, 3, 4]);
        assert_eq!(dropped, 2);
        // Drained: the next drain sees nothing new.
        let mut again = 0;
        tracer.drain(|_| again += 1);
        assert_eq!(again, 0);
    }

    #[test]
    fn server_span_requires_a_receive_stamp() {
        let tracer = Tracer::new(4);
        tracer.set_enabled(true);
        assert!(!tracer.server_span(0, 0).is_recording());
        let received = tracer.now_nanos();
        let mut span = tracer.server_span(7, received);
        assert!(span.is_recording());
        span.stamp(Stamp::StubDone);
        span.stamp(Stamp::ResultSent);
        span.finish();
        let mut seen = 0;
        tracer.drain(|rec| {
            seen += 1;
            assert_eq!(rec.role, Role::Server);
            assert!(rec.is_complete());
            assert_eq!(rec.stamps[Stamp::Received.slot()], received);
            assert!(rec.span_nanos() > 0);
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn report_aggregates_per_step() {
        let tracer = Tracer::new(16);
        tracer.set_enabled(true);
        for _ in 0..4 {
            let mut rec = TraceRecord::empty();
            rec.role = Role::Caller;
            // 1 µs per step: stamps at 0.. in 1000 ns increments.
            for (i, s) in rec.stamps[..CALLER_STAMP_COUNT].iter_mut().enumerate() {
                *s = 1 + (i as u64) * 1000;
            }
            tracer.push(rec);
        }
        let report = tracer.report();
        assert_eq!(report.caller.records, 4);
        assert_eq!(report.server.records, 0);
        for (_, h) in &report.caller.steps {
            assert_eq!(h.count(), 4);
            assert!((h.mean() - 1.0).abs() < 0.01, "step mean {}", h.mean());
        }
        assert!((report.caller.total.mean() - 6.0).abs() < 0.05);
        assert!((report.caller.accounted_mean_us() - 6.0).abs() < 0.05);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let tracer = Tracer::new(0);
        tracer.set_enabled(true);
        tracer.push(TraceRecord::empty());
        let mut seen = 0;
        let dropped = tracer.drain(|_| seen += 1);
        assert_eq!(seen, 0);
        assert_eq!(dropped, 1);
    }
}
