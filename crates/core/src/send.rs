//! Frame construction and transmission shared by caller and server paths.
//!
//! This is the runtime's `Sender` procedure (§3.1.3): it fills in the
//! Ethernet, IP and UDP headers — including the software UDP checksum —
//! around marshalled data and hands the frame to the bound transport.

use crate::stats::RpcStats;
use crate::trace::Tracer;
use crate::transport::Transport;
use crate::Result;
use firefly_pool::ShardedPool;
use firefly_sync::Mutex;
use firefly_wire::{FrameBuilder, MacAddr, PacketType, RpcHeader};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::Arc;

/// Derives a deterministic locally-administered MAC for a socket address.
pub(crate) fn mac_for(addr: &SocketAddr) -> MacAddr {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    };
    match addr.ip() {
        IpAddr::V4(v4) => v4.octets().iter().copied().for_each(&mut eat),
        IpAddr::V6(v6) => v6.octets().iter().copied().for_each(&mut eat),
    }
    addr.port().to_be_bytes().iter().copied().for_each(&mut eat);
    MacAddr::from_host_id(h)
}

/// The IPv4 address used in the inner IP header for an endpoint.
pub(crate) fn ipv4_of(addr: &SocketAddr) -> Ipv4Addr {
    match addr.ip() {
        IpAddr::V4(v4) => v4,
        // The inner header is IPv4-only; synthesize a stable stand-in.
        IpAddr::V6(_) => Ipv4Addr::new(10, 255, 255, 254),
    }
}

/// Call frames queued by concurrent caller threads for one combined
/// transmission (see [`SendCtx::send_call`]).
struct Combined {
    bytes: Vec<u8>,
    spans: Vec<(usize, SocketAddr)>,
    /// True while one caller thread drains the queue through the
    /// transport. Enqueuers seeing this return immediately; the active
    /// sender re-checks the queue before clearing the flag, so no
    /// enqueued frame is ever stranded.
    sending: bool,
}

/// Everything needed to build and send frames from one endpoint.
pub(crate) struct SendCtx {
    pub transport: Arc<dyn Transport>,
    pub pool: ShardedPool,
    pub stats: Arc<RpcStats>,
    /// Per-call step tracer (the live latency account); rides here so
    /// both the caller path and the server path reach it through the
    /// context they already hold.
    pub tracer: Tracer,
    pub checksum: bool,
    pub src_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    /// Server-side protocol-transition witness (protocol.toml rows the
    /// demux/server handlers took); the caller-side rows live on the
    /// call-table shards. Relaxed counters, safe under any lock.
    pub witness: crate::witness::ProtocolWitness,
    ip_ident: AtomicU16,
    combiner: Mutex<Combined>,
    /// Set when the last combiner drain shipped more than one frame —
    /// concurrent callers are in flight, so the next sender opens a
    /// brief combining window before shipping. Cleared by a drain that
    /// found only its own frame, so an uncontended caller never pays
    /// the window's scheduler hop.
    combining_hot: AtomicBool,
}

impl SendCtx {
    pub fn new(
        transport: Arc<dyn Transport>,
        pool: ShardedPool,
        stats: Arc<RpcStats>,
        checksum: bool,
        trace_capacity: usize,
    ) -> SendCtx {
        let addr = transport.local_addr();
        SendCtx {
            src_mac: mac_for(&addr),
            src_ip: ipv4_of(&addr),
            transport,
            pool,
            stats,
            tracer: Tracer::new(trace_capacity),
            witness: crate::witness::ProtocolWitness::new(),
            checksum,
            ip_ident: AtomicU16::new(1),
            combiner: Mutex::new(Combined {
                bytes: Vec::with_capacity(firefly_wire::MAX_FRAME_LEN),
                spans: Vec::with_capacity(16),
                sending: false,
            }),
            combining_hot: AtomicBool::new(false),
        }
    }

    /// Demux hint: a coalesced multi-frame datagram just arrived, so
    /// several local threads are about to be woken near-simultaneously
    /// (batched results wake their callers back-to-back). Arms the
    /// combining window for the next sender; a drain that finds only
    /// its own frame disarms it again.
    pub fn note_coalesced_delivery(&self) {
        self.combining_hot.store(true, Ordering::Relaxed);
    }

    /// Transmits a call frame through the flat-combining sender.
    ///
    /// Concurrent caller threads on one endpoint enqueue their call
    /// frames under a short critical section; exactly one becomes the
    /// sender and ships everything queued in one
    /// [`Transport::send_batch`] call, which coalesces consecutive
    /// same-destination frames into shared datagrams (the receiving
    /// demux splits them back apart). While the sender sits in the send
    /// syscall more callers can enqueue, so under true parallelism k
    /// calls share one syscall; an uncontended caller degenerates to an
    /// immediate single-frame send.
    ///
    /// Within one activity calls are strictly sequential (the caller
    /// blocks for its result), so combining never reorders an
    /// activity's calls.
    pub fn send_call(&self, frame: &[u8], dst: SocketAddr) -> Result<()> {
        let mut q = self.combiner.lock();
        q.bytes.extend_from_slice(frame);
        q.spans.push((frame.len(), dst));
        if q.sending {
            // The active sender's re-check loop picks this frame up
            // before it clears `sending`; that is as good as sent.
            return Ok(());
        }
        self.drain_combiner(q)
    }

    /// Becomes the sender: repeatedly takes the queued frames, ships
    /// them with the lock released, and re-checks for frames enqueued
    /// during the syscall, so nothing is ever stranded behind the
    /// `sending` flag.
    fn drain_combiner<'a>(
        &'a self,
        mut q: firefly_sync::MutexGuard<'a, Combined>,
    ) -> Result<()> {
        q.sending = true;
        // Combining window, opened only while callers are observably
        // concurrent (`combining_hot`): coalesced result delivery wakes
        // several callers back-to-back, so the first one to reach the
        // transport yields once before shipping — long enough for
        // just-woken peers to marshal and enqueue their next call,
        // turning k near-simultaneous calls into one datagram. A lone
        // caller keeps the flag cold and ships immediately.
        if self.combining_hot.load(Ordering::Relaxed) {
            drop(q);
            std::thread::yield_now();
            q = self.combiner.lock();
        }
        // Local staging keeps the queue usable (and its capacity
        // intact) while this thread is in the send syscall.
        let mut bytes: Vec<u8> = Vec::with_capacity(q.bytes.len());
        let mut spans: Vec<(usize, SocketAddr)> = Vec::with_capacity(q.spans.len());
        let mut outcome = Ok(());
        let mut max_batch = 0;
        loop {
            bytes.clear();
            spans.clear();
            bytes.extend_from_slice(&q.bytes);
            spans.extend_from_slice(&q.spans);
            q.bytes.clear();
            q.spans.clear();
            drop(q);
            max_batch = max_batch.max(spans.len());
            let mut frames: Vec<(&[u8], SocketAddr)> = Vec::with_capacity(spans.len());
            let mut off = 0;
            for &(len, d) in &spans {
                frames.push((&bytes[off..off + len], d));
                off += len;
            }
            if let Err(e) = self.transport.send_batch(&frames) {
                // Report the failure to the sender; enqueuers already
                // returned and rely on retransmission, exactly as for a
                // frame lost on the wire.
                outcome = Err(e.into());
            }
            q = self.combiner.lock();
            if q.spans.is_empty() {
                self.combining_hot.store(max_batch > 1, Ordering::Relaxed);
                q.sending = false;
                return outcome;
            }
        }
    }

    /// Starts a frame builder addressed to `dst` with this endpoint's
    /// identity and checksum policy filled in.
    pub fn builder(&self, packet_type: PacketType, dst: SocketAddr) -> FrameBuilder {
        FrameBuilder::new(packet_type)
            .macs(self.src_mac, mac_for(&dst))
            .ips(self.src_ip, ipv4_of(&dst))
            .with_checksum(self.checksum)
            .ip_ident(self.ip_ident.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts a builder whose RPC header fields are copied from `hdr`.
    pub fn builder_from(&self, hdr: &RpcHeader, dst: SocketAddr) -> FrameBuilder {
        self.builder(hdr.packet_type, dst)
            .activity(hdr.activity)
            .call_seq(hdr.call_seq)
            .fragment(hdr.fragment, hdr.fragment_count)
            .interface(hdr.interface_uid, hdr.interface_version)
            .procedure(hdr.procedure)
            .please_ack(hdr.flags.please_ack)
            .acks_result(hdr.flags.acks_result)
            .call_failed(hdr.flags.call_failed)
    }

    /// Builds and sends a small frame (header-only or short data).
    pub fn send_built(&self, builder: &FrameBuilder, data: &[u8], dst: SocketAddr) -> Result<()> {
        let frame = builder.build(data)?;
        self.transport.send(frame.bytes(), dst)?;
        Ok(())
    }

    /// Sends an explicit acknowledgement described by `ack`.
    pub fn send_ack(&self, ack: &RpcHeader, dst: SocketAddr) -> Result<()> {
        self.send_built(&self.builder_from(ack, dst), &[], dst)?;
        RpcStats::bump(&self.stats.acks_sent);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_are_stable_and_distinct() {
        let a: SocketAddr = "10.0.0.1:3072".parse().unwrap();
        let b: SocketAddr = "10.0.0.2:3072".parse().unwrap();
        assert_eq!(mac_for(&a), mac_for(&a));
        assert_ne!(mac_for(&a), mac_for(&b));
        assert_ne!(mac_for(&a), mac_for(&"10.0.0.1:3073".parse().unwrap()));
    }

    #[test]
    fn builder_from_copies_every_header_field() {
        use firefly_wire::{ActivityId, Frame, PacketFlags, PacketType, RpcHeader};
        let pool = ShardedPool::new(1, 1);
        let stats = Arc::new(RpcStats::default());
        let a: SocketAddr = "127.0.0.1:9".parse().unwrap();
        // A loopback-ish transport stub is unnecessary: build the frame
        // and parse it back directly.
        struct Nop(SocketAddr);
        impl Transport for Nop {
            fn send(&self, _f: &[u8], _d: SocketAddr) -> std::io::Result<()> {
                Ok(())
            }
            fn recv(&self, _b: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
                Err(std::io::Error::other("nop"))
            }
            fn local_addr(&self) -> SocketAddr {
                self.0
            }
            fn shutdown(&self) {}
        }
        let ctx = SendCtx::new(Arc::new(Nop(a)), pool, stats, true, 8);
        let hdr = RpcHeader {
            packet_type: PacketType::Result,
            flags: PacketFlags {
                please_ack: true,
                last_fragment: false,
                acks_result: true,
                call_failed: true,
            },
            activity: ActivityId::new(7, 8, 9),
            call_seq: 1234,
            fragment: 2,
            fragment_count: 5,
            interface_uid: 0xabcd,
            interface_version: 3,
            procedure: 11,
            data_len: 4,
        };
        let dst: SocketAddr = "127.0.0.1:10".parse().unwrap();
        let frame = ctx.builder_from(&hdr, dst).build(&[1, 2, 3, 4]).unwrap();
        let parsed = Frame::parse(frame.bytes()).unwrap();
        assert_eq!(parsed.rpc, hdr);
    }

    #[test]
    fn ipv4_passthrough() {
        let a: SocketAddr = "192.168.7.9:99".parse().unwrap();
        assert_eq!(ipv4_of(&a), Ipv4Addr::new(192, 168, 7, 9));
        let v6: SocketAddr = "[::1]:99".parse().unwrap();
        assert_eq!(ipv4_of(&v6), Ipv4Addr::new(10, 255, 255, 254));
    }
}
