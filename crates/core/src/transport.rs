//! Transports: how frames reach the other machine.
//!
//! "Firefly RPC allows choosing from several different transport mechanisms
//! at RPC bind time" (§3.1). The runtime is written against the
//! [`Transport`] trait; the choice is made when an [`Endpoint`] is created
//! and when a [`Client`] binds.
//!
//! * [`UdpTransport`] sends each frame — including its Ethernet, IP, UDP
//!   and RPC headers — as the payload of a real UDP datagram. The inner
//!   headers are redundant with the host stack's, but they keep every byte
//!   the paper counts observable and checksummed end to end.
//! * [`LoopbackNet`] is an in-process Ethernet segment: deterministic,
//!   instant delivery, with injectable loss, duplication, corruption and
//!   delay for protocol tests (the paper's §5 "lost packet" pathology is
//!   reproduced this way).
//!
//! [`Endpoint`]: crate::Endpoint
//! [`Client`]: crate::Client

use firefly_rng::Rng;
use firefly_sync::channel::{unbounded, Receiver, Sender};
use firefly_sync::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A datagram-style transport carrying complete RPC frames.
pub trait Transport: Send + Sync + 'static {
    /// Sends one frame to the destination endpoint.
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()>;

    /// Blocks until a frame arrives; copies it into `buf` and returns its
    /// length and source address.
    ///
    /// Returns an error of kind [`io::ErrorKind::ConnectionAborted`] after
    /// [`Transport::shutdown`].
    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;

    /// The address remote endpoints should send to.
    fn local_addr(&self) -> SocketAddr;

    /// Unblocks any thread in [`Transport::recv`] permanently.
    fn shutdown(&self);
}

fn aborted() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, "transport shut down")
}

// ---------------------------------------------------------------------
// UDP.
// ---------------------------------------------------------------------

/// A [`Transport`] over a real UDP socket.
pub struct UdpTransport {
    socket: UdpSocket,
    addr: SocketAddr,
    down: AtomicBool,
}

impl UdpTransport {
    /// Binds to the given address (use port 0 for an ephemeral port).
    pub fn bind(addr: SocketAddr) -> io::Result<Arc<UdpTransport>> {
        let socket = UdpSocket::bind(addr)?;
        let addr = socket.local_addr()?;
        Ok(Arc::new(UdpTransport {
            socket,
            addr,
            down: AtomicBool::new(false),
        }))
    }

    /// Binds to an ephemeral localhost port.
    pub fn localhost() -> io::Result<Arc<UdpTransport>> {
        Self::bind(SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)))
    }
}

impl Transport for UdpTransport {
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()> {
        self.socket.send_to(frame, dst).map(|_| ())
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        loop {
            if self.down.load(Ordering::Acquire) {
                return Err(aborted());
            }
            let (n, src) = self.socket.recv_from(buf)?;
            if self.down.load(Ordering::Acquire) {
                return Err(aborted());
            }
            // Zero-length datagrams are the shutdown poison; real frames
            // are at least 74 bytes.
            if n > 0 {
                return Ok((n, src));
            }
        }
    }

    fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        // Poison the socket so a blocked recv wakes up.
        if let Ok(poison) = UdpSocket::bind("127.0.0.1:0") {
            let _ = poison.send_to(&[], self.addr);
        }
    }
}

// ---------------------------------------------------------------------
// In-process loopback Ethernet with fault injection.
// ---------------------------------------------------------------------

/// Fault-injection plan for a [`LoopbackNet`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one byte of the frame is flipped in transit.
    pub corrupt: f64,
    /// Fixed extra delivery delay.
    pub delay: Option<Duration>,
}

enum Msg {
    Frame(Vec<u8>, SocketAddr),
    Shutdown,
}

struct NetInner {
    stations: Mutex<HashMap<SocketAddr, Sender<Msg>>>,
    faults: Mutex<FaultPlan>,
    rng: Mutex<Rng>,
    frames_sent: Mutex<u64>,
    frames_dropped: Mutex<u64>,
}

/// An in-process "private Ethernet" connecting any number of stations.
///
/// The paper's timings "were done with the two Fireflies attached to a
/// private Ethernet to eliminate variance due to other network traffic";
/// this is that private segment, with deterministic fault injection on
/// top.
#[derive(Clone)]
pub struct LoopbackNet {
    inner: Arc<NetInner>,
}

impl Default for LoopbackNet {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopbackNet {
    /// Creates an empty segment with no faults and a fixed RNG seed.
    pub fn new() -> LoopbackNet {
        Self::with_seed(0x5eed_f1ef)
    }

    /// Creates a segment whose fault decisions use the given seed.
    pub fn with_seed(seed: u64) -> LoopbackNet {
        LoopbackNet {
            inner: Arc::new(NetInner {
                stations: Mutex::new(HashMap::new()),
                faults: Mutex::new(FaultPlan::default()),
                rng: Mutex::new(Rng::new(seed)),
                frames_sent: Mutex::new(0),
                frames_dropped: Mutex::new(0),
            }),
        }
    }

    /// Installs a fault plan affecting all subsequent frames.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock() = plan;
    }

    /// Total frames offered to the segment.
    pub fn frames_sent(&self) -> u64 {
        *self.inner.frames_sent.lock()
    }

    /// Frames dropped by loss injection.
    pub fn frames_dropped(&self) -> u64 {
        *self.inner.frames_dropped.lock()
    }

    /// Attaches a new station with the given small id; its address is
    /// `10.0.0.<id>:3072`.
    ///
    /// # Panics
    ///
    /// Panics if the id is 0 or already attached.
    pub fn station(&self, id: u8) -> Arc<LoopbackStation> {
        assert!(id != 0, "station id 0 is reserved");
        let addr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, id), 3072));
        let (tx, rx) = unbounded();
        let mut stations = self.inner.stations.lock();
        assert!(
            !stations.contains_key(&addr),
            "station {id} already attached"
        );
        stations.insert(addr, tx);
        Arc::new(LoopbackStation {
            // lint:allow(no-alloc-on-fast-path): station attach is test
            // topology setup, run once before traffic starts.
            net: self.clone(),
            addr,
            rx,
            down: AtomicBool::new(false),
        })
    }

    fn deliver(&self, frame: &[u8], src: SocketAddr, dst: SocketAddr) -> io::Result<()> {
        *self.inner.frames_sent.lock() += 1;
        // lint:allow(no-alloc-on-fast-path): LoopbackNet is the simulated
        // Ethernet for tests; it copies the frame so fault injection can
        // corrupt or duplicate it without aliasing the sender's buffer.
        let plan = self.inner.faults.lock().clone();
        // lint:allow(no-alloc-on-fast-path): see above — simulation copy.
        let mut frame = frame.to_vec();
        {
            let mut rng = self.inner.rng.lock();
            if plan.loss > 0.0 && rng.f64() < plan.loss {
                *self.inner.frames_dropped.lock() += 1;
                return Ok(());
            }
            if plan.corrupt > 0.0 && rng.f64() < plan.corrupt && !frame.is_empty() {
                let i = rng.range_usize(0..frame.len());
                frame[i] ^= 0x01;
            }
        }
        let copies = {
            let mut rng = self.inner.rng.lock();
            if plan.duplicate > 0.0 && rng.f64() < plan.duplicate {
                2
            } else {
                1
            }
        };
        let tx = {
            let stations = self.inner.stations.lock();
            match stations.get(&dst) {
                // lint:allow(no-alloc-on-fast-path): cloning the channel
                // sender lets the stations lock drop before delivery.
                Some(tx) => tx.clone(),
                None => {
                    // Like a real Ethernet: frames to absent stations vanish.
                    *self.inner.frames_dropped.lock() += 1;
                    return Ok(());
                }
            }
        };
        let send_one = move |tx: Sender<Msg>, frame: Vec<u8>| {
            if let Some(d) = plan.delay {
                std::thread::spawn(move || {
                    // lint:allow(no-sleep-in-lib): fault injection — the
                    // sleep models in-flight latency on the simulated
                    // net, on a thread spawned for that purpose.
                    std::thread::sleep(d);
                    let _ = tx.send(Msg::Frame(frame, src));
                });
            } else {
                let _ = tx.send(Msg::Frame(frame, src));
            }
        };
        for _ in 0..copies - 1 {
            // lint:allow(no-alloc-on-fast-path): duplicate-delivery fault
            // injection; each copy needs its own frame buffer.
            send_one(tx.clone(), frame.clone());
        }
        send_one(tx, frame);
        Ok(())
    }
}

/// One station attached to a [`LoopbackNet`].
pub struct LoopbackStation {
    net: LoopbackNet,
    addr: SocketAddr,
    rx: Receiver<Msg>,
    down: AtomicBool,
}

impl Transport for LoopbackStation {
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()> {
        if self.down.load(Ordering::Acquire) {
            return Err(aborted());
        }
        self.net.deliver(frame, self.addr, dst)
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        match self.rx.recv() {
            Ok(Msg::Frame(frame, src)) => {
                let n = frame.len().min(buf.len());
                buf[..n].copy_from_slice(&frame[..n]);
                Ok((n, src))
            }
            Ok(Msg::Shutdown) | Err(_) => Err(aborted()),
        }
    }

    fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        let stations = self.net.inner.stations.lock();
        if let Some(tx) = stations.get(&self.addr) {
            let _ = tx.send(Msg::Shutdown);
        }
    }
}

impl Drop for LoopbackStation {
    fn drop(&mut self) {
        self.net.inner.stations.lock().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_frames() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        a.send(b"hello", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, src) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(src, a.local_addr());
    }

    #[test]
    fn loopback_loss_drops_everything_at_probability_one() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            loss: 1.0,
            ..FaultPlan::default()
        });
        for _ in 0..5 {
            a.send(b"x", b.local_addr()).unwrap();
        }
        assert_eq!(net.frames_dropped(), 5);
        assert_eq!(net.frames_sent(), 5);
    }

    #[test]
    fn loopback_duplication() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::default()
        });
        a.send(b"dup", b.local_addr()).unwrap();
        let mut buf = [0u8; 8];
        assert!(b.recv(&mut buf).is_ok());
        assert!(b.recv(&mut buf).is_ok());
    }

    #[test]
    fn loopback_corruption_flips_a_byte() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        });
        a.send(&[0u8; 16], b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, _) = b.recv(&mut buf).unwrap();
        assert_eq!(n, 16);
        assert_eq!(buf.iter().filter(|&&x| x != 0).count(), 1);
    }

    #[test]
    fn loopback_shutdown_unblocks_recv() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let a2 = Arc::clone(&a);
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            a2.recv(&mut buf)
        });
        firefly_sync::test_sleep();
        a.shutdown();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn frames_to_unknown_stations_vanish() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let ghost = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 99), 3072));
        a.send(b"?", ghost).unwrap();
        assert_eq!(net.frames_dropped(), 1);
    }

    #[test]
    fn udp_round_trip() {
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        a.send(b"over udp", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, src) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"over udp");
        assert_eq!(src, a.local_addr());
    }

    #[test]
    fn udp_shutdown_unblocks_recv() {
        let t = UdpTransport::localhost().unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let mut buf = [0u8; 64];
            t2.recv(&mut buf)
        });
        firefly_sync::test_sleep();
        t.shutdown();
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_station_rejected() {
        let net = LoopbackNet::new();
        let _a = net.station(1);
        let _b = net.station(1);
    }
}
