//! Transports: how frames reach the other machine.
//!
//! "Firefly RPC allows choosing from several different transport mechanisms
//! at RPC bind time" (§3.1). The runtime is written against the
//! [`Transport`] trait; the choice is made when an [`Endpoint`] is created
//! and when a [`Client`] binds.
//!
//! * [`UdpTransport`] sends each frame — including its Ethernet, IP, UDP
//!   and RPC headers — as the payload of a real UDP datagram. The inner
//!   headers are redundant with the host stack's, but they keep every byte
//!   the paper counts observable and checksummed end to end.
//! * [`LoopbackNet`] is an in-process Ethernet segment: deterministic,
//!   instant delivery, with injectable loss, duplication, corruption and
//!   delay for protocol tests (the paper's §5 "lost packet" pathology is
//!   reproduced this way).
//!
//! [`Endpoint`]: crate::Endpoint
//! [`Client`]: crate::Client

use firefly_rng::Rng;
use firefly_sync::channel::{unbounded, Receiver, Sender};
use firefly_sync::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A datagram-style transport carrying complete RPC frames.
pub trait Transport: Send + Sync + 'static {
    /// Sends one frame to the destination endpoint.
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()>;

    /// Blocks until a frame arrives; copies it into `buf` and returns its
    /// length and source address.
    ///
    /// Returns an error of kind [`io::ErrorKind::ConnectionAborted`] after
    /// [`Transport::shutdown`].
    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;

    /// Nonblocking receive: copies an already-arrived frame into `buf`
    /// and returns its length and source, or `Ok(None)` when nothing is
    /// waiting right now.
    ///
    /// The demultiplexer uses this to drain a burst of datagrams after
    /// each blocking [`Transport::recv`], amortizing the wakeup across
    /// the burst. The default implementation reports nothing waiting,
    /// which degrades batching transports back to one blocking receive
    /// per frame — correct for any transport that cannot poll.
    fn try_recv(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        let _ = buf;
        Ok(None)
    }

    /// Sends a batch of frames, stopping at the first error.
    ///
    /// The default implementation loops over [`Transport::send`];
    /// transports with a cheaper aggregate path can override it.
    fn send_batch(&self, frames: &[(&[u8], SocketAddr)]) -> io::Result<()> {
        for (frame, dst) in frames {
            self.send(frame, *dst)?;
        }
        Ok(())
    }

    /// The address remote endpoints should send to.
    fn local_addr(&self) -> SocketAddr;

    /// Unblocks any thread in [`Transport::recv`] permanently.
    fn shutdown(&self);
}

fn aborted() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, "transport shut down")
}

// ---------------------------------------------------------------------
// UDP.
// ---------------------------------------------------------------------

/// A [`Transport`] over a real UDP socket.
pub struct UdpTransport {
    socket: UdpSocket,
    addr: SocketAddr,
    down: AtomicBool,
    /// Cached nonblocking mode so the batched-drain path pays the
    /// `fcntl` syscall only when the mode actually changes, not per
    /// `try_recv`.
    nonblocking: AtomicBool,
}

impl UdpTransport {
    /// Binds to the given address (use port 0 for an ephemeral port).
    pub fn bind(addr: SocketAddr) -> io::Result<Arc<UdpTransport>> {
        let socket = UdpSocket::bind(addr)?;
        let addr = socket.local_addr()?;
        Ok(Arc::new(UdpTransport {
            socket,
            addr,
            down: AtomicBool::new(false),
            nonblocking: AtomicBool::new(false),
        }))
    }

    /// Binds to an ephemeral localhost port.
    pub fn localhost() -> io::Result<Arc<UdpTransport>> {
        Self::bind(SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)))
    }

    fn set_mode(&self, nonblocking: bool) -> io::Result<()> {
        if self.nonblocking.swap(nonblocking, Ordering::AcqRel) != nonblocking {
            self.socket.set_nonblocking(nonblocking)?;
        }
        Ok(())
    }
}

impl Transport for UdpTransport {
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()> {
        // `set_nonblocking` affects the whole socket, so a send racing
        // the demux's nonblocking drain can observe WouldBlock when the
        // kernel send buffer is momentarily full; retry after yielding
        // (UDP sends never otherwise block for long).
        loop {
            match self.socket.send_to(frame, dst) {
                Ok(_) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) => return Err(e),
            }
        }
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        loop {
            if self.down.load(Ordering::Acquire) {
                return Err(aborted());
            }
            self.set_mode(false)?;
            let (n, src) = match self.socket.recv_from(buf) {
                Ok(r) => r,
                // A concurrent try_recv may flip the socket nonblocking
                // between our set_mode and the recv syscall.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            };
            if self.down.load(Ordering::Acquire) {
                return Err(aborted());
            }
            // Zero-length datagrams are the shutdown poison; real frames
            // are at least 74 bytes.
            if n > 0 {
                return Ok((n, src));
            }
        }
    }

    fn try_recv(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        loop {
            if self.down.load(Ordering::Acquire) {
                return Err(aborted());
            }
            self.set_mode(true)?;
            match self.socket.recv_from(buf) {
                Ok((n, src)) if n > 0 => return Ok(Some((n, src))),
                Ok(_) => continue, // shutdown poison while still up: skip
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    /// Coalesces consecutive same-destination frames into single UDP
    /// datagrams of at most [`firefly_wire::MAX_FRAME_LEN`] bytes.
    ///
    /// Each RPC frame carries its own Ethernet/IP/UDP/RPC headers with a
    /// self-describing IP total length, so a receiver can walk the
    /// datagram with [`firefly_wire::coalesced_frame_len`] and recover
    /// every frame boundary. Packing up to 20 Null-sized (74-byte)
    /// results per datagram amortizes the `sendto`/`recvfrom` syscall
    /// pair that dominates the small-packet path — the same observation
    /// that drives the paper's §4 "fewer packets" arguments. A 1514-byte
    /// MaxResult frame fills the datagram alone and degenerates to the
    /// unbatched path.
    fn send_batch(&self, frames: &[(&[u8], SocketAddr)]) -> io::Result<()> {
        let mut packed = [0u8; firefly_wire::MAX_FRAME_LEN];
        let mut filled = 0usize;
        let mut dst: Option<SocketAddr> = None;
        for (frame, to) in frames {
            if frame.len() > packed.len() {
                // Oversized frame (cannot happen for wire-built frames,
                // which cap at MAX_FRAME_LEN): flush and send it alone.
                if let Some(d) = dst.take() {
                    if filled > 0 {
                        self.send(&packed[..filled], d)?;
                    }
                }
                filled = 0;
                self.send(frame, *to)?;
                continue;
            }
            if dst != Some(*to) || filled + frame.len() > packed.len() {
                if let Some(d) = dst {
                    if filled > 0 {
                        self.send(&packed[..filled], d)?;
                    }
                }
                filled = 0;
                dst = Some(*to);
            }
            packed[filled..filled + frame.len()].copy_from_slice(frame);
            filled += frame.len();
        }
        if let Some(d) = dst {
            if filled > 0 {
                self.send(&packed[..filled], d)?;
            }
        }
        Ok(())
    }

    fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        // Poison the socket so a blocked recv wakes up.
        if let Ok(poison) = UdpSocket::bind("127.0.0.1:0") {
            let _ = poison.send_to(&[], self.addr);
        }
    }
}

// ---------------------------------------------------------------------
// In-process loopback Ethernet with fault injection.
// ---------------------------------------------------------------------

/// Fault-injection plan for a [`LoopbackNet`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one byte of the frame is flipped in transit.
    pub corrupt: f64,
    /// Fixed extra delivery delay.
    pub delay: Option<Duration>,
}

enum Msg {
    Frame(Vec<u8>, SocketAddr),
    Shutdown,
}

struct NetInner {
    stations: Mutex<HashMap<SocketAddr, Sender<Msg>>>,
    faults: Mutex<FaultPlan>,
    rng: Mutex<Rng>,
    frames_sent: Mutex<u64>,
    frames_dropped: Mutex<u64>,
}

/// An in-process "private Ethernet" connecting any number of stations.
///
/// The paper's timings "were done with the two Fireflies attached to a
/// private Ethernet to eliminate variance due to other network traffic";
/// this is that private segment, with deterministic fault injection on
/// top.
#[derive(Clone)]
pub struct LoopbackNet {
    inner: Arc<NetInner>,
}

impl Default for LoopbackNet {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopbackNet {
    /// Creates an empty segment with no faults and a fixed RNG seed.
    pub fn new() -> LoopbackNet {
        Self::with_seed(0x5eed_f1ef)
    }

    /// Creates a segment whose fault decisions use the given seed.
    pub fn with_seed(seed: u64) -> LoopbackNet {
        LoopbackNet {
            inner: Arc::new(NetInner {
                stations: Mutex::new(HashMap::new()),
                faults: Mutex::new(FaultPlan::default()),
                rng: Mutex::new(Rng::new(seed)),
                frames_sent: Mutex::new(0),
                frames_dropped: Mutex::new(0),
            }),
        }
    }

    /// Installs a fault plan affecting all subsequent frames.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock() = plan;
    }

    /// Total frames offered to the segment.
    pub fn frames_sent(&self) -> u64 {
        *self.inner.frames_sent.lock()
    }

    /// Frames dropped by loss injection.
    pub fn frames_dropped(&self) -> u64 {
        *self.inner.frames_dropped.lock()
    }

    /// Attaches a new station with the given small id; its address is
    /// `10.0.0.<id>:3072`.
    ///
    /// # Panics
    ///
    /// Panics if the id is 0 or already attached.
    pub fn station(&self, id: u8) -> Arc<LoopbackStation> {
        assert!(id != 0, "station id 0 is reserved");
        let addr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, id), 3072));
        let (tx, rx) = unbounded();
        let mut stations = self.inner.stations.lock();
        assert!(
            !stations.contains_key(&addr),
            "station {id} already attached"
        );
        stations.insert(addr, tx);
        Arc::new(LoopbackStation {
            // lint:allow(no-alloc-on-fast-path): station attach is test
            // topology setup, run once before traffic starts.
            net: self.clone(),
            addr,
            rx,
            down: AtomicBool::new(false),
        })
    }

    fn deliver(&self, frame: &[u8], src: SocketAddr, dst: SocketAddr) -> io::Result<()> {
        *self.inner.frames_sent.lock() += 1;
        // lint:allow(no-alloc-on-fast-path): LoopbackNet is the simulated
        // Ethernet for tests; it copies the frame so fault injection can
        // corrupt or duplicate it without aliasing the sender's buffer.
        let plan = self.inner.faults.lock().clone();
        // lint:allow(no-alloc-on-fast-path): see above — simulation copy.
        let mut frame = frame.to_vec();
        {
            let mut rng = self.inner.rng.lock();
            if plan.loss > 0.0 && rng.f64() < plan.loss {
                *self.inner.frames_dropped.lock() += 1;
                return Ok(());
            }
            if plan.corrupt > 0.0 && rng.f64() < plan.corrupt && !frame.is_empty() {
                let i = rng.range_usize(0..frame.len());
                frame[i] ^= 0x01;
            }
        }
        let copies = {
            let mut rng = self.inner.rng.lock();
            if plan.duplicate > 0.0 && rng.f64() < plan.duplicate {
                2
            } else {
                1
            }
        };
        let tx = {
            let stations = self.inner.stations.lock();
            match stations.get(&dst) {
                // lint:allow(no-alloc-on-fast-path): cloning the channel
                // sender lets the stations lock drop before delivery.
                Some(tx) => tx.clone(),
                None => {
                    // Like a real Ethernet: frames to absent stations vanish.
                    *self.inner.frames_dropped.lock() += 1;
                    return Ok(());
                }
            }
        };
        let send_one = move |tx: Sender<Msg>, frame: Vec<u8>| {
            if let Some(d) = plan.delay {
                std::thread::spawn(move || {
                    // lint:allow(no-sleep-in-lib): fault injection — the
                    // sleep models in-flight latency on the simulated
                    // net, on a thread spawned for that purpose.
                    std::thread::sleep(d);
                    let _ = tx.send(Msg::Frame(frame, src));
                });
            } else {
                let _ = tx.send(Msg::Frame(frame, src));
            }
        };
        for _ in 0..copies - 1 {
            // lint:allow(no-alloc-on-fast-path): duplicate-delivery fault
            // injection; each copy needs its own frame buffer.
            send_one(tx.clone(), frame.clone());
        }
        send_one(tx, frame);
        Ok(())
    }
}

fn copy_msg(msg: Msg, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
    match msg {
        Msg::Frame(frame, src) => {
            let n = frame.len().min(buf.len());
            buf[..n].copy_from_slice(&frame[..n]);
            Ok((n, src))
        }
        Msg::Shutdown => Err(aborted()),
    }
}

/// One station attached to a [`LoopbackNet`].
pub struct LoopbackStation {
    net: LoopbackNet,
    addr: SocketAddr,
    rx: Receiver<Msg>,
    down: AtomicBool,
}

impl Transport for LoopbackStation {
    fn send(&self, frame: &[u8], dst: SocketAddr) -> io::Result<()> {
        if self.down.load(Ordering::Acquire) {
            return Err(aborted());
        }
        self.net.deliver(frame, self.addr, dst)
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        match self.rx.recv() {
            Ok(msg) => copy_msg(msg, buf),
            Err(_) => Err(aborted()),
        }
    }

    fn try_recv(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        match self.rx.try_recv() {
            Ok(Some(msg)) => copy_msg(msg, buf).map(Some),
            Ok(None) => Ok(None),
            Err(_) => Err(aborted()),
        }
    }

    fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        let stations = self.net.inner.stations.lock();
        if let Some(tx) = stations.get(&self.addr) {
            let _ = tx.send(Msg::Shutdown);
        }
    }
}

impl Drop for LoopbackStation {
    fn drop(&mut self) {
        self.net.inner.stations.lock().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_frames() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        a.send(b"hello", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, src) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(src, a.local_addr());
    }

    #[test]
    fn loopback_loss_drops_everything_at_probability_one() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            loss: 1.0,
            ..FaultPlan::default()
        });
        for _ in 0..5 {
            a.send(b"x", b.local_addr()).unwrap();
        }
        assert_eq!(net.frames_dropped(), 5);
        assert_eq!(net.frames_sent(), 5);
    }

    #[test]
    fn loopback_duplication() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::default()
        });
        a.send(b"dup", b.local_addr()).unwrap();
        let mut buf = [0u8; 8];
        assert!(b.recv(&mut buf).is_ok());
        assert!(b.recv(&mut buf).is_ok());
    }

    #[test]
    fn loopback_corruption_flips_a_byte() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        net.set_faults(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        });
        a.send(&[0u8; 16], b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, _) = b.recv(&mut buf).unwrap();
        assert_eq!(n, 16);
        assert_eq!(buf.iter().filter(|&&x| x != 0).count(), 1);
    }

    #[test]
    fn loopback_shutdown_unblocks_recv() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let a2 = Arc::clone(&a);
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            a2.recv(&mut buf)
        });
        firefly_sync::test_sleep();
        a.shutdown();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn frames_to_unknown_stations_vanish() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let ghost = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 99), 3072));
        a.send(b"?", ghost).unwrap();
        assert_eq!(net.frames_dropped(), 1);
    }

    #[test]
    fn udp_round_trip() {
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        a.send(b"over udp", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, src) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"over udp");
        assert_eq!(src, a.local_addr());
    }

    #[test]
    fn udp_shutdown_unblocks_recv() {
        let t = UdpTransport::localhost().unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let mut buf = [0u8; 64];
            t2.recv(&mut buf)
        });
        firefly_sync::test_sleep();
        t.shutdown();
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn loopback_try_recv_drains_then_reports_empty() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        a.send(b"one", b.local_addr()).unwrap();
        a.send(b"two", b.local_addr()).unwrap();
        let mut buf = [0u8; 8];
        let (n, _) = b.try_recv(&mut buf).unwrap().unwrap();
        assert_eq!(&buf[..n], b"one");
        let (n, _) = b.try_recv(&mut buf).unwrap().unwrap();
        assert_eq!(&buf[..n], b"two");
        assert!(b.try_recv(&mut buf).unwrap().is_none());
    }

    #[test]
    fn udp_try_recv_drains_then_reports_empty() {
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        a.send(b"first", b.local_addr()).unwrap();
        a.send(b"second", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        // A blocking recv first: delivery to a bound socket is not
        // instantaneous, and recv also exercises the mode switch back.
        let (n, _) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"first");
        // The second datagram is already queued (UDP preserves order on
        // loopback), so the nonblocking drain must find it — poll
        // briefly to absorb scheduler jitter.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match b.try_recv(&mut buf).unwrap() {
                Some((n, src)) => {
                    assert_eq!(&buf[..n], b"second");
                    assert_eq!(src, a.local_addr());
                    break;
                }
                None => {
                    assert!(std::time::Instant::now() < deadline, "datagram never arrived");
                    std::thread::yield_now();
                }
            }
        }
        assert!(b.try_recv(&mut buf).unwrap().is_none());
        // And a blocking recv still works after the nonblocking drain.
        a.send(b"third", b.local_addr()).unwrap();
        let (n, _) = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"third");
    }

    #[test]
    fn send_batch_default_sends_every_frame() {
        let net = LoopbackNet::new();
        let a = net.station(1);
        let b = net.station(2);
        let dst = b.local_addr();
        a.send_batch(&[(b"x", dst), (b"y", dst)]).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap().0, 1);
        assert_eq!(b.recv(&mut buf).unwrap().0, 1);
    }

    #[test]
    fn udp_send_batch_coalesces_same_destination_frames() {
        use firefly_wire::{coalesced_frame_len, FrameBuilder, PacketType, MIN_FRAME_LEN};
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        let f1 = FrameBuilder::new(PacketType::Result).build(&[]).unwrap();
        let f2 = FrameBuilder::new(PacketType::Result).build(&[5; 8]).unwrap();
        let dst = b.local_addr();
        a.send_batch(&[(f1.bytes(), dst), (f2.bytes(), dst)])
            .unwrap();
        // Both frames arrive in ONE datagram, back to back.
        let mut buf = [0u8; firefly_wire::MAX_FRAME_LEN];
        let (n, _) = b.recv(&mut buf).unwrap();
        assert_eq!(n, f1.len() + f2.len());
        let first = coalesced_frame_len(&buf[..n]).unwrap();
        assert_eq!(first, MIN_FRAME_LEN);
        let second = coalesced_frame_len(&buf[first..n]).unwrap();
        assert_eq!(first + second, n);
    }

    #[test]
    fn udp_send_batch_flushes_on_destination_change() {
        use firefly_wire::{FrameBuilder, PacketType, MIN_FRAME_LEN};
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        let c = UdpTransport::localhost().unwrap();
        let f = FrameBuilder::new(PacketType::Result).build(&[]).unwrap();
        a.send_batch(&[
            (f.bytes(), b.local_addr()),
            (f.bytes(), c.local_addr()),
            (f.bytes(), b.local_addr()),
        ])
        .unwrap();
        let mut buf = [0u8; firefly_wire::MAX_FRAME_LEN];
        // b gets two separate datagrams (the run was broken by c's frame).
        assert_eq!(b.recv(&mut buf).unwrap().0, MIN_FRAME_LEN);
        assert_eq!(b.recv(&mut buf).unwrap().0, MIN_FRAME_LEN);
        assert_eq!(c.recv(&mut buf).unwrap().0, MIN_FRAME_LEN);
    }

    #[test]
    fn udp_send_batch_splits_at_datagram_capacity() {
        use firefly_wire::{FrameBuilder, PacketType, MAX_SINGLE_PACKET_DATA};
        let a = UdpTransport::localhost().unwrap();
        let b = UdpTransport::localhost().unwrap();
        let small = FrameBuilder::new(PacketType::Result).build(&[]).unwrap();
        let max = FrameBuilder::new(PacketType::Result)
            .build(&vec![0u8; MAX_SINGLE_PACKET_DATA])
            .unwrap();
        let dst = b.local_addr();
        // small + max overflows 1514, so the batch must split.
        a.send_batch(&[(small.bytes(), dst), (max.bytes(), dst)])
            .unwrap();
        let mut buf = [0u8; firefly_wire::MAX_FRAME_LEN];
        assert_eq!(b.recv(&mut buf).unwrap().0, small.len());
        assert_eq!(b.recv(&mut buf).unwrap().0, max.len());
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_station_rejected() {
        let net = LoopbackNet::new();
        let _a = net.station(1);
        let _b = net.station(1);
    }
}
