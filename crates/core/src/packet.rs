//! Received packets: a pool buffer plus its validated headers.

use firefly_pool::PacketBuf;
use firefly_wire::{FrameView, RpcHeader, DATA_OFFSET};

use crate::Result;

/// A validated received packet.
///
/// Owns the pool buffer and remembers where the data region lies, so the
/// payload can be read in place — the packet is what the demultiplexer
/// hands to a directly awakened thread, buffer and all, just as the
/// Firefly interrupt routine "attaches the buffer containing the call
/// packet to the call table entry and awakens the server thread directly".
#[derive(Debug)]
pub struct Packet {
    buf: PacketBuf,
    /// The validated RPC header.
    pub rpc: RpcHeader,
    data_len: usize,
}

impl Packet {
    /// Validates the frame held in `buf` (headers, checksum, lengths) and
    /// wraps it. `checksum` selects whether UDP checksums are verified —
    /// frames sent with checksums disabled carry a zero checksum field,
    /// which the wire layer accepts either way.
    pub fn from_buf(buf: PacketBuf) -> Result<Packet> {
        let view = FrameView::parse(&buf)?;
        let rpc = view.rpc;
        let data_len = view.data.len();
        Ok(Packet { buf, rpc, data_len })
    }

    /// The marshalled data region, in place in the pool buffer.
    pub fn data(&self) -> &[u8] {
        &self.buf[DATA_OFFSET..DATA_OFFSET + self.data_len]
    }

    /// Length of the data region.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Total frame length on the wire.
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the packet, returning its buffer (for recycling).
    pub fn into_buf(self) -> PacketBuf {
        self.buf
    }
}

/// A complete incoming call or result: either a single packet (data read
/// in place, zero copy) or a reassembly of fragments.
#[derive(Debug)]
pub enum Assembled {
    /// A single-packet call/result, data still in the pool buffer.
    Single(Packet),
    /// A multi-packet call/result, data concatenated during reassembly.
    Multi {
        /// Header of the final fragment.
        rpc: RpcHeader,
        /// The concatenated data of all fragments.
        data: Vec<u8>,
    },
}

impl Assembled {
    /// The RPC header (of the single packet, or the final fragment).
    pub fn rpc(&self) -> &RpcHeader {
        match self {
            Assembled::Single(p) => &p.rpc,
            Assembled::Multi { rpc, .. } => rpc,
        }
    }

    /// The complete marshalled data.
    pub fn data(&self) -> &[u8] {
        match self {
            Assembled::Single(p) => p.data(),
            Assembled::Multi { data, .. } => data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly_pool::BufferPool;
    use firefly_wire::{ActivityId, FrameBuilder, PacketType};

    fn packet_with_data(data: &[u8]) -> Packet {
        let frame = FrameBuilder::new(PacketType::Call)
            .activity(ActivityId::new(5, 1, 2))
            .call_seq(9)
            .build(data)
            .unwrap();
        let pool = BufferPool::new(1);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        Packet::from_buf(buf).unwrap()
    }

    #[test]
    fn data_read_in_place() {
        let p = packet_with_data(&[1, 2, 3, 4]);
        assert_eq!(p.data(), &[1, 2, 3, 4]);
        assert_eq!(p.data_len(), 4);
        assert_eq!(p.wire_len(), 78);
        assert_eq!(p.rpc.call_seq, 9);
    }

    #[test]
    fn corrupt_frame_rejected() {
        let frame = FrameBuilder::new(PacketType::Call).build(&[7; 16]).unwrap();
        let mut bytes = frame.into_bytes();
        bytes[80] ^= 1;
        let pool = BufferPool::new(1);
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(&bytes);
        assert!(Packet::from_buf(buf).is_err());
    }

    #[test]
    fn assembled_views() {
        let p = packet_with_data(&[9, 9]);
        let rpc = p.rpc;
        let single = Assembled::Single(p);
        assert_eq!(single.data(), &[9, 9]);
        let multi = Assembled::Multi {
            rpc,
            data: vec![1, 2, 3],
        };
        assert_eq!(multi.data(), &[1, 2, 3]);
        assert_eq!(multi.rpc().call_seq, 9);
    }

    #[test]
    fn into_buf_releases_to_pool() {
        let pool = BufferPool::new(1);
        let frame = FrameBuilder::new(PacketType::Call).build(&[]).unwrap();
        let mut buf = pool.alloc().unwrap();
        buf.fill_from(frame.bytes());
        let p = Packet::from_buf(buf).unwrap();
        assert_eq!(pool.free_count(), 0);
        drop(p.into_buf());
        assert_eq!(pool.free_count(), 1);
    }
}
