//! Server-side service objects: the up-call target of the Receiver.
//!
//! The Receiver "calls the the stub for the interface ID specified in the
//! call packet. The interface stub then calls the specific procedure stub
//! for the procedure ID specified in the call packet." (§3.1.3.) A
//! [`Service`] is one exported interface instance; [`ServiceBuilder`]
//! assembles one from per-procedure closures, playing the role of the
//! generated server stub module plus the server program's procedures.

use firefly_idl::{InterfaceDef, ResultWriter, ServerArg};
use std::collections::HashMap;
use std::sync::Arc;

use crate::{Result, RpcError};

/// A procedure implementation: reads [`ServerArg`]s (CHAR arrays arrive
/// as in-place slices into the call packet) and produces every
/// result-direction value through the [`ResultWriter`] (CHAR arrays are
/// written in place into the result packet).
pub type Handler = Box<dyn Fn(&[ServerArg<'_>], &mut ResultWriter<'_>) -> Result<()> + Send + Sync>;

/// One exported interface instance.
pub trait Service: Send + Sync {
    /// The interface this service implements.
    fn interface(&self) -> &InterfaceDef;

    /// Executes procedure `index` — the server stub plus server procedure.
    fn dispatch(
        &self,
        index: u16,
        args: &[ServerArg<'_>],
        results: &mut ResultWriter<'_>,
    ) -> Result<()>;
}

/// Builds a [`Service`] from closures, one per procedure.
///
/// # Examples
///
/// ```
/// use firefly_rpc::ServiceBuilder;
/// use firefly_idl::{test_interface, Value};
///
/// let service = ServiceBuilder::new(test_interface())
///     .on_call("Null", |_args, _w| Ok(()))
///     .on_call("MaxResult", |_args, w| {
///         w.next_bytes(1440)?.fill(0);
///         Ok(())
///     })
///     .on_call("MaxArg", |_args, _w| Ok(()))
///     .build()
///     .unwrap();
/// ```
pub struct ServiceBuilder {
    interface: InterfaceDef,
    handlers: HashMap<String, Handler>,
}

impl ServiceBuilder {
    /// Starts building a service for `interface`.
    pub fn new(interface: InterfaceDef) -> ServiceBuilder {
        ServiceBuilder {
            interface,
            handlers: HashMap::new(),
        }
    }

    /// Registers the implementation of one procedure by name.
    pub fn on_call<F>(mut self, name: &str, f: F) -> Self
    where
        F: Fn(&[ServerArg<'_>], &mut ResultWriter<'_>) -> Result<()> + Send + Sync + 'static,
    {
        self.handlers.insert(name.to_string(), Box::new(f));
        self
    }

    /// Finishes the build, requiring a handler for every declared
    /// procedure.
    pub fn build(mut self) -> Result<Arc<dyn Service>> {
        let mut table: Vec<(String, Handler)> = Vec::new();
        for p in self.interface.procedures() {
            match self.handlers.remove(p.name()) {
                Some(h) => table.push((p.name().to_string(), h)),
                None => {
                    return Err(RpcError::Binding(format!(
                        "no handler for procedure `{}`",
                        p.name()
                    )))
                }
            }
        }
        if let Some(extra) = self.handlers.keys().next() {
            return Err(RpcError::Binding(format!(
                "handler `{extra}` does not match any procedure"
            )));
        }
        Ok(Arc::new(BuiltService {
            interface: self.interface,
            table,
        }))
    }
}

struct BuiltService {
    interface: InterfaceDef,
    table: Vec<(String, Handler)>,
}

impl Service for BuiltService {
    fn interface(&self) -> &InterfaceDef {
        &self.interface
    }

    fn dispatch(
        &self,
        index: u16,
        args: &[ServerArg<'_>],
        results: &mut ResultWriter<'_>,
    ) -> Result<()> {
        let (_, handler) = self
            .table
            .get(index as usize)
            .ok_or_else(|| RpcError::Remote(format!("no procedure #{index}")))?;
        handler(args, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly_idl::{test_interface, Value};

    #[test]
    fn build_requires_all_handlers() {
        let e = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Ok(()))
            .build()
            .err()
            .expect("missing handlers must fail");
        assert!(e.to_string().contains("MaxResult") || e.to_string().contains("no handler"));
    }

    #[test]
    fn build_rejects_unknown_handlers() {
        let e = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Ok(()))
            .on_call("MaxResult", |_a, _w| Ok(()))
            .on_call("MaxArg", |_a, _w| Ok(()))
            .on_call("Bogus", |_a, _w| Ok(()))
            .build()
            .err()
            .expect("extra handler must fail");
        assert!(e.to_string().contains("Bogus"));
    }

    #[test]
    fn dispatch_routes_by_index() {
        let service = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Ok(()))
            .on_call("MaxResult", |_a, w| {
                w.next_bytes(4)?.copy_from_slice(b"abcd");
                Ok(())
            })
            .on_call("MaxArg", |args, _w| {
                assert!(args[0].bytes().is_some());
                Ok(())
            })
            .build()
            .unwrap();

        // Procedure 1 is MaxResult.
        let iface = firefly_idl::test_interface();
        let plan = std::sync::Arc::clone(iface.procedure("MaxResult").unwrap().plan());
        let mut buf = vec![0u8; 64];
        let mut w = ResultWriter::new(plan, &mut buf);
        service.dispatch(1, &[ServerArg::Out], &mut w).unwrap();
        let n = w.finish().unwrap().len();
        assert_eq!(&buf[..n], b"abcd");
    }

    #[test]
    fn dispatch_unknown_index_fails() {
        let service = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Ok(()))
            .on_call("MaxResult", |_a, _w| Ok(()))
            .on_call("MaxArg", |_a, _w| Ok(()))
            .build()
            .unwrap();
        let iface = firefly_idl::test_interface();
        let plan = std::sync::Arc::clone(iface.procedure("Null").unwrap().plan());
        let mut buf = vec![0u8; 8];
        let mut w = ResultWriter::new(plan, &mut buf);
        assert!(service.dispatch(9, &[], &mut w).is_err());
    }

    #[test]
    fn handlers_can_reject_calls() {
        let service = ServiceBuilder::new(test_interface())
            .on_call("Null", |_a, _w| Err(RpcError::Remote("not today".into())))
            .on_call("MaxResult", |_a, _w| Ok(()))
            .on_call("MaxArg", |_a, _w| Ok(()))
            .build()
            .unwrap();
        let iface = firefly_idl::test_interface();
        let plan = std::sync::Arc::clone(iface.procedure("Null").unwrap().plan());
        let mut buf = vec![0u8; 8];
        let mut w = ResultWriter::new(plan, &mut buf);
        let e = service.dispatch(0, &[], &mut w).unwrap_err();
        assert!(e.to_string().contains("not today"));
    }

    #[test]
    fn values_flow_through_handlers() {
        let iface = firefly_idl::parse_interface(
            "DEFINITION MODULE M; PROCEDURE Add(a, b: INTEGER): INTEGER; END M.",
        )
        .unwrap();
        let service = ServiceBuilder::new(iface.clone())
            .on_call("Add", |args, w| {
                let a = args[0].value().and_then(Value::as_integer).unwrap_or(0);
                let b = args[1].value().and_then(Value::as_integer).unwrap_or(0);
                w.next_value(&Value::Integer(a + b))?;
                Ok(())
            })
            .build()
            .unwrap();
        let plan = std::sync::Arc::clone(iface.procedure("Add").unwrap().plan());
        let mut buf = vec![0u8; 8];
        let mut w = ResultWriter::new(plan, &mut buf);
        service
            .dispatch(
                0,
                &[
                    ServerArg::Val(Value::Integer(2)),
                    ServerArg::Val(Value::Integer(40)),
                ],
                &mut w,
            )
            .unwrap();
        let n = w.finish().unwrap().len();
        assert_eq!(buf[..n], 42i32.to_be_bytes());
    }
}
