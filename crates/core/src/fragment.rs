//! Splitting large calls and results into packet-sized fragments.
//!
//! "The RPC implementation allows arguments and results larger than 1440
//! bytes, but such larger arguments and results necessarily are
//! transmitted in multiple packets." (§2.) Following Birrell–Nelson,
//! every fragment except the last is sent stop-and-wait: it carries the
//! please-ack flag and the sender waits for the explicit acknowledgement
//! before sending the next, so no more than one packet per call is ever
//! outstanding without an ack. (The batching ablation,
//! `Config::fragment_blast`, replaces the caller's stop-and-wait with a
//! back-to-back window blast; see `Client::transact_blast`.)

use firefly_wire::MAX_SINGLE_PACKET_DATA;

use crate::{Result, RpcError};

/// Maximum marshalled bytes a single fragment carries.
pub const MAX_FRAGMENT_DATA: usize = MAX_SINGLE_PACKET_DATA;

/// Maximum total marshalled size of one call or result.
pub const MAX_TRANSFER: usize = MAX_FRAGMENT_DATA * u16::MAX as usize;

/// Number of fragments needed for `len` bytes (at least 1 — a zero-byte
/// body still sends one packet).
pub fn fragment_count(len: usize) -> Result<u16> {
    if len > MAX_TRANSFER {
        return Err(RpcError::TooLarge(len));
    }
    Ok(len.div_ceil(MAX_FRAGMENT_DATA).max(1) as u16)
}

/// Iterates `(index, chunk)` fragments of `data`.
pub fn fragments(data: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
    let count = data.len().div_ceil(MAX_FRAGMENT_DATA).max(1);
    (0..count).map(move |i| {
        let start = i * MAX_FRAGMENT_DATA;
        let end = (start + MAX_FRAGMENT_DATA).min(data.len());
        (i as u16, &data[start..end])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bodies_are_one_fragment() {
        assert_eq!(fragment_count(0).unwrap(), 1);
        assert_eq!(fragment_count(1).unwrap(), 1);
        assert_eq!(fragment_count(1440).unwrap(), 1);
        assert_eq!(fragment_count(1441).unwrap(), 2);
    }

    #[test]
    fn fragments_cover_data_exactly() {
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let parts: Vec<_> = fragments(&data).collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].1.len(), 1440);
        assert_eq!(parts[1].1.len(), 1440);
        assert_eq!(parts[2].1.len(), 1120);
        let rejoined: Vec<u8> = parts.iter().flat_map(|(_, c)| c.iter().copied()).collect();
        assert_eq!(rejoined, data);
        assert_eq!(parts[2].0, 2);
    }

    #[test]
    fn empty_data_yields_one_empty_fragment() {
        let parts: Vec<_> = fragments(&[]).collect();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].1.is_empty());
    }

    #[test]
    fn oversize_rejected() {
        assert!(matches!(
            fragment_count(MAX_TRANSFER + 1),
            Err(RpcError::TooLarge(_))
        ));
    }
}
