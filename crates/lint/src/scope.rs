//! Function extraction and a brace-scoped guard-lifetime model.
//!
//! The flow-aware rules (`lock-order`, `lock-cycle`,
//! `no-blocking-under-lock`) need to know which lock guards are *live*
//! at each point of a function body, not merely which acquisitions
//! appear earlier in token order. This module provides:
//!
//! * [`functions`] — every `fn` item in a token stream with its body
//!   brace range (nested `fn` items get their own entry).
//! * [`walk_guards`] — a single forward pass over one body that
//!   maintains the set of live guards and reports two kinds of events
//!   to a visitor: each lock acquisition (with the guards live at that
//!   moment) and each potentially-blocking call (likewise).
//!
//! The lifetime model is deliberately simple and errs conservative:
//!
//! * `let [mut] NAME = recv.lock();` (chain ending exactly at the
//!   call, `;` right after) births a **named** guard that dies at
//!   `drop(NAME)` or at the end of the enclosing brace block.
//!   Shadowing does not kill the shadowed guard — Rust drops it at
//!   scope end, so both stay live.
//! * Any other `.lock()` / `.read()` / `.write()` births a
//!   **temporary** guard that dies at the next `;`. For
//!   `if let Some(x) = m.lock().pop()` scrutinees this is a
//!   conservative approximation (the real temporary lives to the end
//!   of the `if let` in old editions); the first `;` inside the block
//!   is where the approximation lands, which only ever *extends* the
//!   modeled lifetime relative to a plain statement.

use crate::source::match_brace;
use crate::tokenizer::{Token, TokenKind};

/// One `fn` item with its body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the body `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
}

/// Extracts every `fn` item that has a body. Trait-method declarations
/// (ending in `;`) are skipped. Scanning resumes *inside* each body, so
/// nested `fn` items are extracted too.
pub fn functions(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // The body `{` is the first brace after the signature; a `;`
        // first means a bodyless declaration.
        let Some(open) = (i + 2..tokens.len()).find(|&j| matches!(tokens[j].text.as_str(), "{" | ";"))
        else {
            break;
        };
        if tokens[open].text == ";" {
            i = open + 1;
            continue;
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            open,
            close: match_brace(tokens, open),
        });
        i = open + 1;
    }
    out
}

/// A guard that is live at some point of the walk.
#[derive(Debug, Clone)]
pub struct LiveGuard {
    /// Binding name (`None` for a temporary).
    pub name: Option<String>,
    /// Receiver field identifier (`free`, `entries`, `ring`, ...).
    pub receiver: String,
    /// For indexed acquisitions (`shards[2].lock()`), the single index
    /// token between the brackets; `None` for plain receivers and for
    /// compound index expressions (`shards[i + 1]`).
    pub index: Option<String>,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// One event reported to the [`walk_guards`] visitor.
pub enum GuardEvent<'a> {
    /// A `.lock()`/`.read()`/`.write()` acquisition. `live` is the set
    /// of guards held *before* this one; the new guard itself is
    /// described by `guard`.
    Acquire {
        guard: &'a LiveGuard,
        live: &'a [LiveGuard],
    },
    /// A call that can block (`callee` is the called identifier).
    /// `args` are the token indices of the call's argument list
    /// (exclusive of the parens) so visitors can detect condvar-style
    /// calls that atomically release one of the live guards.
    Blocking {
        callee: &'a str,
        line: usize,
        args: (usize, usize),
        live: &'a [LiveGuard],
    },
}

/// Token index of the `)` matching the `(` at `open` (or the last
/// token when unbalanced — degrade, never panic).
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Walks backwards from `k` (the last token of a receiver chain
/// segment) to the chain-head identifier, stepping over `[...]` index
/// groups: `self . shards [ 2 ]` from the final `]` lands on `self`.
fn chain_head(tokens: &[Token], mut k: usize) -> Option<usize> {
    loop {
        if tokens[k].text == "]" {
            // Skip back over the bracket group to its `[`.
            let mut depth = 0usize;
            loop {
                match tokens[k].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k = k.checked_sub(1)?;
            }
            k = k.checked_sub(1)?; // the indexed ident before `[`
        }
        if tokens[k].kind != TokenKind::Ident {
            return None;
        }
        if k >= 2 && tokens[k - 1].text == "." {
            k -= 2;
            continue;
        }
        return Some(k);
    }
}

/// Receiver of the acquisition whose `lock/read/write` ident sits at
/// `j`: `recv.lock()` yields `("recv", None)`; an indexed
/// `recv[2].lock()` yields `("recv", Some("2"))` when the index is a
/// single token, `("recv", None)` for compound index expressions.
fn receiver_of(tokens: &[Token], j: usize) -> Option<(String, Option<String>)> {
    let prev = j.checked_sub(2)?;
    let t = &tokens[prev];
    if t.kind == TokenKind::Ident {
        return Some((t.text.clone(), None));
    }
    if t.text != "]" {
        return None;
    }
    // Scan back to the matching `[`.
    let mut depth = 0usize;
    let mut k = prev;
    loop {
        match tokens[k].text.as_str() {
            "]" => depth += 1,
            "[" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
    let recv = tokens.get(k.checked_sub(1)?)?;
    if recv.kind != TokenKind::Ident {
        return None;
    }
    let index = if prev == k + 2 {
        Some(tokens[k + 1].text.clone())
    } else {
        None
    };
    Some((recv.text.clone(), index))
}

/// True when the acquisition whose `lock/read/write` ident sits at `j`
/// is the whole right-hand side of a `let` binding: the call's `()`
/// is immediately followed by `;`, and the receiver chain is preceded
/// by `let [mut] NAME =`. Returns the binding name.
fn binding_name(tokens: &[Token], j: usize) -> Option<String> {
    // `recv . lock ( ) ;` — the `;` must immediately follow the call.
    if tokens.get(j + 3).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    // Walk the receiver chain backwards: ident ([...])? (. ident ([...])?)*.
    let k = chain_head(tokens, j.checked_sub(2)?)?;
    let eq = k.checked_sub(1)?;
    if tokens[eq].text != "=" {
        return None;
    }
    let name = eq.checked_sub(1)?;
    if tokens[name].kind != TokenKind::Ident {
        return None;
    }
    let before = name.checked_sub(1)?;
    let is_let = tokens[before].text == "let"
        || (tokens[before].text == "mut"
            && before >= 1
            && tokens[before - 1].text == "let");
    if is_let {
        Some(tokens[name].text.clone())
    } else {
        None
    }
}

/// Walks the body token range `[open, close]` of one function,
/// maintaining guard lifetimes, and calls `visit` at every acquisition
/// and every potentially-blocking call.
///
/// `is_blocking(callee, receiver)` decides whether a call can block —
/// `receiver` is the ident before a `.` for method calls, `None` for
/// bare/path calls. Lines for which `skip_line` returns true (test
/// code) produce no events and no guards.
pub fn walk_guards(
    tokens: &[Token],
    open: usize,
    close: usize,
    skip_line: &dyn Fn(usize) -> bool,
    is_blocking: &dyn Fn(&str, Option<&str>) -> bool,
    visit: &mut dyn FnMut(GuardEvent<'_>),
) {
    let mut live: Vec<LiveGuard> = Vec::new();
    // Per-guard birth scope depth, parallel to `live`.
    let mut born_at: Vec<usize> = Vec::new();
    let mut temp: Vec<bool> = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j <= close && j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                // Kill every guard born in the closing scope.
                let mut k = 0;
                while k < live.len() {
                    if born_at[k] >= depth {
                        live.remove(k);
                        born_at.remove(k);
                        temp.remove(k);
                    } else {
                        k += 1;
                    }
                }
                depth = depth.saturating_sub(1);
            }
            ";" => {
                // Temporaries die at the end of their statement.
                let mut k = 0;
                while k < live.len() {
                    if temp[k] {
                        live.remove(k);
                        born_at.remove(k);
                        temp.remove(k);
                    } else {
                        k += 1;
                    }
                }
            }
            _ => {}
        }
        // Skip nested fn bodies: their guards are a separate frame.
        if t.kind == TokenKind::Ident && t.text == "fn" && j > open {
            if let Some(inner_open) =
                (j + 1..close).find(|&k| matches!(tokens[k].text.as_str(), "{" | ";"))
            {
                if tokens[inner_open].text == "{" {
                    j = match_brace(tokens, inner_open) + 1;
                    continue;
                }
            }
        }
        if t.kind != TokenKind::Ident || skip_line(t.line) {
            j += 1;
            continue;
        }
        // `drop(NAME)` kills the most recent guard bound to NAME.
        if t.text == "drop"
            && tokens.get(j + 1).map(|x| x.text.as_str()) == Some("(")
            && tokens.get(j + 3).map(|x| x.text.as_str()) == Some(")")
        {
            if let Some(arg) = tokens.get(j + 2).filter(|x| x.kind == TokenKind::Ident) {
                if let Some(k) = live
                    .iter()
                    .rposition(|g| g.name.as_deref() == Some(arg.text.as_str()))
                {
                    live.remove(k);
                    born_at.remove(k);
                    temp.remove(k);
                }
            }
            j += 1;
            continue;
        }
        let calls = tokens.get(j + 1).map(|x| x.text.as_str()) == Some("(");
        let receiver_dot = j >= 1 && tokens[j - 1].text == ".";
        // Acquisition: `recv.lock()` / `.read()` / `.write()`.
        if calls
            && receiver_dot
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && tokens.get(j + 2).map(|x| x.text.as_str()) == Some(")")
        {
            let Some((receiver, index)) = receiver_of(tokens, j) else {
                j += 1;
                continue;
            };
            let name = binding_name(tokens, j);
            let guard = LiveGuard {
                name: name.clone(),
                receiver,
                index,
                line: t.line,
            };
            visit(GuardEvent::Acquire {
                guard: &guard,
                live: &live,
            });
            temp.push(name.is_none());
            born_at.push(depth);
            live.push(guard);
            j += 3; // past `( )`
            continue;
        }
        // Blocking call: method (`x.recv(`) or bare/path (`park(`).
        if calls && tokens.get(j.wrapping_sub(1)).map(|x| x.text.as_str()) != Some("fn") {
            let receiver = if receiver_dot {
                tokens
                    .get(j.wrapping_sub(2))
                    .filter(|r| r.kind == TokenKind::Ident && j >= 2)
                    .map(|r| r.text.as_str())
            } else {
                None
            };
            if is_blocking(&t.text, receiver) {
                let close_paren = match_paren(tokens, j + 1);
                visit(GuardEvent::Blocking {
                    callee: &t.text,
                    line: t.line,
                    args: (j + 2, close_paren),
                    live: &live,
                });
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn body_events(src: &str) -> Vec<(String, Vec<Option<String>>)> {
        let toks = tokenize(src).tokens;
        let fns = functions(&toks);
        assert_eq!(fns.len(), 1, "expected one fn in {src}");
        let mut out = Vec::new();
        walk_guards(
            &toks,
            fns[0].open,
            fns[0].close,
            &|_| false,
            &|callee, _| callee == "recv",
            &mut |ev| match ev {
                GuardEvent::Acquire { guard, live } => out.push((
                    format!("acquire:{}", guard.receiver),
                    live.iter().map(|g| g.name.clone()).collect(),
                )),
                GuardEvent::Blocking { callee, live, .. } => out.push((
                    format!("block:{callee}"),
                    live.iter().map(|g| g.name.clone()).collect(),
                )),
            },
        );
        out
    }

    #[test]
    fn named_guard_lives_to_scope_end() {
        let ev = body_events(
            "fn f() { let g = self.free.lock(); { let h = t.entries.lock(); } q.recv(); }",
        );
        assert_eq!(ev[0].0, "acquire:free");
        assert!(ev[0].1.is_empty());
        assert_eq!(ev[1].0, "acquire:entries");
        assert_eq!(ev[1].1, vec![Some("g".to_string())]);
        // After the inner block closes only `g` survives.
        assert_eq!(ev[2].0, "block:recv");
        assert_eq!(ev[2].1, vec![Some("g".to_string())]);
    }

    #[test]
    fn drop_kills_a_named_guard() {
        let ev = body_events("fn f() { let g = x.free.lock(); drop(g); q.recv(); }");
        assert_eq!(ev[1].0, "block:recv");
        assert!(ev[1].1.is_empty());
    }

    #[test]
    fn temporaries_die_at_the_statement_end() {
        let ev = body_events("fn f() { self.entries.lock().insert(k, v); q.recv(); }");
        assert_eq!(ev[0].0, "acquire:entries");
        assert_eq!(ev[1].0, "block:recv");
        assert!(ev[1].1.is_empty(), "{ev:?}");
    }

    #[test]
    fn chained_call_is_a_temporary_not_a_binding() {
        // `.take()` after `.lock()` means the guard is a temporary even
        // though a `let` is present.
        let ev = body_events("fn f() { let h = self.demux.lock().take(); q.recv(); }");
        assert_eq!(ev[0].0, "acquire:demux");
        assert_eq!(ev[1].0, "block:recv");
        assert!(ev[1].1.is_empty());
    }

    /// (receiver, index) pairs of every acquisition in a one-fn body.
    fn acquisitions(src: &str) -> Vec<(String, Option<String>)> {
        let toks = tokenize(src).tokens;
        let fns = functions(&toks);
        assert_eq!(fns.len(), 1, "expected one fn in {src}");
        let mut out = Vec::new();
        walk_guards(
            &toks,
            fns[0].open,
            fns[0].close,
            &|_| false,
            &|_, _| false,
            &mut |ev| {
                if let GuardEvent::Acquire { guard, .. } = ev {
                    out.push((guard.receiver.clone(), guard.index.clone()));
                }
            },
        );
        out
    }

    #[test]
    fn indexed_acquisition_captures_the_index() {
        let ev = acquisitions(
            "fn f() { let a = self.shards[0].lock(); let b = self.shards[3].lock(); }",
        );
        assert_eq!(
            ev,
            vec![
                ("shards".to_string(), Some("0".to_string())),
                ("shards".to_string(), Some("3".to_string())),
            ]
        );
    }

    #[test]
    fn compound_or_variable_index_has_no_constant() {
        let ev = acquisitions("fn f() { let g = shards[i + 1].lock(); shards[i].lock(); }");
        assert_eq!(
            ev,
            vec![
                ("shards".to_string(), None),
                ("shards".to_string(), Some("i".to_string())),
            ]
        );
    }

    #[test]
    fn indexed_named_guard_lives_to_scope_end() {
        // binding_name must walk back over the `[0]` group to find the
        // `let`; the guard then survives to the blocking call.
        let ev = body_events("fn f() { let g = self.shards[0].lock(); q.recv(); }");
        assert_eq!(ev[0].0, "acquire:shards");
        assert_eq!(ev[1].0, "block:recv");
        assert_eq!(ev[1].1, vec![Some("g".to_string())]);
    }

    #[test]
    fn loop_iteration_scope_ends_the_guard() {
        let ev = body_events("fn f() { loop { let g = p.free.lock(); } q.recv(); }");
        assert_eq!(ev[1].0, "block:recv");
        assert!(ev[1].1.is_empty());
    }

    #[test]
    fn nested_fn_bodies_are_skipped() {
        let src = "fn outer() { let g = x.free.lock(); fn inner() { q.recv(); } }";
        let toks = tokenize(src).tokens;
        let fns = functions(&toks);
        assert_eq!(fns.len(), 2);
        let mut events = 0;
        walk_guards(
            &toks,
            fns[0].open,
            fns[0].close,
            &|_| false,
            &|callee, _| callee == "recv",
            &mut |ev| {
                if let GuardEvent::Blocking { .. } = ev {
                    events += 1;
                }
            },
        );
        assert_eq!(events, 0, "inner fn's recv must not count against outer");
    }

    #[test]
    fn functions_skip_bodyless_declarations() {
        let toks = tokenize("trait T { fn a(&self); fn b(&self) { } }").tokens;
        let fns = functions(&toks);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "b");
    }
}
