//! firefly-lint: in-tree static analysis for the Firefly RPC workspace.
//!
//! The paper's performance argument rests on invariants the compiler
//! cannot check: the packet fast path never allocates or panics, locks
//! are taken in one global order, and the build depends on nothing
//! outside the tree. This crate enforces them with a lightweight
//! comment- and string-aware tokenizer — no rustc internals, no
//! external parser, std only.
//!
//! Rules (see docs/LINTS.md for the full rationale):
//! - `no-panic-on-fast-path`
//! - `no-alloc-on-fast-path`
//! - `lock-order`
//! - `no-sleep-in-lib`
//! - `safety-comment`
//! - `hermetic-deps`
//!
//! Suppression: `// lint:allow(<rule>): <justification>` on the same
//! line or the line above, `// lint:allow-file(<rule>): <reason>` for a
//! whole file. An allow without a justification is itself reported
//! (`unjustified-allow`).

#![forbid(unsafe_code)]

pub mod config;
pub mod rules;
pub mod source;
pub mod tokenizer;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use config::Config;
use source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`rules::name`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `lint:allow` marker.
struct Allow {
    rule: String,
    /// Line the marker itself is on.
    line: usize,
    /// Line the marker covers: its own line, plus the first code line
    /// after the comment block it belongs to (a justification may span
    /// several comment lines before reaching the code it exempts).
    covered: usize,
    file_wide: bool,
    justified: bool,
}

/// The rule engine: configuration plus the workspace walker.
pub struct Engine {
    pub config: Config,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: Config) -> Engine {
        Engine { config }
    }

    /// An engine configured from `<root>/lint.toml` when present,
    /// compiled-in defaults otherwise.
    pub fn for_root(root: &Path) -> Engine {
        let config = match fs::read_to_string(root.join("lint.toml")) {
            Ok(text) => Config::from_toml(&text),
            Err(_) => Config::default(),
        };
        Engine::new(config)
    }

    /// Lints one Rust source file given its workspace-relative path.
    pub fn check_source_text(&self, rel_path: &str, text: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new(rel_path, text);
        let allows = collect_allows(&file);
        let mut out: Vec<Diagnostic> = rules::check_source(&file, &self.config)
            .into_iter()
            .filter(|d| !is_suppressed(d, &allows))
            .collect();
        for allow in &allows {
            if !allow.justified {
                out.push(file.diagnostic(
                    rules::name::UNJUSTIFIED_ALLOW,
                    allow.line,
                    format!(
                        "`lint:allow({})` without a justification; write \
                         `// lint:allow({}): <why this site is exempt>`",
                        allow.rule, allow.rule
                    ),
                ));
            }
        }
        out
    }

    /// Lints one `Cargo.toml` given its workspace-relative path.
    pub fn check_manifest_text(&self, rel_path: &str, text: &str) -> Vec<Diagnostic> {
        rules::check_manifest(rel_path, text, &self.config)
    }

    /// Walks the workspace at `root` and lints every `.rs` file and
    /// every `Cargo.toml`. Skips `target/`, VCS metadata, and lint
    /// test fixtures (which contain violations on purpose).
    pub fn run(&self, root: &Path) -> io::Result<Vec<Diagnostic>> {
        let mut diags = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for path in entries {
                let file_name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                if path.is_dir() {
                    if matches!(file_name.as_str(), "target" | ".git" | "fixtures") {
                        continue;
                    }
                    stack.push(path);
                    continue;
                }
                let rel = rel_path(root, &path);
                if file_name == "Cargo.toml" {
                    let text = fs::read_to_string(&path)?;
                    diags.extend(self.check_manifest_text(&rel, &text));
                } else if file_name.ends_with(".rs") {
                    let text = fs::read_to_string(&path)?;
                    diags.extend(self.check_source_text(&rel, &text));
                }
            }
        }
        diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        Ok(diags)
    }
}

/// Workspace-relative `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extracts every `lint:allow` / `lint:allow-file` marker from the
/// file's comments.
fn collect_allows(file: &SourceFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &file.tokens.comments {
        let mut rest = comment.text.as_str();
        while let Some(pos) = rest.find("lint:allow") {
            let after = &rest[pos + "lint:allow".len()..];
            let (file_wide, args) = match after.strip_prefix("-file(") {
                Some(a) => (true, a),
                None => match after.strip_prefix('(') {
                    Some(a) => (false, a),
                    None => {
                        rest = after;
                        continue;
                    }
                },
            };
            let Some(close) = args.find(')') else {
                rest = args;
                continue;
            };
            let rule = args[..close].trim().to_string();
            let tail = args[close + 1..]
                .trim_start()
                .trim_start_matches(':')
                .trim();
            // Walk to the end of the comment block: the covered code
            // line is the first non-comment line after it.
            let mut last_comment = comment.line;
            while file
                .lines
                .get(last_comment)
                .is_some_and(|l| l.trim_start().starts_with("//"))
            {
                last_comment += 1;
            }
            allows.push(Allow {
                rule,
                line: comment.line,
                covered: last_comment + 1,
                file_wide,
                justified: !tail.is_empty(),
            });
            rest = &args[close + 1..];
        }
    }
    allows
}

/// True when `diag` is covered by an allow for its rule on the same
/// line, on the code line its comment block precedes, or file-wide.
fn is_suppressed(diag: &Diagnostic, allows: &[Allow]) -> bool {
    allows.iter().any(|a| {
        a.rule == diag.rule && (a.file_wide || a.line == diag.line || a.covered == diag.line)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(Config::default())
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-on-fast-path): test scaffolding\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "// lint:allow(no-panic-on-fast-path): invariant documented here\n\
                   fn f() { x.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_with_multi_line_justification_covers_the_code_below() {
        let src = "fn f() {\n\
                   // lint:allow(no-panic-on-fast-path): the justification\n\
                   // continues on a second comment line before the code.\n\
                   x.unwrap();\n\
                   }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "// lint:allow(no-alloc-on-fast-path): wrong rule\n\
                   fn f() { x.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::name::NO_PANIC);
    }

    #[test]
    fn file_wide_allow_suppresses_everywhere() {
        let src = "// lint:allow-file(no-panic-on-fast-path): legacy shim, tracked in ROADMAP\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unjustified_allow_is_reported() {
        let src = "fn f() { x.unwrap() } // lint:allow(no-panic-on-fast-path)\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::name::UNJUSTIFIED_ALLOW);
    }

    #[test]
    fn rules_do_not_fire_outside_scoped_files(){
        let src = "fn f() { x.unwrap(); let v = vec![0u8; 4]; }\n";
        let diags = engine().check_source_text("crates/sim/src/engine.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
