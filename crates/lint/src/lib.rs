//! firefly-lint: in-tree static analysis for the Firefly RPC workspace.
//!
//! The paper's performance argument rests on invariants the compiler
//! cannot check: the packet fast path never allocates or panics, locks
//! are taken in one global order, and the build depends on nothing
//! outside the tree. This crate enforces them with a lightweight
//! comment- and string-aware tokenizer — no rustc internals, no
//! external parser, std only.
//!
//! Rules (see docs/LINTS.md for the full rationale):
//! - `no-panic-on-fast-path` / `no-alloc-on-fast-path` — scoped by the
//!   computed fast-path reachability set (see [`callgraph`])
//! - `lock-order` — guard-lifetime aware (see [`scope`])
//! - `lock-cycle` — cycles in the workspace lock graph ([`lockgraph`])
//! - `no-blocking-under-lock`
//! - `stale-scope` — lint.toml's fast-path snapshot vs the computed set
//! - `no-sleep-in-lib`
//! - `safety-comment`
//! - `hermetic-deps`
//! - `condvar-wait-loop` / `condvar-notify-write` — the condvar
//!   protocol, from the interprocedural dataflow pass ([`dataflow`])
//! - `atomic-publication` — release/acquire pairing for cross-thread
//!   atomics ([`dataflow`])
//! - `pool-lifecycle` — every pool alloc reaches a sink, a return, or
//!   accounted retention ([`dataflow`])
//!
//! Suppression: `// lint:allow(<rule>): <justification>` on the same
//! line or the line above, `// lint:allow-file(<rule>): <reason>` for a
//! whole file. An allow without a justification is itself reported
//! (`unjustified-allow`).

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod lockgraph;
pub mod protocol;
pub mod rules;
pub mod scope;
pub mod source;
pub mod tokenizer;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use callgraph::CallGraph;
use config::Config;
use lockgraph::{LockEdge, LockGraph};
use source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`rules::name`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Def-use witness chain (`path:line` hops) for dataflow rules:
    /// the sites that together make the finding (definition → use,
    /// write → read, wait → notify). Empty for single-site rules.
    pub witness: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One `lint:allow` site, exported in the `--json` suppression
/// inventory so CI can audit the exemption surface over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionInfo {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub file_wide: bool,
    pub justified: bool,
}

/// A parsed `lint:allow` marker.
struct Allow {
    rule: String,
    /// Line the marker itself is on.
    line: usize,
    /// Line the marker covers: its own line, plus the first code line
    /// after the comment block it belongs to (a justification may span
    /// several comment lines before reaching the code it exempts).
    covered: usize,
    file_wide: bool,
    justified: bool,
}

/// Cross-file facts accumulated while walking the workspace, consumed
/// by the workspace-level rules after every file has been seen.
#[derive(Default)]
pub struct Facts {
    /// Observed nested lock acquisitions.
    pub lock_graph: LockGraph,
    /// Fn definitions and call sites.
    pub call_graph: CallGraph,
    /// Def-use sites for the dataflow rule families.
    pub dataflow: dataflow::DataflowFacts,
    /// Packet-protocol facts for the conformance rules.
    pub protocol: protocol::ProtocolFacts,
}

impl Facts {
    /// Merges another (per-file or per-worker) accumulation into this
    /// one; all underlying structures union deterministically.
    pub fn merge(&mut self, other: Facts) {
        self.lock_graph.merge(other.lock_graph);
        self.call_graph.merge(other.call_graph);
        self.dataflow.merge(other.dataflow);
        self.protocol.merge(other.protocol);
    }
}

/// The result of a full workspace analysis: diagnostics plus the
/// computed fast-path reachability (for `--json` consumers and tests).
pub struct Analysis {
    /// All surviving diagnostics, sorted by (path, line).
    pub diagnostics: Vec<Diagnostic>,
    /// `(file, fn)` pairs reachable from the fast-path entry points.
    pub fast_path_functions: Vec<(String, String)>,
    /// Files containing at least one reachable function.
    pub fast_path_files: Vec<String>,
    /// Every recorded lock-graph edge.
    pub lock_edges: Vec<LockEdge>,
    /// Aggregated dataflow facts (condvar pairings, atomic location
    /// summaries, pool counts) for `--json` and the verify.sh
    /// static↔dynamic cross-diff.
    pub dataflow: dataflow::Summary,
    /// Every `lint:allow` marker in the workspace.
    pub suppressions: Vec<SuppressionInfo>,
    /// Protocol-conformance aggregates: the spec's transition table and
    /// allowlist (verbatim, for the verify.sh fourth gate) plus the
    /// extracted-site counts. Empty when no `protocol.toml` is loaded.
    pub protocol: protocol::Report,
    /// Wall-clock per analysis stage, microseconds, in execution order.
    /// Stage names match rule families where one stage implements one
    /// family (`locking`, `fast-path`, `dataflow`,
    /// `protocol-conformance`).
    pub timings: Vec<(String, u128)>,
}

/// The rule engine: configuration plus the workspace walker.
pub struct Engine {
    pub config: Config,
    /// The packet-protocol spec, when the root has a `protocol.toml`.
    /// Without it the protocol-conformance rules are inert.
    pub protocol: Option<protocol::ProtocolSpec>,
}

impl Engine {
    /// An engine with the given configuration and no protocol spec.
    pub fn new(config: Config) -> Engine {
        Engine {
            config,
            protocol: None,
        }
    }

    /// An engine configured from `<root>/lint.toml` and
    /// `<root>/protocol.toml` when present, compiled-in defaults (and
    /// no protocol spec) otherwise.
    pub fn for_root(root: &Path) -> Engine {
        let config = match fs::read_to_string(root.join("lint.toml")) {
            Ok(text) => Config::from_toml(&text),
            Err(_) => Config::default(),
        };
        let protocol = fs::read_to_string(root.join("protocol.toml"))
            .ok()
            .map(|text| protocol::ProtocolSpec::from_toml(&text));
        Engine {
            config,
            protocol,
        }
    }

    /// Lints one Rust source file given its workspace-relative path.
    /// Workspace-level rules (`lock-cycle`, `stale-scope`) need the
    /// whole tree and only run in [`Engine::analyze`].
    pub fn check_source_text(&self, rel_path: &str, text: &str) -> Vec<Diagnostic> {
        let mut facts = Facts::default();
        let (mut diags, allows) = self.check_one(rel_path, text, &mut facts);
        // The dataflow families evaluate over whatever this one file
        // contributed (full workspace pairing happens in `analyze`).
        let (df_diags, _) = dataflow::evaluate(&facts.dataflow, &self.config);
        diags.extend(df_diags.into_iter().filter(|d| !is_suppressed(d, &allows)));
        diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        diags
    }

    /// Per-file pass: parse, run rules (feeding `facts`), apply
    /// suppressions, report unjustified allows. Returns the surviving
    /// diagnostics and the file's allows (the workspace pass applies
    /// them to diagnostics it anchors in this file later).
    fn check_one(&self, rel_path: &str, text: &str, facts: &mut Facts) -> (Vec<Diagnostic>, Vec<Allow>) {
        let file = SourceFile::new(rel_path, text);
        let allows = collect_allows(&file);
        let mut out: Vec<Diagnostic> = rules::check_source(&file, &self.config, facts)
            .into_iter()
            .filter(|d| !is_suppressed(d, &allows))
            .collect();
        if let Some(spec) = &self.protocol {
            protocol::scan_file(&file, spec, &mut facts.protocol);
        }
        for allow in &allows {
            if !allow.justified {
                out.push(file.diagnostic(
                    rules::name::UNJUSTIFIED_ALLOW,
                    allow.line,
                    format!(
                        "`lint:allow({})` without a justification; write \
                         `// lint:allow({}): <why this site is exempt>`",
                        allow.rule, allow.rule
                    ),
                ));
            }
        }
        (out, allows)
    }

    /// Lints one `Cargo.toml` given its workspace-relative path.
    pub fn check_manifest_text(&self, rel_path: &str, text: &str) -> Vec<Diagnostic> {
        rules::check_manifest(rel_path, text, &self.config)
    }

    /// Walks the workspace at `root` and lints every `.rs` file and
    /// every `Cargo.toml`. Skips `target/`, VCS metadata, and lint
    /// test fixtures (which contain violations on purpose). Returns
    /// just the diagnostics; [`Engine::analyze`] also exposes the
    /// computed fast-path set and lock graph.
    pub fn run(&self, root: &Path) -> io::Result<Vec<Diagnostic>> {
        Ok(self.analyze(root)?.diagnostics)
    }

    /// Full two-pass analysis: the per-file rules (pass 1, which also
    /// accumulates the call graph and lock graph), then the
    /// workspace-level rules over the accumulated facts (pass 2).
    pub fn analyze(&self, root: &Path) -> io::Result<Analysis> {
        let mut diags = Vec::new();
        let mut facts = Facts::default();
        let mut timings: Vec<(String, u128)> = Vec::new();
        let mut stage_start = std::time::Instant::now();
        let mut stamp = |timings: &mut Vec<(String, u128)>, name: &str| {
            timings.push((name.to_string(), stage_start.elapsed().as_micros()));
            stage_start = std::time::Instant::now();
        };
        // Walk first (sequential, sorted): collect source texts so the
        // per-file pass can fan out across workers below.
        let mut rs_files: Vec<(String, String)> = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for path in entries {
                let file_name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                if path.is_dir() {
                    if matches!(file_name.as_str(), "target" | ".git" | "fixtures") {
                        continue;
                    }
                    stack.push(path);
                    continue;
                }
                let rel = rel_path(root, &path);
                if file_name == "Cargo.toml" {
                    let text = fs::read_to_string(&path)?;
                    diags.extend(self.check_manifest_text(&rel, &text));
                } else if file_name.ends_with(".rs") {
                    rs_files.push((rel, fs::read_to_string(&path)?));
                }
            }
        }
        stamp(&mut timings, "walk");
        // Per-file pass, parallel across workers. Each slot is owned by
        // exactly one worker; folding the slots back in file-index order
        // keeps the report (and every derived fact) deterministic
        // regardless of scheduling.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
            .clamp(1, rs_files.len().max(1));
        let chunk = rs_files.len().div_ceil(workers).max(1);
        let mut slots: Vec<Option<(Vec<Diagnostic>, Vec<Allow>, Facts)>> =
            rs_files.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (file_chunk, slot_chunk) in rs_files.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for ((rel, text), slot) in file_chunk.iter().zip(slot_chunk.iter_mut()) {
                        let mut file_facts = Facts::default();
                        let (file_diags, allows) = self.check_one(rel, text, &mut file_facts);
                        *slot = Some((file_diags, allows, file_facts));
                    }
                });
            }
        });
        // Allows per file, for suppressing workspace-pass diagnostics
        // anchored in that file.
        let mut allows_by_path: Vec<(String, Vec<Allow>)> = Vec::new();
        for ((rel, _), slot) in rs_files.iter().zip(slots) {
            let Some((file_diags, allows, file_facts)) = slot else {
                continue;
            };
            diags.extend(file_diags);
            allows_by_path.push((rel.clone(), allows));
            facts.merge(file_facts);
        }
        stamp(&mut timings, "per-file");
        let suppressed = |d: &Diagnostic| {
            allows_by_path
                .iter()
                .find(|(p, _)| *p == d.path)
                .is_some_and(|(_, allows)| is_suppressed(d, allows))
        };

        // Workspace rule: lock-cycle.
        for cycle in facts.lock_graph.cycles() {
            let d = Diagnostic {
                rule: rules::name::LOCK_CYCLE,
                path: cycle.at.path.clone(),
                line: cycle.at.line,
                message: format!(
                    "lock acquisition cycle {} — two threads interleaving these \
                     paths can deadlock; pick one order and declare it in \
                     lint.toml [lock-order]",
                    cycle.nodes.join(" → ")
                ),
                witness: Vec::new(),
            };
            if !suppressed(&d) {
                diags.push(d);
            }
        }

        stamp(&mut timings, "locking");

        // Workspace rule: stale-scope (skipped when no entry point
        // resolves, e.g. on fixture trees that configure none).
        let reachable = facts.call_graph.reachable(
            &self.config.fast_path_entry_points,
            &self.config.fast_path_stop_files,
        );
        let computed_files = CallGraph::reachable_files(&reachable);
        if facts.call_graph.has_entry(&self.config.fast_path_entry_points) {
            for file in &computed_files {
                if !Config::path_matches(file, &self.config.fast_path_files) {
                    let d = Diagnostic {
                        rule: rules::name::STALE_SCOPE,
                        path: file.clone(),
                        line: 1,
                        message: format!(
                            "`{file}` is reachable from the fast-path entry points \
                             but missing from lint.toml [fast-path].files; add it \
                             (or add a stop_files boundary)"
                        ),
                        witness: Vec::new(),
                    };
                    if !suppressed(&d) {
                        diags.push(d);
                    }
                }
            }
            let mut listed_not_reachable: Vec<&String> = self
                .config
                .fast_path_files
                .iter()
                .filter(|p| !computed_files.iter().any(|f| Config::path_matches(f, &[(*p).clone()])))
                .collect();
            listed_not_reachable.sort();
            for p in listed_not_reachable {
                diags.push(Diagnostic {
                    rule: rules::name::STALE_SCOPE,
                    path: "lint.toml".to_string(),
                    line: 1,
                    message: format!(
                        "`{p}` is listed in [fast-path].files but no function in it \
                         is reachable from the entry points; remove it or fix the \
                         entry-point list"
                    ),
                    witness: Vec::new(),
                });
            }
        }

        stamp(&mut timings, "fast-path");

        // Workspace rules: the dataflow families (condvar protocol,
        // atomic publication, pool lifecycle) evaluate over the merged
        // facts so pairings resolve across files.
        let (df_diags, df_summary) = dataflow::evaluate(&facts.dataflow, &self.config);
        for d in df_diags {
            if !suppressed(&d) {
                diags.push(d);
            }
        }
        stamp(&mut timings, "dataflow");

        // Workspace rules: protocol-conformance — the extracted packet
        // state machine diffed against protocol.toml. Inert (empty
        // report) when the root has no spec.
        let (proto_diags, proto_report) = match &self.protocol {
            Some(spec) => protocol::evaluate(&facts.protocol, spec),
            None => (Vec::new(), protocol::Report::default()),
        };
        for d in proto_diags {
            if !suppressed(&d) {
                diags.push(d);
            }
        }
        stamp(&mut timings, "protocol-conformance");

        let mut suppressions: Vec<SuppressionInfo> = allows_by_path
            .iter()
            .flat_map(|(path, allows)| {
                allows.iter().map(|a| SuppressionInfo {
                    rule: a.rule.clone(),
                    path: path.clone(),
                    line: a.line,
                    file_wide: a.file_wide,
                    justified: a.justified,
                })
            })
            .collect();
        suppressions.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));

        diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        let mut lock_edges: Vec<LockEdge> = facts.lock_graph.edges().cloned().collect();
        lock_edges.sort();
        Ok(Analysis {
            diagnostics: diags,
            fast_path_functions: reachable.into_iter().collect(),
            fast_path_files: computed_files.into_iter().collect(),
            lock_edges,
            dataflow: df_summary,
            suppressions,
            protocol: proto_report,
            timings,
        })
    }
}

/// Workspace-relative `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extracts every `lint:allow` / `lint:allow-file` marker from the
/// file's comments.
fn collect_allows(file: &SourceFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &file.tokens.comments {
        let mut rest = comment.text.as_str();
        while let Some(pos) = rest.find("lint:allow") {
            let after = &rest[pos + "lint:allow".len()..];
            let (file_wide, args) = match after.strip_prefix("-file(") {
                Some(a) => (true, a),
                None => match after.strip_prefix('(') {
                    Some(a) => (false, a),
                    None => {
                        rest = after;
                        continue;
                    }
                },
            };
            let Some(close) = args.find(')') else {
                rest = args;
                continue;
            };
            let rule = args[..close].trim().to_string();
            let tail = args[close + 1..]
                .trim_start()
                .trim_start_matches(':')
                .trim();
            // Walk to the end of the comment block: the covered code
            // line is the first non-comment line after it.
            let mut last_comment = comment.line;
            while file
                .lines
                .get(last_comment)
                .is_some_and(|l| l.trim_start().starts_with("//"))
            {
                last_comment += 1;
            }
            allows.push(Allow {
                rule,
                line: comment.line,
                covered: last_comment + 1,
                file_wide,
                justified: !tail.is_empty(),
            });
            rest = &args[close + 1..];
        }
    }
    allows
}

/// True when `diag` is covered by an allow for its rule on the same
/// line, on the code line its comment block precedes, or file-wide.
fn is_suppressed(diag: &Diagnostic, allows: &[Allow]) -> bool {
    allows.iter().any(|a| {
        a.rule == diag.rule && (a.file_wide || a.line == diag.line || a.covered == diag.line)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(Config::default())
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-on-fast-path): test scaffolding\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "// lint:allow(no-panic-on-fast-path): invariant documented here\n\
                   fn f() { x.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_with_multi_line_justification_covers_the_code_below() {
        let src = "fn f() {\n\
                   // lint:allow(no-panic-on-fast-path): the justification\n\
                   // continues on a second comment line before the code.\n\
                   x.unwrap();\n\
                   }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "// lint:allow(no-alloc-on-fast-path): wrong rule\n\
                   fn f() { x.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::name::NO_PANIC);
    }

    #[test]
    fn file_wide_allow_suppresses_everywhere() {
        let src = "// lint:allow-file(no-panic-on-fast-path): legacy shim, tracked in ROADMAP\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unjustified_allow_is_reported() {
        let src = "fn f() { x.unwrap() } // lint:allow(no-panic-on-fast-path)\n";
        let diags = engine().check_source_text("crates/core/src/client.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::name::UNJUSTIFIED_ALLOW);
    }

    #[test]
    fn rules_do_not_fire_outside_scoped_files(){
        let src = "fn f() { x.unwrap(); let v = vec![0u8; 4]; }\n";
        let diags = engine().check_source_text("crates/sim/src/engine.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
