//! Workspace call graph: fn definitions, call sites, and transitive
//! reachability from the paper's fast-path entry points.
//!
//! The fast-path rules (`no-panic-on-fast-path`, `no-alloc-on-fast-path`)
//! used to rely on a hand-maintained file list in `lint.toml`. That list
//! is now a *snapshot* of a computed set: this module extracts every
//! `fn` definition and call site from the token streams, resolves call
//! names to definitions, and walks reachability from the configured
//! entry points (Starter/Transporter/demux/Ender). The `stale-scope`
//! rule compares the snapshot against the computed set so the two can
//! never drift silently.
//!
//! Name resolution is tiered and conservative:
//!
//! 1. a definition in the **same file** wins (free helpers, methods);
//! 2. else, if every definition of the name lives in **one file**
//!    workspace-wide, that file wins;
//! 3. else, if all definitions live in **one crate**, the call fans out
//!    to every defining file in that crate (e.g. `encode`/`decode`
//!    impls spread across `crates/wire`);
//! 4. otherwise the name is ambiguous (`new`, `send`, `recv`, ...) and
//!    the edge is dropped — reachability must come from a resolvable
//!    path or the entry-point snapshot instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::scope::functions;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Call-site and definition facts extracted from one file.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `name → set of defining files`.
    defs: BTreeMap<String, BTreeSet<String>>,
    /// `(file, caller fn) → called names`.
    calls: BTreeMap<(String, String), BTreeSet<String>>,
}

/// Keywords and control-flow idents that look like calls (`if (`,
/// `matches!`-adjacent) but never name a function definition we care
/// to resolve, plus ubiquitous std/prelude method names. The latter
/// matter because resolution is name-based: `a.min(b)` or
/// `Instant::now()` would otherwise resolve to whichever workspace
/// type happens to define a `min`/`now` of its own and drag its file
/// onto the fast path. Skipping them loses only edges whose *target*
/// shares a name with a std method — and the file-level snapshot plus
/// `stale-scope` keeps such a loss from going unnoticed at review
/// time, since scope changes must be made in lint.toml explicitly.
const NON_CALLEES: &[&str] = &[
    // keywords / constructors
    "if", "match", "while", "for", "loop", "return", "fn", "let", "move", "in", "as", "else",
    "Some", "None", "Ok", "Err", "Box", "Vec", "self", "Self",
    // ubiquitous trait methods (From/Into/Clone/Default/Drop/Ord/...)
    "from", "into", "try_from", "try_into", "clone", "default", "drop", "fmt", "eq", "ne", "cmp",
    "partial_cmp", "hash", "deref", "deref_mut", "as_ref", "as_mut", "borrow", "borrow_mut",
    // ubiquitous std inherent methods
    "new", "with_capacity", "spawn", "min", "max", "clamp", "abs", "now", "elapsed", "len",
    "is_empty", "get", "get_mut", "take",
    "replace", "insert", "remove", "push", "pop", "drain", "clear", "iter", "iter_mut",
    "into_iter", "next", "map", "and_then", "filter", "find", "position", "contains",
    "starts_with", "ends_with", "split", "join", "parse", "collect", "extend", "sort", "sort_by",
    "retain", "to_string", "to_owned", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
    "ok_or", "ok_or_else", "is_some", "is_none", "is_ok", "is_err", "copy_from_slice",
];

impl CallGraph {
    /// Extracts definitions and call sites from one parsed file.
    /// Test lines are skipped: a test calling a helper must not pull
    /// the helper onto the fast path.
    pub fn add_file(&mut self, file: &SourceFile) {
        let toks = &file.tokens.tokens;
        for f in functions(toks) {
            if file.is_test_line(f.line) {
                continue;
            }
            self.defs
                .entry(f.name.clone())
                .or_default()
                .insert(file.rel_path.clone());
            let key = (file.rel_path.clone(), f.name.clone());
            let callees = self.calls.entry(key).or_default();
            for j in f.open..f.close.min(toks.len()) {
                let t = &toks[j];
                if t.kind != TokenKind::Ident
                    || file.is_test_line(t.line)
                    || toks.get(j + 1).map(|x| x.text.as_str()) != Some("(")
                    || (j >= 1 && toks[j - 1].text == "fn")
                    || NON_CALLEES.contains(&t.text.as_str())
                {
                    continue;
                }
                callees.insert(t.text.clone());
            }
        }
    }

    /// Merges another (per-file or per-worker) graph into this one.
    /// Set unions are order-insensitive, so parallel accumulation stays
    /// deterministic.
    pub fn merge(&mut self, other: CallGraph) {
        for (name, files) in other.defs {
            self.defs.entry(name).or_default().extend(files);
        }
        for (key, callees) in other.calls {
            self.calls.entry(key).or_default().extend(callees);
        }
    }

    /// The first two path components (`crates/wire`), used for the
    /// unique-crate resolution tier.
    fn crate_of(path: &str) -> String {
        path.split('/').take(2).collect::<Vec<_>>().join("/")
    }

    /// Resolves a called name from `from_file` to defining files.
    fn resolve(&self, from_file: &str, name: &str) -> Vec<String> {
        let Some(files) = self.defs.get(name) else {
            return Vec::new();
        };
        if files.contains(from_file) {
            return vec![from_file.to_string()];
        }
        if files.len() == 1 {
            return files.iter().cloned().collect();
        }
        let crates: BTreeSet<String> = files.iter().map(|f| Self::crate_of(f)).collect();
        if crates.len() == 1 {
            return files.iter().cloned().collect();
        }
        Vec::new()
    }

    /// Computes the set of `(file, fn)` pairs reachable from
    /// `entry_points` (given as `path::fn`), never descending into
    /// `stop_files` (prefix-matched, like every other path list).
    pub fn reachable(
        &self,
        entry_points: &[String],
        stop_files: &[String],
    ) -> BTreeSet<(String, String)> {
        let stopped = |path: &str| crate::config::Config::path_matches(path, stop_files);
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut work: Vec<(String, String)> = Vec::new();
        for ep in entry_points {
            let Some((path, name)) = ep.rsplit_once("::") else {
                continue;
            };
            // Entry points must actually exist; missing ones surface via
            // stale-scope (the snapshot lists a file nothing reaches).
            if self
                .calls
                .contains_key(&(path.to_string(), name.to_string()))
            {
                work.push((path.to_string(), name.to_string()));
            }
        }
        while let Some(item) = work.pop() {
            if stopped(&item.0) || !seen.insert(item.clone()) {
                continue;
            }
            let Some(callees) = self.calls.get(&item) else {
                continue;
            };
            for callee in callees {
                for file in self.resolve(&item.0, callee) {
                    if !stopped(&file) {
                        work.push((file, callee.clone()));
                    }
                }
            }
        }
        seen
    }

    /// The files containing at least one reachable function.
    pub fn reachable_files(reachable: &BTreeSet<(String, String)>) -> BTreeSet<String> {
        reachable.iter().map(|(f, _)| f.clone()).collect()
    }

    /// True when any entry point resolved — used to skip `stale-scope`
    /// on fixture trees that configure no entry points.
    pub fn has_entry(&self, entry_points: &[String]) -> bool {
        entry_points.iter().any(|ep| {
            ep.rsplit_once("::").is_some_and(|(path, name)| {
                self.calls
                    .contains_key(&(path.to_string(), name.to_string()))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (path, src) in files {
            g.add_file(&SourceFile::new(path, src));
        }
        g
    }

    #[test]
    fn same_file_resolution_wins() {
        let g = graph(&[
            ("crates/a/src/x.rs", "fn entry() { helper(); } fn helper() {}"),
            ("crates/b/src/y.rs", "fn helper() { forbidden(); } fn forbidden() {}"),
        ]);
        let r = g.reachable(&["crates/a/src/x.rs::entry".into()], &[]);
        assert!(r.contains(&("crates/a/src/x.rs".into(), "helper".into())));
        assert!(!r.iter().any(|(f, _)| f == "crates/b/src/y.rs"));
    }

    #[test]
    fn unique_file_resolution_crosses_crates() {
        let g = graph(&[
            ("crates/a/src/x.rs", "fn entry() { helper(); }"),
            ("crates/b/src/y.rs", "fn helper() { deep(); } fn deep() {}"),
        ]);
        let r = g.reachable(&["crates/a/src/x.rs::entry".into()], &[]);
        assert!(r.contains(&("crates/b/src/y.rs".into(), "helper".into())));
        assert!(r.contains(&("crates/b/src/y.rs".into(), "deep".into())));
    }

    #[test]
    fn single_crate_ambiguity_fans_out_multi_crate_stops() {
        let g = graph(&[
            ("crates/a/src/x.rs", "fn entry() { encode(); spawn(); }"),
            ("crates/w/src/m.rs", "fn encode() {}"),
            ("crates/w/src/n.rs", "fn encode() {}"),
            ("crates/p/src/q.rs", "fn spawn() {}"),
            ("crates/r/src/s.rs", "fn spawn() {}"),
        ]);
        let r = g.reachable(&["crates/a/src/x.rs::entry".into()], &[]);
        let files = CallGraph::reachable_files(&r);
        assert!(files.contains("crates/w/src/m.rs"));
        assert!(files.contains("crates/w/src/n.rs"));
        assert!(!files.contains("crates/p/src/q.rs"), "{files:?}");
        assert!(!files.contains("crates/r/src/s.rs"));
    }

    #[test]
    fn stop_files_bound_the_walk() {
        let g = graph(&[
            ("crates/a/src/x.rs", "fn entry() { marshal(); }"),
            ("crates/idl/src/m.rs", "fn marshal() { alloc_lots(); } fn alloc_lots() {}"),
        ]);
        let r = g.reachable(
            &["crates/a/src/x.rs::entry".into()],
            &["crates/idl/src".into()],
        );
        assert!(!r.iter().any(|(f, _)| f.starts_with("crates/idl")));
    }

    #[test]
    fn test_code_does_not_extend_the_fast_path() {
        let g = graph(&[(
            "crates/a/src/x.rs",
            "fn entry() {}\n#[cfg(test)]\nmod tests { fn entry() { helper(); } }\nfn helper() {}",
        )]);
        let r = g.reachable(&["crates/a/src/x.rs::entry".into()], &[]);
        assert!(!r.contains(&("crates/a/src/x.rs".into(), "helper".into())));
    }
}
