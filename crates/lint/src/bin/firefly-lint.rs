//! Workspace lint driver. Usage: `firefly-lint [workspace-root]`.
//!
//! With no argument, walks upward from the current directory to the
//! first `Cargo.toml` containing `[workspace]`. Exits 1 when any
//! diagnostic is emitted, 2 on I/O errors.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use firefly_lint::Engine;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("firefly-lint: no workspace root found (looked for [workspace] in Cargo.toml)");
                return ExitCode::from(2);
            }
        },
    };
    let engine = Engine::for_root(&root);
    match engine.run(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("firefly-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("firefly-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("firefly-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
