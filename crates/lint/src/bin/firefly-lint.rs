//! Workspace lint driver. Usage:
//! `firefly-lint [--json | --summary] [workspace-root]`.
//!
//! With no path argument, walks upward from the current directory to
//! the first `Cargo.toml` containing `[workspace]`. Exits 1 when any
//! diagnostic is emitted, 2 on I/O errors.
//!
//! `--json` prints a machine-readable report on stdout instead of the
//! human format: diagnostics (with rule family and def-use witness
//! chain), the computed fast-path reachability set, every lock-graph
//! edge, the dataflow aggregates (condvar pairings, atomic publication
//! locations, pool-lifecycle counts), and the suppression inventory.
//! Exit codes are unchanged, so tooling can both parse the report and
//! gate on it.
//!
//! `--summary` prints one line for CI logs (diagnostic count by family,
//! fast-path size, pairing counts) and exits with the same code.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use firefly_lint::{rules, Analysis, Engine};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Minimal JSON string escaping (std only): quotes, backslashes and
/// control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits a `class[index]` lock-graph node into its class and numeric
/// index, or `None` for plain class / file-namespaced nodes.
fn parse_instance(name: &str) -> Option<(&str, usize)> {
    let open = name.find('[')?;
    let inner = name.get(open + 1..name.len() - 1)?;
    if !name.ends_with(']') || inner.is_empty() {
        return None;
    }
    Some((&name[..open], inner.parse().ok()?))
}

/// Collapses one instance-level edge to class level: a
/// `shard[2] -> shard[3]` nesting becomes `shard -> shard` annotated
/// `ascending` (`descending` marks an index-order violation); indices
/// are stripped from cross-class endpoints. Mirrors the collapse
/// firefly-check applies to its observed edges, so the two JSON
/// reports diff directly in scripts/verify.sh.
fn collapse_edge(from: &str, to: &str) -> (String, String, Option<&'static str>) {
    match (parse_instance(from), parse_instance(to)) {
        (Some((fc, fi)), Some((tc, ti))) if fc == tc => {
            let ordering = if fi < ti { "ascending" } else { "descending" };
            (fc.to_string(), tc.to_string(), Some(ordering))
        }
        (fp, tp) => {
            let strip = |p: Option<(&str, usize)>, raw: &str| {
                p.map_or_else(|| raw.to_string(), |(c, _)| c.to_string())
            };
            (strip(fp, from), strip(tp, to), None)
        }
    }
}

/// Renders a list of strings as a JSON array of strings.
fn json_strings(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|w| format!("\"{}\"", esc(w))).collect();
    format!("[{}]", quoted.join(", "))
}

fn print_json(analysis: &Analysis, config: &firefly_lint::config::Config) {
    let classes: Vec<String> = config.lock_order.iter().map(|c| c.name.clone()).collect();
    let parametric: Vec<String> = config
        .lock_order
        .iter()
        .filter(|c| c.parametric)
        .map(|c| c.name.clone())
        .collect();
    // schema_version gates the cross-diff: scripts/cross_diff.py
    // refuses to compare reports whose schema it does not know.
    let mut s = String::from("{\n  \"schema_version\": 1,\n  \"diagnostics\": [");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"family\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"witness\": {}, \"message\": \"{}\"}}",
            esc(d.rule),
            esc(rules::family(d.rule)),
            esc(&d.path),
            d.line,
            json_strings(&d.witness),
            esc(&d.message)
        ));
    }
    s.push_str("\n  ],\n  \"fast_path\": {\n    \"files\": [");
    for (i, f) in analysis.fast_path_files.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(f)));
    }
    s.push_str("\n    ],\n    \"functions\": [");
    for (i, (file, name)) in analysis.fast_path_functions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}::{}\"", esc(file), esc(name)));
    }
    // The configured class names in rank order, so consumers (the
    // firefly-check static-vs-dynamic differ) can tell classified edge
    // endpoints from raw `path::receiver` ones and validate rank order.
    s.push_str("\n    ]\n  },\n  \"lock_graph\": {\n    \"classes\": [");
    for (i, c) in classes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(c)));
    }
    // Parametric class names: their instance edges below are collapsed
    // to class self-edges carrying an index-ordering annotation.
    s.push_str("\n    ],\n    \"parametric\": [");
    for (i, c) in parametric.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(c)));
    }
    s.push_str("\n    ],\n    \"edges\": [");
    for (i, e) in analysis.lock_edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (from, to, ordering) = collapse_edge(&e.from, &e.to);
        s.push_str(&format!(
            "\n      {{\"from\": \"{}\", \"to\": \"{}\", ",
            esc(&from),
            esc(&to),
        ));
        if let Some(ord) = ordering {
            s.push_str(&format!("\"ordering\": \"{ord}\", "));
        }
        s.push_str(&format!("\"path\": \"{}\", \"line\": {}}}", esc(&e.path), e.line));
    }
    // Dataflow aggregates: condvar pairings observed at wait sites,
    // per-location atomic publication summaries (with the allowlist and
    // the dynamic-label map for the verify.sh cross-diff), and the
    // pool-lifecycle counts.
    s.push_str("\n    ]\n  },\n  \"condvar\": {\n    \"pairs\": [");
    for (i, (cond, mutexes)) in analysis.dataflow.condvar_pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"cond\": \"{}\", \"mutexes\": {}}}",
            esc(cond),
            json_strings(mutexes)
        ));
    }
    s.push_str(&format!(
        "\n    ],\n    \"waits\": {},\n    \"notifies\": {}\n  }},",
        analysis.dataflow.wait_sites, analysis.dataflow.notify_sites
    ));
    s.push_str("\n  \"atomic_publication\": {\n    \"allow_relaxed\": ");
    s.push_str(&json_strings(&config.allow_relaxed));
    s.push_str(",\n    \"label_map\": {");
    for (i, (label, locations)) in config.publication_labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      \"{}\": {}",
            esc(label),
            json_strings(locations)
        ));
    }
    s.push_str("\n    },\n    \"locations\": [");
    for (i, l) in analysis.dataflow.locations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"name\": \"{}\", \"releasing_writes\": {}, \"acquiring_reads\": {}, \
             \"relaxed_loads\": {}, \"relaxed_writes\": {}, \"paired\": {}, \
             \"allowlisted\": {}}}",
            esc(&l.name),
            l.releasing_writes,
            l.acquiring_reads,
            l.relaxed_loads,
            l.relaxed_writes,
            l.paired,
            l.allowlisted
        ));
    }
    s.push_str(&format!(
        "\n    ]\n  }},\n  \"pool_lifecycle\": {{\"buffer_defs\": {}, \"violations\": {}}},",
        analysis.dataflow.buffer_defs, analysis.dataflow.buffer_violations
    ));
    // The protocol spec as the engine loaded it: the legal transition
    // table and coverage allowlist verbatim (scripts/cross_diff.py's
    // fourth gate diffs them against firefly-check's observed
    // transitions) plus the extracted-site counts.
    s.push_str("\n  \"protocol\": {\n    \"types\": ");
    s.push_str(&json_strings(&analysis.protocol.types));
    s.push_str(",\n    \"transitions\": [");
    for (i, t) in analysis.protocol.transitions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(t)));
    }
    s.push_str("\n    ],\n    \"coverage_allowlist\": ");
    s.push_str(&json_strings(&analysis.protocol.coverage_allowlist));
    s.push_str(&format!(
        ",\n    \"construction_sites\": {}, \"dispatch_sites\": {}, \
         \"flag_read_sites\": {}, \"ack_sites\": {}\n  }},",
        analysis.protocol.construction_sites,
        analysis.protocol.dispatch_sites,
        analysis.protocol.flag_read_sites,
        analysis.protocol.ack_sites
    ));
    s.push_str("\n  \"timings_us\": {");
    for (i, (stage, us)) in analysis.timings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\": {}", esc(stage), us));
    }
    s.push_str("\n  },");
    s.push_str("\n  \"suppressions\": [");
    for (i, a) in analysis.suppressions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"file_wide\": {}, \
             \"justified\": {}}}",
            esc(&a.rule),
            esc(&a.path),
            a.line,
            a.file_wide,
            a.justified
        ));
    }
    s.push_str("\n  ]\n}");
    println!("{s}");
}

/// The one-line CI summary: diagnostic count by family plus the sizes
/// of the computed sets.
fn print_summary(analysis: &Analysis) {
    let mut by_family: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for d in &analysis.diagnostics {
        *by_family.entry(rules::family(d.rule)).or_default() += 1;
    }
    let family_part = if by_family.is_empty() {
        "clean".to_string()
    } else {
        by_family
            .iter()
            .map(|(f, n)| format!("{f}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let timing_part = analysis
        .timings
        .iter()
        .map(|(stage, us)| format!("{stage}:{us}us"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "firefly-lint: {} diagnostic(s) [{}] | fast-path {} fns/{} files | \
         lock edges {} | condvar pairs {} | atomic locations {} | \
         pool defs {} | protocol transitions {} | suppressions {} | \
         timings {timing_part}",
        analysis.diagnostics.len(),
        family_part,
        analysis.fast_path_functions.len(),
        analysis.fast_path_files.len(),
        analysis.lock_edges.len(),
        analysis.dataflow.condvar_pairs.len(),
        analysis.dataflow.locations.len(),
        analysis.dataflow.buffer_defs,
        analysis.protocol.transitions.len(),
        analysis.suppressions.len()
    );
}

fn main() -> ExitCode {
    let mut json = false;
    let mut summary = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if arg == "--summary" {
            summary = true;
        } else {
            root_arg = Some(PathBuf::from(arg));
        }
    }
    let root = match root_arg {
        Some(root) => root,
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("firefly-lint: no workspace root found (looked for [workspace] in Cargo.toml)");
                return ExitCode::from(2);
            }
        },
    };
    let engine = Engine::for_root(&root);
    match engine.analyze(&root) {
        Ok(analysis) => {
            if json {
                print_json(&analysis, &engine.config);
            } else if summary {
                print_summary(&analysis);
            } else if analysis.diagnostics.is_empty() {
                println!("firefly-lint: clean ({})", root.display());
            } else {
                for d in &analysis.diagnostics {
                    eprintln!("{d}");
                }
                eprintln!("firefly-lint: {} violation(s)", analysis.diagnostics.len());
            }
            if analysis.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("firefly-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
