//! Workspace lint driver. Usage: `firefly-lint [--json] [workspace-root]`.
//!
//! With no path argument, walks upward from the current directory to
//! the first `Cargo.toml` containing `[workspace]`. Exits 1 when any
//! diagnostic is emitted, 2 on I/O errors.
//!
//! `--json` prints a machine-readable report on stdout instead of the
//! human format: diagnostics, the computed fast-path reachability set,
//! and every lock-graph edge. Exit codes are unchanged, so tooling can
//! both parse the report and gate on it.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use firefly_lint::{Analysis, Engine};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Minimal JSON string escaping (std only): quotes, backslashes and
/// control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits a `class[index]` lock-graph node into its class and numeric
/// index, or `None` for plain class / file-namespaced nodes.
fn parse_instance(name: &str) -> Option<(&str, usize)> {
    let open = name.find('[')?;
    let inner = name.get(open + 1..name.len() - 1)?;
    if !name.ends_with(']') || inner.is_empty() {
        return None;
    }
    Some((&name[..open], inner.parse().ok()?))
}

/// Collapses one instance-level edge to class level: a
/// `shard[2] -> shard[3]` nesting becomes `shard -> shard` annotated
/// `ascending` (`descending` marks an index-order violation); indices
/// are stripped from cross-class endpoints. Mirrors the collapse
/// firefly-check applies to its observed edges, so the two JSON
/// reports diff directly in scripts/verify.sh.
fn collapse_edge(from: &str, to: &str) -> (String, String, Option<&'static str>) {
    match (parse_instance(from), parse_instance(to)) {
        (Some((fc, fi)), Some((tc, ti))) if fc == tc => {
            let ordering = if fi < ti { "ascending" } else { "descending" };
            (fc.to_string(), tc.to_string(), Some(ordering))
        }
        (fp, tp) => {
            let strip = |p: Option<(&str, usize)>, raw: &str| {
                p.map_or_else(|| raw.to_string(), |(c, _)| c.to_string())
            };
            (strip(fp, from), strip(tp, to), None)
        }
    }
}

fn print_json(analysis: &Analysis, classes: &[String], parametric: &[String]) {
    let mut s = String::from("{\n  \"diagnostics\": [");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(d.rule),
            esc(&d.path),
            d.line,
            esc(&d.message)
        ));
    }
    s.push_str("\n  ],\n  \"fast_path\": {\n    \"files\": [");
    for (i, f) in analysis.fast_path_files.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(f)));
    }
    s.push_str("\n    ],\n    \"functions\": [");
    for (i, (file, name)) in analysis.fast_path_functions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}::{}\"", esc(file), esc(name)));
    }
    // The configured class names in rank order, so consumers (the
    // firefly-check static-vs-dynamic differ) can tell classified edge
    // endpoints from raw `path::receiver` ones and validate rank order.
    s.push_str("\n    ]\n  },\n  \"lock_graph\": {\n    \"classes\": [");
    for (i, c) in classes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(c)));
    }
    // Parametric class names: their instance edges below are collapsed
    // to class self-edges carrying an index-ordering annotation.
    s.push_str("\n    ],\n    \"parametric\": [");
    for (i, c) in parametric.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n      \"{}\"", esc(c)));
    }
    s.push_str("\n    ],\n    \"edges\": [");
    for (i, e) in analysis.lock_edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (from, to, ordering) = collapse_edge(&e.from, &e.to);
        s.push_str(&format!(
            "\n      {{\"from\": \"{}\", \"to\": \"{}\", ",
            esc(&from),
            esc(&to),
        ));
        if let Some(ord) = ordering {
            s.push_str(&format!("\"ordering\": \"{ord}\", "));
        }
        s.push_str(&format!("\"path\": \"{}\", \"line\": {}}}", esc(&e.path), e.line));
    }
    s.push_str("\n    ]\n  }\n}");
    println!("{s}");
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root_arg = Some(PathBuf::from(arg));
        }
    }
    let root = match root_arg {
        Some(root) => root,
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("firefly-lint: no workspace root found (looked for [workspace] in Cargo.toml)");
                return ExitCode::from(2);
            }
        },
    };
    let engine = Engine::for_root(&root);
    match engine.analyze(&root) {
        Ok(analysis) => {
            if json {
                let classes: Vec<String> = engine
                    .config
                    .lock_order
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                let parametric: Vec<String> = engine
                    .config
                    .lock_order
                    .iter()
                    .filter(|c| c.parametric)
                    .map(|c| c.name.clone())
                    .collect();
                print_json(&analysis, &classes, &parametric);
            } else if analysis.diagnostics.is_empty() {
                println!("firefly-lint: clean ({})", root.display());
            } else {
                for d in &analysis.diagnostics {
                    eprintln!("{d}");
                }
                eprintln!("firefly-lint: {} violation(s)", analysis.diagnostics.len());
            }
            if analysis.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("firefly-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
