//! Workspace lock graph: every observed "guard A held while acquiring
//! B" pair, and cycle detection over it.
//!
//! `lock-order` checks nested acquisitions against the declared global
//! order, but only for receivers `lint.toml` classifies. The lock graph
//! is broader: *every* nested pair is an edge, including unclassified
//! receivers, and any cycle in the resulting directed graph is real
//! deadlock potential (two threads can interleave the two paths) even
//! if no single function inverts a declared order. That is the
//! `lock-cycle` diagnostic.
//!
//! Node identity: classified receivers map to their global class name
//! (`calltable`, `pool`, ...) because the class *is* the lock's
//! identity across files. Unclassified receivers are namespaced by file
//! (`crates/core/src/transport.rs::rng`) so two unrelated private locks
//! that happen to share a field name never alias. Self-edges are
//! ignored: nesting two locks of one class (the call-table's
//! `activities → state` hierarchy) is ordered by the data structure,
//! not the global order.

use std::collections::{BTreeMap, BTreeSet};

/// One observed nested acquisition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Node held (class name or `file::receiver`).
    pub from: String,
    /// Node acquired while `from` was held.
    pub to: String,
    /// File recording the edge.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// The workspace-wide graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeSet<LockEdge>,
}

/// One detected cycle: the node sequence (first node repeated last) and
/// the edge chosen to anchor the diagnostic.
#[derive(Debug)]
pub struct Cycle {
    pub nodes: Vec<String>,
    pub at: LockEdge,
}

impl LockGraph {
    /// Records one nested pair. Self-edges are dropped (see module doc).
    pub fn record(&mut self, from: String, to: String, path: &str, line: usize) {
        if from == to {
            return;
        }
        self.edges.insert(LockEdge {
            from,
            to,
            path: path.to_string(),
            line,
        });
    }

    /// All recorded edges, deterministically ordered.
    pub fn edges(&self) -> impl Iterator<Item = &LockEdge> {
        self.edges.iter()
    }

    /// Merges another graph's edges into this one (set union).
    pub fn merge(&mut self, other: LockGraph) {
        self.edges.extend(other.edges);
    }

    /// Finds every elementary cycle's node set via strongly connected
    /// components (a component of more than one node necessarily
    /// contains a cycle; self-edges were never recorded). One cycle is
    /// reported per component, anchored at its lexicographically first
    /// edge so the diagnostic is stable.
    pub fn cycles(&self) -> Vec<Cycle> {
        let nodes: BTreeSet<&str> = self
            .edges
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let names: Vec<&str> = nodes.into_iter().collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for e in &self.edges {
            adj[index[e.from.as_str()]].push(index[e.to.as_str()]);
        }
        let sccs = tarjan(&adj);
        let mut out = Vec::new();
        for scc in sccs {
            if scc.len() < 2 {
                continue;
            }
            let members: BTreeSet<usize> = scc.iter().copied().collect();
            let at = self
                .edges
                .iter()
                .find(|e| {
                    members.contains(&index[e.from.as_str()])
                        && members.contains(&index[e.to.as_str()])
                })
                .cloned();
            let Some(at) = at else { continue };
            // Reconstruct one concrete cycle starting from the anchor
            // edge: follow in-component edges until we return.
            let mut path = vec![at.from.clone(), at.to.clone()];
            let mut cur = index[at.to.as_str()];
            let start = index[at.from.as_str()];
            let mut hops = 0;
            while cur != start && hops <= members.len() {
                let next = adj[cur]
                    .iter()
                    .copied()
                    .find(|n| members.contains(n))
                    .unwrap_or(start);
                path.push(names[next].to_string());
                cur = next;
                hops += 1;
            }
            if path.last().map(String::as_str) != Some(names[start]) {
                path.push(names[start].to_string());
            }
            out.push(Cycle { nodes: path, at });
        }
        out
    }
}

/// Tarjan's strongly-connected-components algorithm, iterative so deep
/// graphs cannot overflow the stack.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_declared_order_has_no_cycles() {
        let mut g = LockGraph::default();
        g.record("calltable".into(), "pool".into(), "a.rs", 1);
        g.record("pool".into(), "stats".into(), "b.rs", 2);
        g.record("stats".into(), "trace".into(), "c.rs", 3);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_node_cycle_is_detected_once() {
        let mut g = LockGraph::default();
        g.record("a.rs::x".into(), "a.rs::y".into(), "a.rs", 3);
        g.record("a.rs::y".into(), "a.rs::x".into(), "a.rs", 9);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.first(), cycles[0].nodes.last());
        assert_eq!(cycles[0].nodes.len(), 3);
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = LockGraph::default();
        g.record("calltable".into(), "calltable".into(), "a.rs", 1);
        assert_eq!(g.edges().count(), 0);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn three_node_cycle_via_distinct_files() {
        let mut g = LockGraph::default();
        g.record("a".into(), "b".into(), "x.rs", 1);
        g.record("b".into(), "c".into(), "y.rs", 2);
        g.record("c".into(), "a".into(), "z.rs", 3);
        g.record("a".into(), "d".into(), "x.rs", 4); // dangling non-cycle edge
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.len(), 4);
    }
}
