//! The lint rules. Each rule walks a tokenized source file (or a
//! manifest) and yields [`Diagnostic`]s; suppression filtering happens
//! in the engine, not here.

use crate::config::Config;
use crate::scope::{functions, walk_guards, GuardEvent, LiveGuard};
use crate::source::SourceFile;
use crate::Diagnostic;
use crate::Facts;
use crate::tokenizer::TokenKind;

/// Rule name constants, shared by rules, suppressions and tests.
pub mod name {
    /// `unwrap`/`expect`/`panic!` on the fast path.
    pub const NO_PANIC: &str = "no-panic-on-fast-path";
    /// Heap allocation on the fast path.
    pub const NO_ALLOC: &str = "no-alloc-on-fast-path";
    /// Overlapping guards acquired against the global order.
    pub const LOCK_ORDER: &str = "lock-order";
    /// A cycle in the workspace lock graph (deadlock potential).
    pub const LOCK_CYCLE: &str = "lock-cycle";
    /// A call that can block while a lock guard is live.
    pub const NO_BLOCKING: &str = "no-blocking-under-lock";
    /// lint.toml's fast-path snapshot disagrees with the computed
    /// reachability set.
    pub const STALE_SCOPE: &str = "stale-scope";
    /// `thread::sleep` in library code.
    pub const NO_SLEEP: &str = "no-sleep-in-lib";
    /// `unsafe` without a `// SAFETY:` comment.
    pub const SAFETY_COMMENT: &str = "safety-comment";
    /// Non-path dependencies in a manifest.
    pub const HERMETIC_DEPS: &str = "hermetic-deps";
    /// A `lint:allow` with no justification.
    pub const UNJUSTIFIED_ALLOW: &str = "unjustified-allow";
    /// A `Condvar::wait` outside a predicate loop.
    pub const CONDVAR_WAIT_LOOP: &str = "condvar-wait-loop";
    /// A notify not downstream of a touch of the waiters' mutex.
    pub const CONDVAR_NOTIFY: &str = "condvar-notify-write";
    /// `Relaxed` where release/acquire pairing is required.
    pub const ATOMIC_PUBLICATION: &str = "atomic-publication";
    /// A pool buffer that escapes the alloc→recycle/return lifecycle.
    pub const POOL_LIFECYCLE: &str = "pool-lifecycle";
    /// A packet type declared in protocol.toml with no construction
    /// site or no dispatch arm in the scanned sources.
    pub const PROTOCOL_UNHANDLED_TYPE: &str = "protocol-unhandled-type";
    /// A `match` over a packet type that neither names every declared
    /// type nor carries a `_` wildcard.
    pub const PROTOCOL_MISSING_ARM: &str = "protocol-missing-arm";
    /// A flag set but undeclared in [flag-reads] (dead on the wire), or
    /// declared but never read by the type's handlers.
    pub const PROTOCOL_UNREAD_FLAG: &str = "protocol-unread-flag";
    /// An `ack_for` outside the allowed callers, or a gutted/missing
    /// retransmission function.
    pub const PROTOCOL_ACK_DISCIPLINE: &str = "protocol-ack-discipline";
}

/// The rule family a diagnostic belongs to, for the `--json` report's
/// machine consumers (verify.sh groups and diffs by family).
pub fn family(rule: &str) -> &'static str {
    match rule {
        name::CONDVAR_WAIT_LOOP | name::CONDVAR_NOTIFY => "condvar-protocol",
        name::ATOMIC_PUBLICATION => "atomic-publication",
        name::POOL_LIFECYCLE => "pool-lifecycle",
        name::LOCK_ORDER | name::LOCK_CYCLE | name::NO_BLOCKING => "locking",
        name::NO_PANIC | name::NO_ALLOC | name::STALE_SCOPE => "fast-path",
        name::PROTOCOL_UNHANDLED_TYPE
        | name::PROTOCOL_MISSING_ARM
        | name::PROTOCOL_UNREAD_FLAG
        | name::PROTOCOL_ACK_DISCIPLINE => "protocol-conformance",
        _ => "hygiene",
    }
}

/// True for files that are test-only by location: integration tests,
/// benches, and examples never sit on the fast path.
pub(crate) fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/benches/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/examples/")
}

/// Runs every source-level rule over one file, contributing call-graph
/// and lock-graph facts to `facts` for the workspace-level rules.
pub fn check_source(file: &SourceFile, config: &Config, facts: &mut Facts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if is_test_path(&file.rel_path) {
        return out;
    }
    facts.call_graph.add_file(file);
    if Config::path_matches(&file.rel_path, &config.fast_path_files) {
        no_panic(file, &mut out);
        no_alloc(file, config, &mut out);
    }
    guard_rules(file, config, facts, &mut out);
    no_sleep(file, &mut out);
    safety_comment(file, &mut out);
    crate::dataflow::scan_file(file, config, &mut facts.dataflow);
    out
}

/// `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!` are banned in fast-path modules (tests exempt).
///
/// Paper rationale: the fast path is the §3.1.3 interrupt-routine path;
/// a panic there takes down the demultiplexer and every outstanding
/// call with it. Failures must surface as `RpcError` so the protocol's
/// retransmission machinery (§5) can handle them.
fn no_panic(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
            continue;
        }
        let followed_by = |s: &str| toks.get(i + 1).is_some_and(|t| t.text == s);
        let preceded_by_dot = i > 0 && toks[i - 1].text == ".";
        let hit = match tok.text.as_str() {
            "unwrap" | "expect" => preceded_by_dot && followed_by("("),
            "panic" | "unreachable" | "todo" | "unimplemented" => followed_by("!"),
            _ => false,
        };
        if hit {
            out.push(file.diagnostic(
                name::NO_PANIC,
                tok.line,
                format!(
                    "`{}` can panic on the fast path; return an RpcError instead",
                    tok.text
                ),
            ));
        }
    }
}

/// `Vec::new`, `vec!`, `to_vec()`, `.clone()`, `format!`, `Box::new`
/// are banned in fast-path modules (tests exempt; lines constructing
/// errors exempt — error paths are off the fast path by definition).
///
/// Paper rationale: §3.2 — packet buffers live in a shared pool so the
/// fast path copies and allocates nothing ("This strategy eliminates
/// the need for extra address mapping operations or copying when doing
/// RPC"). Tables VI–VII account for every microsecond; a stray
/// allocation would not show up in the account but would show up in
/// the latency.
fn no_alloc(file: &SourceFile, config: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
            continue;
        }
        if file.line_has_any(tok.line, &config.error_markers) {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).is_some_and(|t| t.text == s);
        let preceded_by_dot = i > 0 && toks[i - 1].text == ".";
        let path_call = |head: &str| {
            // `head::name` — two ':' puncts between the idents.
            i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == head
        };
        let construct = match tok.text.as_str() {
            "new" if path_call("Vec") => Some("Vec::new"),
            "new" if path_call("Box") => Some("Box::new"),
            "to_vec" if preceded_by_dot && next_is(1, "(") => Some(".to_vec()"),
            "clone" if preceded_by_dot && next_is(1, "(") => Some(".clone()"),
            "format" if next_is(1, "!") => Some("format!"),
            "vec" if next_is(1, "!") => Some("vec!"),
            _ => None,
        };
        if let Some(what) = construct {
            out.push(file.diagnostic(
                name::NO_ALLOC,
                tok.line,
                format!(
                    "`{what}` allocates on the fast path; use the shared buffer pool \
                     (zero-copy) instead"
                ),
            ));
        }
    }
}

/// The flow-aware guard rules, one shared walk per function body:
///
/// * `lock-order` — fires only when a guard of a later-ranked class is
///   provably **live** while an earlier-ranked class is acquired.
///   Sequential (drop-then-relock) acquisitions no longer fire.
/// * lock-graph edges — every live-guard→new-acquisition pair feeds the
///   workspace lock graph, whose cycles become `lock-cycle`
///   diagnostics in the engine's workspace pass.
/// * `no-blocking-under-lock` — no call that can block the thread
///   (`recv`, `wait`, `park`, `test_sleep`, transport sends, `join`)
///   while any guard is live. Condvar waits are exempt for the guard
///   they atomically release (its name appears in the argument list)
///   but still fire for any *other* live guard.
///
/// Paper rationale: the §3.1.3 interrupt routine takes the call-table
/// lock and the buffer-pool lock back to back on every packet; an
/// inversion anywhere else in the runtime deadlocks the demultiplexer,
/// and blocking while holding protocol state stalls every call on the
/// endpoint (the paper's demux runs in the receive interrupt).
fn guard_rules(file: &SourceFile, config: &Config, facts: &mut Facts, out: &mut Vec<Diagnostic>) {
    let in_lock_scope = Config::path_matches(&file.rel_path, &config.lock_files);
    let in_blocking_scope = Config::path_matches(&file.rel_path, &config.blocking_files);
    if !in_lock_scope && !in_blocking_scope {
        return;
    }
    let toks = &file.tokens.tokens;
    let rank_of = |ident: &str| -> Option<(usize, &crate::config::LockClass)> {
        config
            .lock_order
            .iter()
            .enumerate()
            .find(|(_, class)| class.receivers.iter().any(|r| r == ident))
    };
    // Constant index of a guard on a parametric class, if any.
    let const_index = |g: &LiveGuard| -> Option<usize> {
        let (_, class) = rank_of(&g.receiver)?;
        if !class.parametric {
            return None;
        }
        g.index.as_ref()?.parse().ok()
    };
    // Lock-graph node: the global class name for classified receivers
    // (`class[N]` for a parametric class at a constant index),
    // file-namespaced otherwise so unrelated private locks never alias.
    let node_of = |g: &LiveGuard| -> String {
        match rank_of(&g.receiver) {
            Some((_, class)) => match const_index(g) {
                Some(idx) => format!("{}[{idx}]", class.name),
                None => class.name.clone(),
            },
            None => format!("{}::{}", file.rel_path, g.receiver),
        }
    };
    let is_blocking = |callee: &str, receiver: Option<&str>| -> bool {
        if callee == "send" {
            // Only transport/socket sends block; channel sends are
            // unbounded by design and never do.
            return matches!(receiver, Some("transport" | "socket"));
        }
        config.blocking_calls.iter().any(|b| b == callee)
    };
    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in functions(toks) {
        walk_guards(
            toks,
            f.open,
            f.close,
            &|line| file.is_test_line(line),
            &is_blocking,
            &mut |ev| match ev {
                GuardEvent::Acquire { guard, live } => {
                    if !in_lock_scope {
                        return;
                    }
                    let new_node = node_of(guard);
                    for held in live {
                        facts.lock_graph.record(
                            node_of(held),
                            new_node.clone(),
                            &file.rel_path,
                            guard.line,
                        );
                    }
                    let Some((rank, class)) = rank_of(&guard.receiver) else {
                        return;
                    };
                    let class = class.name.as_str();
                    if let Some((held, held_class)) = live
                        .iter()
                        .filter_map(|g| rank_of(&g.receiver).map(|(r, c)| (g, (r, c.name.as_str()))))
                        .filter(|(_, (r, _))| *r > rank)
                        .map(|(g, (_, c))| (g, c))
                        .next_back()
                    {
                        let order: Vec<&str> =
                            config.lock_order.iter().map(|c| c.name.as_str()).collect();
                        diags.push(file.diagnostic(
                            name::LOCK_ORDER,
                            guard.line,
                            format!(
                                "`{class}` lock acquired while a `{held_class}` guard \
                                 (line {}) is still held; the global order is {}",
                                held.line,
                                order.join(" → ")
                            ),
                        ));
                    }
                    // Parametric same-class discipline: instances must
                    // be taken in strictly ascending index order.
                    if let Some(idx) = const_index(guard) {
                        if let Some((held, held_idx)) = live
                            .iter()
                            .filter(|g| rank_of(&g.receiver).map(|(r, _)| r) == Some(rank))
                            .filter_map(|g| const_index(g).map(|h| (g, h)))
                            .filter(|(_, h)| idx <= *h)
                            .next_back()
                        {
                            diags.push(file.diagnostic(
                                name::LOCK_ORDER,
                                guard.line,
                                format!(
                                    "`{class}[{idx}]` acquired while `{class}[{held_idx}]` \
                                     (line {}) is still held; parametric `{class}` locks \
                                     must be acquired in ascending index order",
                                    held.line
                                ),
                            ));
                        }
                    }
                }
                GuardEvent::Blocking {
                    callee,
                    line,
                    args,
                    live,
                } => {
                    if !in_blocking_scope || live.is_empty() {
                        return;
                    }
                    // A condvar wait atomically releases the guard it is
                    // handed; find that guard among the argument tokens.
                    let released: Option<&LiveGuard> =
                        if matches!(callee, "wait" | "wait_until" | "wait_timeout") {
                            toks[args.0..args.1.min(toks.len())]
                                .iter()
                                .filter(|t| t.kind == TokenKind::Ident)
                                .find_map(|t| {
                                    live.iter().find(|g| g.name.as_deref() == Some(&t.text))
                                })
                        } else {
                            None
                        };
                    let still_held: Vec<&LiveGuard> = live
                        .iter()
                        .filter(|g| !released.is_some_and(|r| std::ptr::eq(*g, r)))
                        .collect();
                    if let Some(held) = still_held.first() {
                        diags.push(file.diagnostic(
                            name::NO_BLOCKING,
                            line,
                            format!(
                                "`{callee}` can block while the `{}` guard (line {}) is \
                                 held; drop the guard before blocking",
                                held.receiver, held.line
                            ),
                        ));
                    }
                }
            },
        );
    }
    out.append(&mut diags);
}

/// `thread::sleep` is banned in library code (tests exempt). Timing
/// belongs to the retransmission machinery, which computes deadlines
/// from the endpoint config — a sleep anywhere else either hides a
/// missing condition variable or adds unaccounted latency.
fn no_sleep(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident
            || tok.text != "sleep"
            || file.is_test_line(tok.line)
            || !toks.get(i + 1).is_some_and(|t| t.text == "(")
        {
            continue;
        }
        // Require a `thread::sleep` or `thread.sleep`-shaped call so a
        // local method merely named `sleep` can be introduced
        // deliberately without tripping the rule.
        let qualified = i >= 3
            && toks[i - 3].text == "thread"
            && toks[i - 2].text == ":"
            && toks[i - 1].text == ":";
        if qualified {
            out.push(file.diagnostic(
                name::NO_SLEEP,
                tok.line,
                "`thread::sleep` in library code adds unaccounted latency; \
                 wait on a condition variable with a deadline instead"
                    .to_string(),
            ));
        }
    }
}

/// Every `unsafe` keyword needs a `// SAFETY:` comment on one of the
/// three preceding lines (tests exempt). Crates with no unsafe at all
/// should declare `#![forbid(unsafe_code)]` instead — see DESIGN.md.
fn safety_comment(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for tok in &file.tokens.tokens {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" || file.is_test_line(tok.line) {
            continue;
        }
        let documented = (tok.line.saturating_sub(3)..=tok.line)
            .any(|l| file.comment_on(l).is_some_and(|c| c.contains("SAFETY:")));
        if !documented {
            out.push(file.diagnostic(
                name::SAFETY_COMMENT,
                tok.line,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string(),
            ));
        }
    }
}

/// Every dependency in every manifest must be an in-tree path (directly
/// or via `workspace = true`), and the crates this repo replaced with
/// in-tree equivalents must never come back. Subsumes the grep in
/// `tests/hermetic.rs`: the build stays reproducible from a clean
/// checkout with an empty cargo registry.
pub fn check_manifest(rel_path: &str, text: &str, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !section.contains("dependencies") {
            continue;
        }
        let Some((name_part, spec)) = line.split_once('=') else {
            continue;
        };
        let mut dep = name_part.trim().trim_matches('"').to_string();
        let mut spec = spec.trim().to_string();
        if let Some(bare) = dep.strip_suffix(".workspace") {
            dep = bare.to_string();
            spec = format!("workspace = {spec}");
        }
        let diag = |msg: String| Diagnostic {
            rule: name::HERMETIC_DEPS,
            path: rel_path.to_string(),
            line: line_no,
            message: msg,
            witness: Vec::new(),
        };
        if config.banned_deps.iter().any(|b| b == &dep) {
            out.push(diag(format!(
                "dependency `{dep}` was replaced by an in-tree crate and is banned"
            )));
            continue;
        }
        let workspace_ref = spec.contains("workspace = true");
        let path_only = spec.contains("path =")
            && !spec.contains("version =")
            && !spec.contains("git =")
            && !spec.contains("registry =");
        if !(workspace_ref || path_only) {
            out.push(diag(format!(
                "[{section}] `{dep}` is not a pure path dependency: {spec}"
            )));
        } else if section == "workspace.dependencies" && !spec.contains("crates/") {
            out.push(diag(format!(
                "workspace dependency `{dep}` must point into crates/: {spec}"
            )));
        }
    }
    out
}
