//! A parsed source file: raw lines, tokens, comments, and a
//! line-granular mask of test regions (rules exempt test code).

use crate::tokenizer::{tokenize, Token, TokenKind, Tokenized};
use crate::Diagnostic;

/// One source file prepared for linting.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw source lines (1-indexed via `line - 1`).
    pub lines: Vec<String>,
    /// Token stream and comments.
    pub tokens: Tokenized,
    /// `test_mask[line - 1]` is true when the line sits inside a
    /// `#[test]` function or `#[cfg(test)]` item.
    test_mask: Vec<bool>,
}

impl SourceFile {
    /// Tokenizes `text` and computes the test-region mask.
    pub fn new(rel_path: &str, text: &str) -> SourceFile {
        let tokens = tokenize(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let test_mask = test_line_mask(&tokens.tokens, lines.len());
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            tokens,
            test_mask,
        }
    }

    /// True when `line` (1-indexed) is inside a test item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// True when the raw text of `line` contains any of the markers.
    pub fn line_has_any(&self, line: usize, markers: &[String]) -> bool {
        self.lines
            .get(line.wrapping_sub(1))
            .is_some_and(|l| markers.iter().any(|m| l.contains(m.as_str())))
    }

    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: usize) -> Option<&str> {
        self.tokens
            .comments
            .iter()
            .find(|c| c.line == line)
            .map(|c| c.text.as_str())
    }

    /// Builds a diagnostic anchored to this file.
    pub fn diagnostic(&self, rule: &'static str, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.rel_path.clone(),
            line,
            message,
            witness: Vec::new(),
        }
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if
/// the file is unbalanced — the mask degrades gracefully, it never
/// panics).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Marks every line covered by a `#[test]` or `#[cfg(test)]` item.
///
/// The scan finds `#[...]` attribute groups whose contents mention the
/// ident `test` (covers `#[test]`, `#[cfg(test)]`, `#[cfg(all(test,
/// ...))]`), then extends the mask to the end of the annotated item:
/// the matching `}` of its body brace, or the terminating `;`.
fn test_line_mask(tokens: &[Token], total_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; total_lines];
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text != "#" || tokens[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute group.
        let mut depth = 0usize;
        let mut end_bracket = None;
        for (j, tok) in tokens.iter().enumerate().skip(i + 1) {
            match tok.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end_bracket = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end_bracket) = end_bracket else {
            break;
        };
        let mentions_test = tokens[i + 1..end_bracket]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "test");
        if !mentions_test {
            i = end_bracket + 1;
            continue;
        }
        // Extend to the end of the annotated item.
        let item_end = tokens[end_bracket + 1..]
            .iter()
            .position(|t| t.text == "{" || t.text == ";")
            .map(|off| end_bracket + 1 + off);
        let last_line = match item_end {
            Some(k) if tokens[k].text == "{" => tokens[match_brace(tokens, k)].line,
            Some(k) => tokens[k].line,
            None => tokens.last().map(|t| t.line).unwrap_or(0),
        };
        let first_line = tokens[i].line;
        for line in first_line..=last_line {
            if line >= 1 && line <= total_lines {
                mask[line - 1] = true;
            }
        }
        i = end_bracket + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_fn_is_masked() {
        let src = "fn hot() { x.lock(); }\n\
                   #[test]\n\
                   fn check() {\n\
                       hot();\n\
                   }\n\
                   fn also_hot() {}\n";
        let f = SourceFile::new("a.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use super::*;\n\
                       fn helper() { panic!() }\n\
                   }\n\
                   fn tail() {}\n";
        let f = SourceFile::new("a.rs", src);
        assert!(!f.is_test_line(1));
        for line in 2..=6 {
            assert!(f.is_test_line(line), "line {line}");
        }
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn other_attributes_do_not_mask() {
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(feature = \"x\")]\nfn f() {}\n";
        let f = SourceFile::new("a.rs", src);
        for line in 1..=4 {
            assert!(!f.is_test_line(line), "line {line}");
        }
    }

    #[test]
    fn comment_lookup() {
        let src = "// SAFETY: fine\nlet x = 1;\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.comment_on(1).is_some_and(|c| c.contains("SAFETY:")));
        assert!(f.comment_on(2).is_none());
    }
}
