//! Interprocedural def-use dataflow over the token streams.
//!
//! The guard-lifetime model in [`crate::scope`] answers "which locks
//! are live *here*". This module answers flow questions that span
//! statements and functions:
//!
//! * **condvar protocol** — every `Condvar::wait*` must sit inside a
//!   predicate loop, and every `notify_one`/`notify_all` must be
//!   reachable only after the mutex its waiters re-check was acquired
//!   (the lost-wakeup shape `firefly-check`'s `bug-notify` fixture
//!   catches dynamically). Wait sites establish the condvar→mutex
//!   pairing workspace-wide; notify sites are then checked against it,
//!   following same-file callees one level so helper-acquire patterns
//!   resolve.
//! * **atomic publication** — accesses through the `firefly_sync::
//!   atomic` wrappers (recognized by a literal `Ordering` tag in the
//!   argument list) are grouped by location identifier. A `Relaxed`
//!   store on a location someone acquire-loads, or a `Relaxed` load on
//!   a location someone release-stores — and any `Relaxed` spin-loop
//!   exit — is a publication race waiting for a weaker machine, unless
//!   the location is allowlisted (`[atomic-publication].allow_relaxed`
//!   in lint.toml sanctions hook.rs's disabled-path `INSTALLED` load,
//!   whose protocol the checker's `gate` model proves dynamically).
//! * **pool lifecycle** — every pool buffer definition (an alloc-method
//!   call bound with `let`, or a by-value `PacketBuf` parameter — the
//!   interprocedural hand-off) has its uses classified: reaching a
//!   sink (`recycle`, `recycle_to_receive_queue`, `drop`), returning
//!   to the caller, or accounted retention is fine; being pushed into
//!   a container outside the accounted set, or `forget`, is a
//!   leak-on-error-path shape (`pool-lifecycle`).
//!
//! Everything degrades conservatively on token streams that are not
//! valid Rust: unknown shapes produce no facts, never a panic — the
//! propcheck totality property in `crates/lint/tests/rules.rs` holds
//! the scan to that on arbitrary byte soup.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::rules::name;
use crate::scope::functions;
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};
use crate::Diagnostic;

/// Atomic access kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    Load,
    Store,
    Rmw,
}

/// One `Condvar::wait*` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitSite {
    pub path: String,
    pub line: usize,
    pub func: String,
    /// Condvar receiver field (`available`, `ready`, ...).
    pub cond: String,
    /// Receiver field of the mutex whose guard is passed to the wait,
    /// when the guard binding resolves (`free`, `park`, ...).
    pub mutex: Option<String>,
    /// True when the wait sits inside a `loop`/`while`/`for` body — the
    /// predicate re-check the protocol requires.
    pub in_loop: bool,
}

/// One `notify_one`/`notify_all` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifySite {
    pub path: String,
    pub line: usize,
    pub func: String,
    pub cond: String,
    /// Mutex receivers acquired earlier in the same function (token
    /// order), i.e. the state writes this notify can be downstream of.
    pub acquired_before: BTreeSet<String>,
    /// Function names called before the notify — followed one level
    /// (same file) so a helper that takes the paired mutex counts.
    pub callees_before: BTreeSet<String>,
}

/// One instrumented atomic access with a literal ordering tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    pub path: String,
    pub line: usize,
    pub func: String,
    /// Location identifier: the receiver field before the method.
    pub location: String,
    pub kind: AtomicKind,
    /// The literal tag (`Relaxed`, `Acquire`, `Release`, `AcqRel`,
    /// `SeqCst`).
    pub ordering: String,
    /// True for a load in a `while` condition — a spin-loop exit.
    pub spin: bool,
}

/// How a tracked buffer came to exist in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferOrigin {
    /// `let b = pool.alloc...()` — `callee` is the alloc method.
    Alloc { callee: String },
    /// A by-value `PacketBuf` parameter: ownership crossed a call edge
    /// into this function.
    Param,
}

/// One classified use of a tracked buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferUse {
    /// Reached a sink (`recycle`, `recycle_to_receive_queue`, `drop`).
    Sink { line: usize },
    /// Returned to the caller (ownership transferred back).
    Returned { line: usize },
    /// Pushed/inserted into a container; `accounted` when the container
    /// chain includes an accounted receiver.
    Retained {
        container: String,
        accounted: bool,
        line: usize,
    },
    /// Moved into another call (`callee(b)`), tracked in the callee via
    /// its own by-value parameter definition.
    MovedTo { callee: String, line: usize },
    /// `forget(b)` — the destructor (and the slab return) never runs.
    Forgotten { line: usize },
}

/// One tracked buffer definition with its classified uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDef {
    pub path: String,
    pub line: usize,
    pub func: String,
    pub name: String,
    pub origin: BufferOrigin,
    pub uses: Vec<BufferUse>,
}

/// Dataflow facts accumulated across the workspace walk.
#[derive(Debug, Default)]
pub struct DataflowFacts {
    pub waits: Vec<WaitSite>,
    pub notifies: Vec<NotifySite>,
    pub atomics: Vec<AtomicSite>,
    pub buffers: Vec<BufferDef>,
    /// `(file, fn) → mutex receivers locked anywhere in the fn` — the
    /// one-level interprocedural step for the notify rule.
    pub fn_locks: BTreeMap<(String, String), BTreeSet<String>>,
}

impl DataflowFacts {
    /// Merges another worker's facts into this one (order-insensitive:
    /// evaluation sorts all derived output).
    pub fn merge(&mut self, other: DataflowFacts) {
        self.waits.extend(other.waits);
        self.notifies.extend(other.notifies);
        self.atomics.extend(other.atomics);
        self.buffers.extend(other.buffers);
        for (k, v) in other.fn_locks {
            self.fn_locks.entry(k).or_default().extend(v);
        }
    }
}

/// Per-location aggregate for the `--json` report and the
/// static↔dynamic publication diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationSummary {
    pub name: String,
    pub releasing_writes: usize,
    pub acquiring_reads: usize,
    pub relaxed_loads: usize,
    pub relaxed_writes: usize,
    /// True when the location carries at least one releasing write and
    /// one acquiring read — a statically paired publication point.
    pub paired: bool,
    pub allowlisted: bool,
}

/// Aggregates exported alongside the diagnostics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Workspace condvar→mutex pairings observed at wait sites.
    pub condvar_pairs: Vec<(String, Vec<String>)>,
    pub wait_sites: usize,
    pub notify_sites: usize,
    pub locations: Vec<LocationSummary>,
    pub buffer_defs: usize,
    pub buffer_violations: usize,
}

const WAIT_CALLEES: &[&str] = &["wait", "wait_until", "wait_timeout"];
const NOTIFY_CALLEES: &[&str] = &["notify_one", "notify_all"];
const ORDERING_TAGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const RMW_CALLEES: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
const RETAIN_CALLEES: &[&str] = &["push", "push_back", "push_front", "insert"];

fn releasing(tag: &str) -> bool {
    matches!(tag, "Release" | "AcqRel" | "SeqCst")
}

fn acquiring(tag: &str) -> bool {
    matches!(tag, "Acquire" | "AcqRel" | "SeqCst")
}

/// Token index of the `)` matching the `(` at `open` (degrades to the
/// last token when unbalanced).
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Walks a receiver chain backwards from `k` (the token just before a
/// `.method` dot), stepping over `(...)` and `[...]` groups, and
/// returns the indices of the chain's identifier segments, head first:
/// for `self.inner.free.lock().push` entered at the `)` this yields
/// `[self, inner, free, lock]` positions.
fn chain_idents(tokens: &[Token], mut k: usize) -> Vec<usize> {
    let mut idents = Vec::new();
    loop {
        match tokens.get(k).map(|t| t.text.as_str()) {
            Some(")") | Some("]") => {
                // Skip back over the balanced group.
                let close = tokens[k].text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 0usize;
                loop {
                    let Some(t) = tokens.get(k) else { return idents };
                    if t.text == close {
                        depth += 1;
                    } else if t.text == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(prev) = k.checked_sub(1) else { return idents };
                    k = prev;
                }
                let Some(prev) = k.checked_sub(1) else { return idents };
                k = prev;
            }
            _ => {}
        }
        let Some(t) = tokens.get(k) else {
            break;
        };
        if t.kind != TokenKind::Ident {
            break;
        }
        idents.push(k);
        let Some(dot) = k.checked_sub(1) else { break };
        if tokens[dot].text != "." {
            break;
        }
        let Some(prev) = dot.checked_sub(1) else { break };
        k = prev;
    }
    idents.reverse();
    idents
}

/// The `let [mut] NAME =` binding whose right-hand side is the call
/// whose method identifier sits at `j` — tolerant of trailing `?` /
/// method position inside larger expressions (unlike the stricter
/// guard-lifetime extractor, which requires the call to end the
/// statement).
fn binding_of(tokens: &[Token], j: usize) -> Option<String> {
    let start = j.checked_sub(2)?;
    let chain = chain_idents(tokens, start);
    let head = *chain.first()?;
    let eq = head.checked_sub(1)?;
    if tokens[eq].text != "=" {
        return None;
    }
    let name = eq.checked_sub(1)?;
    if tokens[name].kind != TokenKind::Ident {
        return None;
    }
    // `let NAME =`, `let mut NAME =`, or a pattern binding like
    // `if let Ok(NAME) =` / `let Some(NAME) =`: accept the identifier
    // directly left of `=`, or the last identifier inside a pattern's
    // parens.
    let before = name.checked_sub(1)?;
    match tokens[before].text.as_str() {
        "let" => Some(tokens[name].text.clone()),
        "mut" if before >= 1 && tokens[before - 1].text == "let" => Some(tokens[name].text.clone()),
        ")" => {
            // Pattern: walk back over the parens to check for `let`.
            let mut depth = 0usize;
            let mut k = before;
            let mut inner: Option<String> = None;
            loop {
                match tokens[k].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if inner.is_none() && tokens[k].kind == TokenKind::Ident {
                            inner = Some(tokens[k].text.clone());
                        }
                    }
                }
                k = k.checked_sub(1)?;
            }
            // tokens[name] was actually the last pattern segment; the
            // ident before the `(` is the constructor (Ok/Some).
            let ctor = k.checked_sub(1)?;
            let let_pos = ctor.checked_sub(1)?;
            if tokens[let_pos].text == "let" && tokens[name].kind == TokenKind::Ident {
                Some(tokens[name].text.clone())
            } else {
                inner
            }
        }
        _ => None,
    }
}

/// Scans one prepared source file, appending facts. Scope gating (which
/// rule families apply to which path prefixes) happens here so the
/// workspace pairing maps only ever see in-scope sites.
pub fn scan_file(file: &SourceFile, config: &Config, facts: &mut DataflowFacts) {
    let in_condvar = Config::path_matches(&file.rel_path, &config.condvar_files);
    let in_atomic = Config::path_matches(&file.rel_path, &config.atomic_files);
    let in_pool = Config::path_matches(&file.rel_path, &config.pool_files);
    if !in_condvar && !in_atomic && !in_pool {
        return;
    }
    let toks = &file.tokens.tokens;
    for f in functions(toks) {
        if file.is_test_line(f.line) {
            continue;
        }
        scan_function(file, toks, &f, config, facts, in_condvar, in_atomic, in_pool);
    }
}

/// Convenience for tests and properties: scan raw text under a given
/// workspace-relative path.
pub fn scan_text(rel_path: &str, text: &str, config: &Config) -> DataflowFacts {
    let file = SourceFile::new(rel_path, text);
    let mut facts = DataflowFacts::default();
    scan_file(&file, config, &mut facts);
    facts
}

#[allow(clippy::too_many_arguments)]
fn scan_function(
    file: &SourceFile,
    toks: &[Token],
    f: &crate::scope::FnItem,
    config: &Config,
    facts: &mut DataflowFacts,
    in_condvar: bool,
    in_atomic: bool,
    in_pool: bool,
) {
    let close = f.close.min(toks.len().saturating_sub(1));
    if f.open >= toks.len() || f.open > close {
        return;
    }
    // Pre-pass: guard bindings `let [mut] NAME = CHAIN.lock()` →
    // NAME → mutex receiver field.
    let mut guard_mutex: BTreeMap<String, String> = BTreeMap::new();
    for j in f.open..=close {
        if toks[j].kind == TokenKind::Ident
            && toks[j].text == "lock"
            && j >= 2
            && toks[j - 1].text == "."
            && toks.get(j + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(j + 2).map(|t| t.text.as_str()) == Some(")")
            && toks[j - 2].kind == TokenKind::Ident
        {
            if let Some(name) = binding_of(toks, j) {
                guard_mutex.insert(name, toks[j - 2].text.clone());
            }
        }
    }

    // Main pass state.
    // Brace stack: true for loop bodies. Loop keyword pending until its
    // body `{` at paren depth 0.
    let mut brace_stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut pending_while: Option<()> = None; // in a while condition
    let mut paren_depth = 0usize;
    let mut acquired: BTreeSet<String> = BTreeSet::new();
    let mut callees: BTreeSet<String> = BTreeSet::new();
    let fn_key = (file.rel_path.clone(), f.name.clone());

    // By-value buffer parameters: `name: PacketBuf` in the signature.
    if in_pool {
        if let Some(sig_open) = (0..f.open).rev().find(|&k| toks[k].text == "(") {
            let sig_close = match_paren(toks, sig_open).min(f.open);
            let mut k = sig_open + 1;
            while k + 2 < sig_close {
                if toks[k].kind == TokenKind::Ident
                    && toks[k + 1].text == ":"
                    && toks[k + 2].kind == TokenKind::Ident
                    && config.buffer_types.iter().any(|t| t == &toks[k + 2].text)
                    && toks.get(k + 3).map(|t| t.text.as_str()) != Some(":")
                {
                    let def = BufferDef {
                        path: file.rel_path.clone(),
                        line: toks[k].line,
                        func: f.name.clone(),
                        name: toks[k].text.clone(),
                        origin: BufferOrigin::Param,
                        uses: Vec::new(),
                    };
                    facts
                        .buffers
                        .push(track_uses(def, toks, f.open, close, file, config));
                }
                k += 1;
            }
        }
    }

    let mut j = f.open;
    while j <= close {
        let t = &toks[j];
        match t.text.as_str() {
            "(" => paren_depth += 1,
            ")" => paren_depth = paren_depth.saturating_sub(1),
            "{" => {
                if paren_depth == 0 {
                    brace_stack.push(pending_loop);
                    pending_loop = false;
                    pending_while = None;
                }
            }
            "}" => {
                if paren_depth == 0 {
                    brace_stack.pop();
                }
            }
            _ => {}
        }
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            j += 1;
            continue;
        }
        match t.text.as_str() {
            "loop" | "for" => {
                pending_loop = true;
                j += 1;
                continue;
            }
            "while" => {
                pending_loop = true;
                pending_while = Some(());
                j += 1;
                continue;
            }
            _ => {}
        }
        let is_call = toks.get(j + 1).map(|x| x.text.as_str()) == Some("(")
            && (j == 0 || toks[j - 1].text != "fn");
        if is_call {
            callees.insert(t.text.clone());
        }
        let method = is_call && j >= 2 && toks[j - 1].text == "."
            && toks[j - 2].kind == TokenKind::Ident;
        // Track lock acquisitions for the notify rule.
        if method && matches!(t.text.as_str(), "lock" | "read" | "write") {
            acquired.insert(toks[j - 2].text.clone());
            facts
                .fn_locks
                .entry(fn_key.clone())
                .or_default()
                .insert(toks[j - 2].text.clone());
        }
        // Condvar wait/notify sites.
        if in_condvar && method && WAIT_CALLEES.contains(&t.text.as_str()) {
            let args_end = match_paren(toks, j + 1).min(toks.len().saturating_sub(1));
            // Only a condvar-style wait counts: the guard is passed as
            // `&mut g`. An ordinary method that happens to be named
            // `wait` (`entry.wait(deadline)`) has no such argument and
            // is not part of the protocol.
            let guard_arg = (j + 2..args_end).find_map(|k| {
                (toks[k].text == "&"
                    && toks.get(k + 1).map(|x| x.text.as_str()) == Some("mut")
                    && toks.get(k + 2).map(|x| x.kind) == Some(TokenKind::Ident))
                .then(|| toks[k + 2].text.clone())
            });
            if let Some(guard) = guard_arg {
                facts.waits.push(WaitSite {
                    path: file.rel_path.clone(),
                    line: t.line,
                    func: f.name.clone(),
                    cond: toks[j - 2].text.clone(),
                    mutex: guard_mutex.get(&guard).cloned(),
                    in_loop: brace_stack.iter().any(|&l| l),
                });
            }
        }
        if in_condvar && method && NOTIFY_CALLEES.contains(&t.text.as_str()) {
            facts.notifies.push(NotifySite {
                path: file.rel_path.clone(),
                line: t.line,
                func: f.name.clone(),
                cond: toks[j - 2].text.clone(),
                acquired_before: acquired.clone(),
                callees_before: callees.clone(),
            });
        }
        // Atomic accesses: a method call whose args carry a literal
        // Ordering tag.
        if in_atomic && method {
            let kind = match t.text.as_str() {
                "load" => Some(AtomicKind::Load),
                "store" => Some(AtomicKind::Store),
                s if RMW_CALLEES.contains(&s) => Some(AtomicKind::Rmw),
                _ => None,
            };
            if let Some(kind) = kind {
                let args_end = match_paren(toks, j + 1);
                let tag = toks[j + 2..=args_end.min(toks.len().saturating_sub(1))]
                    .iter()
                    .find(|a| {
                        a.kind == TokenKind::Ident && ORDERING_TAGS.contains(&a.text.as_str())
                    })
                    .map(|a| a.text.clone());
                if let Some(ordering) = tag {
                    facts.atomics.push(AtomicSite {
                        path: file.rel_path.clone(),
                        line: t.line,
                        func: f.name.clone(),
                        location: toks[j - 2].text.clone(),
                        kind,
                        ordering,
                        spin: pending_while.is_some() && kind == AtomicKind::Load,
                    });
                }
            }
        }
        // Pool alloc bindings.
        if in_pool && method && config.pool_allocs.iter().any(|a| a == &t.text) {
            if let Some(name) = binding_of(toks, j) {
                let def = BufferDef {
                    path: file.rel_path.clone(),
                    line: t.line,
                    func: f.name.clone(),
                    name,
                    origin: BufferOrigin::Alloc {
                        callee: t.text.clone(),
                    },
                    uses: Vec::new(),
                };
                let args_end = match_paren(toks, j + 1);
                facts
                    .buffers
                    .push(track_uses(def, toks, args_end + 1, close, file, config));
            }
        }
        j += 1;
    }
}

/// Classifies every use of `def.name` in `[start, close]`.
fn track_uses(
    mut def: BufferDef,
    toks: &[Token],
    start: usize,
    close: usize,
    file: &SourceFile,
    config: &Config,
) -> BufferDef {
    // Stack of enclosing calls: (callee name, callee token index).
    let mut call_stack: Vec<Option<(String, usize)>> = Vec::new();
    let mut j = start;
    while j <= close && j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" => {
                let callee = j.checked_sub(1).and_then(|k| {
                    let c = &toks[k];
                    if c.kind == TokenKind::Ident && (k == 0 || toks[k - 1].text != "fn") {
                        Some((c.text.clone(), k))
                    } else {
                        None
                    }
                });
                call_stack.push(callee);
            }
            ")" => {
                call_stack.pop();
            }
            _ => {}
        }
        if t.kind != TokenKind::Ident || t.text != def.name || file.is_test_line(t.line) {
            j += 1;
            continue;
        }
        // Shadowing / patterns: a fresh `let name` rebinds; stop there.
        if j >= 1 && matches!(toks[j - 1].text.as_str(), "let" | "mut") {
            break;
        }
        let next = toks.get(j + 1).map(|x| x.text.as_str());
        let prev = j.checked_sub(1).map(|k| toks[k].text.as_str());
        if next == Some(".") {
            // Method use: only sinks consume; everything else borrows.
            if let Some(m) = toks.get(j + 2) {
                if m.kind == TokenKind::Ident && config.pool_sinks.iter().any(|s| s == &m.text) {
                    def.uses.push(BufferUse::Sink { line: t.line });
                }
            }
            j += 1;
            continue;
        }
        if prev == Some("&") || prev == Some(".") {
            j += 1; // borrow, or a field of the same name on something else
            continue;
        }
        if prev == Some("return") {
            def.uses.push(BufferUse::Returned { line: t.line });
            j += 1;
            continue;
        }
        // Argument position: the innermost enclosing call decides.
        if let Some(Some((callee, callee_at))) = call_stack.last() {
            let line = t.line;
            if config.pool_sinks.iter().any(|s| s == callee) || callee == "drop" {
                def.uses.push(BufferUse::Sink { line });
            } else if callee == "forget" {
                def.uses.push(BufferUse::Forgotten { line });
            } else if matches!(callee.as_str(), "Ok" | "Some" | "Err") {
                def.uses.push(BufferUse::Returned { line });
            } else if RETAIN_CALLEES.contains(&callee.as_str()) {
                // Container = the receiver chain of the retaining call.
                let chain = callee_at
                    .checked_sub(2)
                    .map(|k| chain_idents(toks, k))
                    .unwrap_or_default();
                let fields: Vec<&str> = chain
                    .iter()
                    .filter(|&&k| toks.get(k + 1).map(|x| x.text.as_str()) != Some("("))
                    .map(|&k| toks[k].text.as_str())
                    .collect();
                let accounted = fields.iter().any(|f| {
                    config.pool_accounted.iter().any(|a| a == f)
                        || config.pool_receivers.iter().any(|p| p == f)
                });
                let container = fields
                    .last()
                    .copied()
                    .unwrap_or(callee.as_str())
                    .to_string();
                def.uses.push(BufferUse::Retained {
                    container,
                    accounted,
                    line,
                });
            } else {
                def.uses.push(BufferUse::MovedTo {
                    callee: callee.clone(),
                    line,
                });
            }
        }
        j += 1;
    }
    def
}

/// Runs the workspace-level evaluation over the accumulated facts,
/// producing diagnostics and the exported [`Summary`].
pub fn evaluate(facts: &DataflowFacts, config: &Config) -> (Vec<Diagnostic>, Summary) {
    let mut diags = Vec::new();

    // --- condvar protocol ------------------------------------------
    // Pairing map from wait sites: condvar receiver → mutex receivers.
    let mut pairs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut wait_exemplar: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for w in &facts.waits {
        if let Some(m) = &w.mutex {
            pairs.entry(w.cond.clone()).or_default().insert(m.clone());
        }
        wait_exemplar
            .entry(w.cond.clone())
            .or_insert_with(|| (w.path.clone(), w.line));
    }
    for w in &facts.waits {
        if !w.in_loop {
            diags.push(Diagnostic {
                rule: name::CONDVAR_WAIT_LOOP,
                path: w.path.clone(),
                line: w.line,
                message: format!(
                    "`{}.{}` outside a predicate loop in `{}`: a spurious or stolen \
                     wakeup returns with the condition still false; re-check it in a \
                     `while`/`loop` under the same mutex",
                    w.cond,
                    "wait",
                    w.func
                ),
                witness: vec![format!("{}:{}", w.path, w.line)],
            });
        }
    }
    for n in &facts.notifies {
        let Some(mutexes) = pairs.get(&n.cond) else {
            continue; // no in-scope waiter pairing observed for this condvar
        };
        let direct = n.acquired_before.iter().any(|m| mutexes.contains(m));
        let via_callee = n.callees_before.iter().any(|c| {
            facts
                .fn_locks
                .get(&(n.path.clone(), c.clone()))
                .is_some_and(|locks| locks.iter().any(|m| mutexes.contains(m)))
        });
        if !direct && !via_callee {
            let mutex_list: Vec<&str> = mutexes.iter().map(String::as_str).collect();
            let mut witness = Vec::new();
            if let Some((wp, wl)) = wait_exemplar.get(&n.cond) {
                witness.push(format!("{wp}:{wl}"));
            }
            witness.push(format!("{}:{}", n.path, n.line));
            diags.push(Diagnostic {
                rule: name::CONDVAR_NOTIFY,
                path: n.path.clone(),
                line: n.line,
                message: format!(
                    "`{}.{}` in `{}` without acquiring the waiters' mutex (`{}`) \
                     first: a waiter can re-check its predicate, miss the state \
                     change, and block past this wakeup (lost-wakeup shape); touch \
                     the mutex before notifying",
                    n.cond,
                    "notify",
                    n.func,
                    mutex_list.join("`/`"),
                ),
                witness,
            });
        }
    }

    // --- atomic publication ----------------------------------------
    let mut by_location: BTreeMap<&str, Vec<&AtomicSite>> = BTreeMap::new();
    for a in &facts.atomics {
        by_location.entry(a.location.as_str()).or_default().push(a);
    }
    let mut locations = Vec::new();
    for (loc, sites) in &by_location {
        let allowlisted = config.allow_relaxed.iter().any(|a| a == loc);
        let releasing_writes: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| s.kind != AtomicKind::Load && releasing(&s.ordering))
            .collect();
        let acquiring_reads = sites
            .iter()
            .filter(|s| s.kind != AtomicKind::Store && acquiring(&s.ordering))
            .count();
        let any_writes = sites.iter().any(|s| s.kind != AtomicKind::Load);
        let relaxed_loads: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| s.kind == AtomicKind::Load && s.ordering == "Relaxed")
            .collect();
        let relaxed_writes: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| s.kind != AtomicKind::Load && s.ordering == "Relaxed")
            .collect();
        locations.push(LocationSummary {
            name: (*loc).to_string(),
            releasing_writes: releasing_writes.len(),
            acquiring_reads,
            relaxed_loads: relaxed_loads.len(),
            relaxed_writes: relaxed_writes.len(),
            paired: !releasing_writes.is_empty() && acquiring_reads > 0,
            allowlisted,
        });
        if allowlisted {
            continue;
        }
        // Relaxed read of a released location (or any spin-loop exit on
        // a written location): the read can see the flag without the
        // data it publishes.
        for l in &relaxed_loads {
            let against_release = !releasing_writes.is_empty();
            let spin_against_write = l.spin && any_writes;
            if against_release || spin_against_write {
                let mut witness = Vec::new();
                if let Some(w) = releasing_writes.first() {
                    witness.push(format!("{}:{}", w.path, w.line));
                } else if let Some(w) = sites.iter().find(|s| s.kind != AtomicKind::Load) {
                    witness.push(format!("{}:{}", w.path, w.line));
                }
                witness.push(format!("{}:{}", l.path, l.line));
                diags.push(Diagnostic {
                    rule: name::ATOMIC_PUBLICATION,
                    path: l.path.clone(),
                    line: l.line,
                    message: format!(
                        "`Relaxed` {}load of `{loc}` in `{}`, but `{loc}` is written \
                         cross-thread{}; load with `Acquire` (or allowlist the \
                         location in lint.toml [atomic-publication] with a proof)",
                        if l.spin { "spin-loop " } else { "" },
                        l.func,
                        if against_release {
                            " with `Release` ordering"
                        } else {
                            ""
                        },
                    ),
                    witness,
                });
            }
        }
        // Relaxed publication: a store/RMW somebody acquire-reads.
        if acquiring_reads > 0 {
            for w in &relaxed_writes {
                let reader = sites
                    .iter()
                    .find(|s| s.kind != AtomicKind::Store && acquiring(&s.ordering));
                let mut witness = vec![format!("{}:{}", w.path, w.line)];
                if let Some(r) = reader {
                    witness.push(format!("{}:{}", r.path, r.line));
                }
                diags.push(Diagnostic {
                    rule: name::ATOMIC_PUBLICATION,
                    path: w.path.clone(),
                    line: w.line,
                    message: format!(
                        "`Relaxed` write of `{loc}` in `{}`, but `{loc}` is \
                         acquire-read cross-thread; publish with `Release` so the \
                         reader's acquire pairs with it",
                        w.func,
                    ),
                    witness,
                });
            }
        }
    }

    // --- pool lifecycle --------------------------------------------
    let mut buffer_violations = 0usize;
    for def in &facts.buffers {
        for u in &def.uses {
            match u {
                BufferUse::Retained {
                    container,
                    accounted: false,
                    line,
                } => {
                    buffer_violations += 1;
                    diags.push(Diagnostic {
                        rule: name::POOL_LIFECYCLE,
                        path: def.path.clone(),
                        line: *line,
                        message: format!(
                            "pool buffer `{}` ({}) is retained in `{container}`, \
                             which is outside the accounted set — on this path the \
                             slab never returns to the pool (leak shape); recycle \
                             it, return it, or add the container to \
                             lint.toml [pool-lifecycle].accounted with a proof",
                            def.name,
                            origin_label(&def.origin),
                        ),
                        witness: vec![
                            format!("{}:{}", def.path, def.line),
                            format!("{}:{}", def.path, line),
                        ],
                    });
                }
                BufferUse::Forgotten { line } => {
                    buffer_violations += 1;
                    diags.push(Diagnostic {
                        rule: name::POOL_LIFECYCLE,
                        path: def.path.clone(),
                        line: *line,
                        message: format!(
                            "pool buffer `{}` ({}) is leaked via `forget` — the \
                             slab never returns to the pool",
                            def.name,
                            origin_label(&def.origin),
                        ),
                        witness: vec![
                            format!("{}:{}", def.path, def.line),
                            format!("{}:{}", def.path, line),
                        ],
                    });
                }
                _ => {}
            }
        }
    }

    let summary = Summary {
        condvar_pairs: pairs
            .into_iter()
            .map(|(c, m)| (c, m.into_iter().collect()))
            .collect(),
        wait_sites: facts.waits.len(),
        notify_sites: facts.notifies.len(),
        locations,
        buffer_defs: facts.buffers.len(),
        buffer_violations,
    };
    (diags, summary)
}

fn origin_label(origin: &BufferOrigin) -> String {
    match origin {
        BufferOrigin::Alloc { callee } => format!("allocated via `{callee}`"),
        BufferOrigin::Param => "received by value — the caller moved ownership here".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> DataflowFacts {
        scan_text("crates/core/src/client.rs", src, &Config::default())
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = facts(src);
        evaluate(&f, &Config::default()).0
    }

    #[test]
    fn wait_in_while_loop_is_clean() {
        let d = run(
            "pub fn f(p: &P) { let mut g = p.free.lock(); \
             while busy(&g) { p.available.wait(&mut g); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wait_outside_loop_is_flagged() {
        let d = run("pub fn f(p: &P) { let mut g = p.free.lock(); p.available.wait(&mut g); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::CONDVAR_WAIT_LOOP);
        assert!(!d[0].witness.is_empty());
    }

    #[test]
    fn notify_without_paired_mutex_is_flagged() {
        let d = run(
            "pub fn waiter(p: &P) { let mut g = p.free.lock(); \
             while busy(&g) { p.available.wait(&mut g); } } \
             pub fn wake(p: &P) { p.available.notify_one(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::CONDVAR_NOTIFY);
    }

    #[test]
    fn notify_after_mutex_touch_is_clean() {
        let d = run(
            "pub fn waiter(p: &P) { let mut g = p.free.lock(); \
             while busy(&g) { p.available.wait(&mut g); } } \
             pub fn wake(p: &P) { p.free.lock().push(1); p.available.notify_one(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn notify_via_samefile_helper_acquisition_is_clean() {
        let d = run(
            "pub fn waiter(p: &P) { let mut g = p.free.lock(); \
             while busy(&g) { p.available.wait(&mut g); } } \
             fn bump(p: &P) { let _g = p.free.lock(); } \
             pub fn wake(p: &P) { bump(p); p.available.notify_one(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn relaxed_load_against_release_store_is_flagged() {
        let d = run(
            "pub fn w(s: &S) { s.flag.store(1, Ordering::Release); } \
             pub fn r(s: &S) -> u32 { s.flag.load(Ordering::Relaxed) }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::ATOMIC_PUBLICATION);
        assert_eq!(d[0].witness.len(), 2);
    }

    #[test]
    fn relaxed_store_against_acquire_load_is_flagged() {
        let d = run(
            "pub fn w(s: &S) { s.flag.store(1, Ordering::Relaxed); } \
             pub fn r(s: &S) -> u32 { s.flag.load(Ordering::Acquire) }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::ATOMIC_PUBLICATION);
    }

    #[test]
    fn all_relaxed_counters_stay_silent() {
        let d = run(
            "pub fn w(s: &S) { s.hits.fetch_add(1, Ordering::Relaxed); } \
             pub fn r(s: &S) -> u64 { s.hits.load(Ordering::Relaxed) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn relaxed_spin_loop_exit_is_flagged() {
        let d = run(
            "pub fn w(s: &S) { s.done.store(1, Ordering::Relaxed); } \
             pub fn r(s: &S) { while s.done.load(Ordering::Relaxed) == 0 { spin(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("spin-loop"), "{}", d[0].message);
    }

    #[test]
    fn release_acquire_pair_is_clean_and_paired() {
        let f = facts(
            "pub fn w(s: &S) { s.down.store(1, Ordering::Release); } \
             pub fn r(s: &S) -> bool { s.down.load(Ordering::Acquire) != 0 }",
        );
        let (d, summary) = evaluate(&f, &Config::default());
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(summary.locations.len(), 1);
        assert!(summary.locations[0].paired);
    }

    #[test]
    fn allowlisted_location_is_exempt() {
        let mut config = Config::default();
        config.allow_relaxed.push("flag".into());
        let f = scan_text(
            "crates/core/src/client.rs",
            "pub fn w(s: &S) { s.flag.store(1, Ordering::Release); } \
             pub fn r(s: &S) -> u32 { s.flag.load(Ordering::Relaxed) }",
            &config,
        );
        let (d, _) = evaluate(&f, &config);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn leaked_alloc_into_unaccounted_container_is_flagged() {
        let d = run(
            "pub fn f(p: &P, stash: &S) -> Result<(), E> { \
             let b = p.pool.alloc()?; \
             if failing() { stash.lock().push(b); return Err(E); } \
             b.recycle(); Ok(()) }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::POOL_LIFECYCLE);
        assert_eq!(d[0].witness.len(), 2);
    }

    #[test]
    fn recycle_and_return_paths_are_clean() {
        let d = run(
            "pub fn f(p: &P) -> Result<PacketBuf, E> { \
             let b = p.pool.alloc()?; \
             if done() { return Ok(b); } \
             b.recycle(); Err(E) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn accounted_retention_is_clean() {
        let d = run(
            "pub fn f(p: &P) { \
             let b = p.pool.alloc().unwrap_or_default(); \
             p.receive_queue.lock().push_back(b); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn by_value_param_leak_is_flagged_interprocedurally() {
        let d = run(
            "pub fn stash_it(stash: &S, b: PacketBuf) { stash.lock().push(b); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, name::POOL_LIFECYCLE);
    }

    #[test]
    fn forget_is_flagged() {
        let d = run(
            "pub fn f(p: &P) { let b = p.pool.alloc().ok(); std::mem::forget(b); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("forget"));
    }

    #[test]
    fn out_of_scope_files_contribute_nothing() {
        let f = scan_text(
            "crates/sim/src/engine.rs",
            "pub fn f(p: &P) { p.available.wait(&mut g); }",
            &Config::default(),
        );
        assert!(f.waits.is_empty());
    }

    #[test]
    fn merge_is_union() {
        let mut a = facts("pub fn f(p: &P) { let mut g = p.free.lock(); p.c.wait(&mut g); }");
        let b = facts("pub fn g(p: &P) { p.c.notify_one(); }");
        let waits = a.waits.len();
        let notifies = b.notifies.len();
        a.merge(b);
        assert_eq!(a.waits.len(), waits);
        assert_eq!(a.notifies.len(), notifies);
    }
}
