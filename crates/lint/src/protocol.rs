//! Protocol-conformance: extract the implemented packet state machine
//! from the token streams and diff it against the declared spec in
//! `protocol.toml`.
//!
//! The spec file declares the packet types, the flag vocabulary, which
//! functions implement each type's receive side, which flags each
//! receive side must read, who may build explicit acknowledgements, and
//! the full `(state, type, flags) -> action` transition table. The scan
//! extracts four kinds of implementation facts:
//!
//! * **construction sites** — `PacketType::T` used as a value (not a
//!   match pattern, not a comparison), with the flags set alongside it
//!   (struct-literal fields or builder calls);
//! * **dispatch matches** — every `match` whose scrutinee mentions
//!   `packet_type`, with the set of types its arms cover;
//! * **flag reads** — `flags.F` accesses inside the declared handler
//!   functions;
//! * **ack discipline** — `ack_for` call sites and the retransmission
//!   functions' presence, retry counters and sends.
//!
//! [`evaluate`] diffs the facts against the spec into four rules (see
//! docs/LINTS.md, family `protocol-conformance`):
//! `protocol-unhandled-type`, `protocol-missing-arm`,
//! `protocol-unread-flag`, `protocol-ack-discipline`. The spec's
//! transition table itself is exported verbatim in the `--json` report;
//! scripts/cross_diff.py checks it against the transitions
//! `firefly-check` observes dynamically (the fourth gate).

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{parse_sections, Config};
use crate::rules::{is_test_path, name};
use crate::scope::functions;
use crate::source::{match_brace, SourceFile};
use crate::tokenizer::{Token, TokenKind};
use crate::Diagnostic;

/// The declared protocol, parsed from `protocol.toml`.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Packet type names (`Call`, `Result`, ...).
    pub types: Vec<String>,
    /// Flag names in canonical rendering order.
    pub flag_order: Vec<String>,
    /// Path prefixes the extractor scans for constructions/dispatches.
    pub scope_files: Vec<String>,
    /// Path prefixes containing the receive-side handler functions.
    pub handler_files: Vec<String>,
    /// Packet type -> functions implementing its receive side.
    pub handlers: BTreeMap<String, Vec<String>>,
    /// Packet type -> flags its receive side must read.
    pub flag_reads: BTreeMap<String, Vec<String>>,
    /// Functions allowed to call `RpcHeader::ack_for`.
    pub ack_allowed_callers: Vec<String>,
    /// Retransmission functions that must exist with a retry counter
    /// and a send.
    pub retransmit_functions: Vec<String>,
    /// The legal `(state, type, flags) -> action` rows, verbatim.
    pub transitions: Vec<String>,
    /// Legal rows deliberately not exercised dynamically.
    pub coverage_allowlist: Vec<String>,
}

impl ProtocolSpec {
    /// Parses the spec from `protocol.toml` text. Missing sections
    /// parse as empty lists — the evaluation then has nothing to
    /// require, so a partial spec degrades to fewer checks, never a
    /// panic.
    pub fn from_toml(text: &str) -> ProtocolSpec {
        let sections = parse_sections(text);
        let list = |sec: &str, key: &str| -> Vec<String> {
            sections
                .get(sec)
                .and_then(|s| s.get(key))
                .cloned()
                .unwrap_or_default()
        };
        let map = |sec: &str| -> BTreeMap<String, Vec<String>> {
            sections
                .get(sec)
                .map(|s| s.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                .unwrap_or_default()
        };
        ProtocolSpec {
            types: list("packet-types", "types"),
            flag_order: list("flags", "order"),
            scope_files: list("scope", "files"),
            handler_files: list("scope", "handler-files"),
            handlers: map("handlers"),
            flag_reads: map("flag-reads"),
            ack_allowed_callers: list("ack-discipline", "allowed-callers"),
            retransmit_functions: list("ack-discipline", "retransmit-functions"),
            transitions: list("transitions", "legal"),
            coverage_allowlist: list("coverage", "allowlist"),
        }
    }
}

/// One dispatch `match` over a `packet_type` scrutinee.
#[derive(Debug, Clone)]
pub struct DispatchSite {
    pub path: String,
    pub line: usize,
    /// Packet types named by the arms (over-approximated: any
    /// `PacketType::T` inside the body counts).
    pub covered: BTreeSet<String>,
    /// True when a `_ =>` arm appears in the body.
    pub wildcard: bool,
}

/// Implementation facts accumulated per file and merged workspace-wide.
#[derive(Debug, Default)]
pub struct ProtocolFacts {
    /// `(type, path, line, flags-set-at-site)` per construction.
    pub constructions: Vec<(String, String, usize, BTreeSet<String>)>,
    /// `(type, path, line)` per match-arm pattern mention.
    pub arm_types: Vec<(String, String, usize)>,
    /// Dispatch matches over `packet_type`.
    pub dispatches: Vec<DispatchSite>,
    /// `(function, flag, path, line)` per `flags.F` read in a handler
    /// file.
    pub flag_reads: Vec<(String, String, String, usize)>,
    /// `(function, path, line)` of declared handler-function bodies.
    pub handler_fns: Vec<(String, String, usize)>,
    /// `(enclosing function, path, line)` per `ack_for` call.
    pub ack_sites: Vec<(String, String, usize)>,
    /// `(name, path, line, has_counter, has_send)` per retransmission
    /// function body found.
    pub retransmit_fns: Vec<(String, String, usize, bool, bool)>,
}

impl ProtocolFacts {
    /// Unions another accumulation into this one.
    pub fn merge(&mut self, other: ProtocolFacts) {
        self.constructions.extend(other.constructions);
        self.arm_types.extend(other.arm_types);
        self.dispatches.extend(other.dispatches);
        self.flag_reads.extend(other.flag_reads);
        self.handler_fns.extend(other.handler_fns);
        self.ack_sites.extend(other.ack_sites);
        self.retransmit_fns.extend(other.retransmit_fns);
    }
}

/// Workspace aggregates for the `--json` report and the verify.sh
/// fourth gate (static spec vs dynamically observed transitions).
#[derive(Debug, Default, Clone)]
pub struct Report {
    pub types: Vec<String>,
    /// The spec's legal transitions, verbatim and in spec order.
    pub transitions: Vec<String>,
    /// Legal rows sanctioned to go unobserved dynamically.
    pub coverage_allowlist: Vec<String>,
    pub construction_sites: usize,
    pub dispatch_sites: usize,
    pub flag_read_sites: usize,
    pub ack_sites: usize,
}

/// Extracts this file's protocol facts. Test files and files outside
/// the spec's scope contribute nothing.
pub fn scan_file(file: &SourceFile, spec: &ProtocolSpec, facts: &mut ProtocolFacts) {
    if is_test_path(&file.rel_path) {
        return;
    }
    let in_scope = Config::path_matches(&file.rel_path, &spec.scope_files);
    let in_handlers = Config::path_matches(&file.rel_path, &spec.handler_files);
    if !in_scope && !in_handlers {
        return;
    }
    let toks = &file.tokens.tokens;
    if in_scope {
        scan_type_mentions(file, toks, spec, facts);
        scan_dispatches(file, toks, spec, facts);
        scan_ack_discipline(file, toks, spec, facts);
    }
    if in_handlers {
        scan_handler_flag_reads(file, toks, spec, facts);
    }
}

/// True when the token at `i` is an identifier with the given text.
fn ident_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// Classifies every `PacketType::T` mention as a match-arm pattern, a
/// comparison operand (ignored), or a value-construction site (with
/// the flags set alongside it).
fn scan_type_mentions(
    file: &SourceFile,
    toks: &[Token],
    spec: &ProtocolSpec,
    facts: &mut ProtocolFacts,
) {
    for i in 0..toks.len() {
        if !ident_at(toks, i, "PacketType")
            || !punct_at(toks, i + 1, ":")
            || !punct_at(toks, i + 2, ":")
        {
            continue;
        }
        let Some(ty) = toks.get(i + 3).filter(|t| {
            t.kind == TokenKind::Ident && spec.types.iter().any(|s| s == &t.text)
        }) else {
            continue;
        };
        if file.is_test_line(ty.line) {
            continue;
        }
        let after_arrow = punct_at(toks, i + 4, "=") && punct_at(toks, i + 5, ">");
        let after_or = punct_at(toks, i + 4, "|");
        if after_arrow || after_or {
            facts
                .arm_types
                .push((ty.text.clone(), file.rel_path.clone(), ty.line));
            continue;
        }
        // `== PacketType::T` / `!= PacketType::T` are reads, not
        // constructions.
        let compared = i >= 2
            && punct_at(toks, i - 1, "=")
            && (punct_at(toks, i - 2, "=") || punct_at(toks, i - 2, "!"));
        if compared {
            continue;
        }
        let flags = flags_set_near(toks, i, spec);
        facts
            .constructions
            .push((ty.text.clone(), file.rel_path.clone(), ty.line, flags));
    }
}

/// The flags set alongside a construction at token `i0` (the
/// `PacketType` ident). A `packet_type: PacketType::T` struct-literal
/// field scans the enclosing literal's braces for `F: <non-false>`
/// fields; any other shape (builder argument, match-arm body) scans
/// forward to the statement end for `.F(<non-false>)` setter calls.
fn flags_set_near(toks: &[Token], i0: usize, spec: &ProtocolSpec) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let is_flag = |t: &Token| t.kind == TokenKind::Ident && spec.flag_order.iter().any(|f| f == &t.text);
    let struct_field = i0 >= 2 && ident_at(toks, i0 - 2, "packet_type") && punct_at(toks, i0 - 1, ":");
    if struct_field {
        // Walk back to the literal's opening brace (bounded).
        let mut depth = 0usize;
        let mut open = None;
        for j in (i0.saturating_sub(500)..i0.saturating_sub(1)).rev() {
            match toks[j].text.as_str() {
                "}" => depth += 1,
                "{" => {
                    if depth == 0 {
                        open = Some(j);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let Some(open) = open else {
            return flags;
        };
        let close = match_brace(toks, open);
        for j in open..close {
            // `F: value` with value != `false`; skip `::F` paths and
            // `F::` paths (a single `:` on each side means a field).
            if is_flag(&toks[j])
                && punct_at(toks, j + 1, ":")
                && !punct_at(toks, j + 2, ":")
                && !(j >= 1 && punct_at(toks, j - 1, ":"))
                && !ident_at(toks, j + 2, "false")
            {
                flags.insert(toks[j].text.clone());
            }
        }
    } else {
        // Builder chain: `.F(arg)` until the statement ends.
        for j in i0..(i0 + 300).min(toks.len()) {
            if punct_at(toks, j, ";") {
                break;
            }
            if j >= 1
                && punct_at(toks, j - 1, ".")
                && is_flag(&toks[j])
                && punct_at(toks, j + 1, "(")
                && !ident_at(toks, j + 2, "false")
            {
                flags.insert(toks[j].text.clone());
            }
        }
    }
    flags
}

/// Finds every `match` whose scrutinee mentions `packet_type` and
/// records which types its body names and whether it has a wildcard.
fn scan_dispatches(
    file: &SourceFile,
    toks: &[Token],
    spec: &ProtocolSpec,
    facts: &mut ProtocolFacts,
) {
    for i in 0..toks.len() {
        if !ident_at(toks, i, "match") || file.is_test_line(toks[i].line) {
            continue;
        }
        // Scrutinee: tokens up to the body's `{` (bounded — a missing
        // brace means this isn't a match expression we understand).
        let Some(open) = (i + 1..(i + 60).min(toks.len())).find(|&j| toks[j].text == "{") else {
            continue;
        };
        let mentions = toks[i + 1..open]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "packet_type");
        if !mentions {
            continue;
        }
        let close = match_brace(toks, open);
        let mut covered = BTreeSet::new();
        let mut wildcard = false;
        for j in open..close {
            if ident_at(toks, j, "PacketType")
                && punct_at(toks, j + 1, ":")
                && punct_at(toks, j + 2, ":")
            {
                if let Some(t) = toks
                    .get(j + 3)
                    .filter(|t| spec.types.iter().any(|s| s == &t.text))
                {
                    covered.insert(t.text.clone());
                }
            }
            if punct_at(toks, j, "_") && punct_at(toks, j + 1, "=") && punct_at(toks, j + 2, ">") {
                wildcard = true;
            }
        }
        facts.dispatches.push(DispatchSite {
            path: file.rel_path.clone(),
            line: toks[i].line,
            covered,
            wildcard,
        });
    }
}

/// Records `flags.F` reads inside declared handler-function bodies,
/// and the handler definitions themselves (diagnostic anchors).
fn scan_handler_flag_reads(
    file: &SourceFile,
    toks: &[Token],
    spec: &ProtocolSpec,
    facts: &mut ProtocolFacts,
) {
    let is_handler =
        |name: &str| spec.handlers.values().any(|fns| fns.iter().any(|f| f == name));
    for f in functions(toks) {
        if !is_handler(&f.name) || file.is_test_line(f.line) {
            continue;
        }
        facts
            .handler_fns
            .push((f.name.clone(), file.rel_path.clone(), f.line));
        for j in f.open..f.close {
            if ident_at(toks, j, "flags") && punct_at(toks, j + 1, ".") {
                if let Some(flag) = toks.get(j + 2).filter(|t| {
                    t.kind == TokenKind::Ident && spec.flag_order.iter().any(|fl| fl == &t.text)
                }) {
                    facts.flag_reads.push((
                        f.name.clone(),
                        flag.text.clone(),
                        file.rel_path.clone(),
                        flag.line,
                    ));
                }
            }
        }
    }
}

/// Records `ack_for` call sites with their enclosing function, and the
/// retransmission-function bodies with their counter/send evidence.
fn scan_ack_discipline(
    file: &SourceFile,
    toks: &[Token],
    spec: &ProtocolSpec,
    facts: &mut ProtocolFacts,
) {
    let fns = functions(toks);
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident
            || tok.text != "ack_for"
            || !punct_at(toks, i + 1, "(")
            || file.is_test_line(tok.line)
        {
            continue;
        }
        // `fn ack_for(...)` is the definition, not a call.
        if i >= 1 && ident_at(toks, i - 1, "fn") {
            continue;
        }
        // Innermost enclosing function (largest `open` still before i).
        let enclosing = fns
            .iter()
            .filter(|f| f.open < i && i < f.close)
            .max_by_key(|f| f.open)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<top-level>".to_string());
        facts
            .ack_sites
            .push((enclosing, file.rel_path.clone(), tok.line));
    }
    for f in &fns {
        if !spec.retransmit_functions.iter().any(|r| r == &f.name) || file.is_test_line(f.line) {
            continue;
        }
        let body = &toks[f.open..f.close];
        let has = |names: &[&str]| {
            body.iter()
                .any(|t| t.kind == TokenKind::Ident && names.iter().any(|n| *n == t.text))
        };
        facts.retransmit_fns.push((
            f.name.clone(),
            file.rel_path.clone(),
            f.line,
            has(&["attempts", "transmissions"]),
            has(&["send_built", "send_batch", "send", "send_to"]),
        ));
    }
}

/// Diffs the accumulated facts against the spec: the four
/// `protocol-conformance` rules plus the report the `--json` consumers
/// and the verify.sh fourth gate read.
pub fn evaluate(facts: &ProtocolFacts, spec: &ProtocolSpec) -> (Vec<Diagnostic>, Report) {
    let mut diags = Vec::new();
    let spec_anchor = |rule: &'static str, message: String| Diagnostic {
        rule,
        path: "protocol.toml".to_string(),
        line: 1,
        message,
        witness: Vec::new(),
    };

    // protocol-unhandled-type: every declared type needs at least one
    // construction site and at least one dispatch arm in scope.
    for ty in &spec.types {
        let constructed = facts.constructions.iter().any(|(t, ..)| t == ty);
        let dispatched = facts.arm_types.iter().any(|(t, ..)| t == ty)
            || facts.dispatches.iter().any(|d| d.covered.contains(ty));
        if !constructed || !dispatched {
            let missing = match (constructed, dispatched) {
                (false, false) => "no construction site and no dispatch arm",
                (false, true) => "no construction site",
                _ => "no dispatch arm",
            };
            diags.push(spec_anchor(
                name::PROTOCOL_UNHANDLED_TYPE,
                format!(
                    "packet type `{ty}` is declared in protocol.toml but the scanned \
                     sources have {missing} for it; implement both sides or remove \
                     the type from the spec"
                ),
            ));
        }
    }

    // protocol-missing-arm: a dispatch over `packet_type` must name
    // every declared type or carry a `_` arm.
    for d in &facts.dispatches {
        if d.wildcard {
            continue;
        }
        let missing: Vec<&String> = spec.types.iter().filter(|t| !d.covered.contains(*t)).collect();
        if !missing.is_empty() {
            diags.push(Diagnostic {
                rule: name::PROTOCOL_MISSING_ARM,
                path: d.path.clone(),
                line: d.line,
                message: format!(
                    "this `match` on a packet type has no arm for {} and no `_` \
                     wildcard; every declared packet type must be routed (or \
                     explicitly dropped)",
                    missing
                        .iter()
                        .map(|t| format!("`{t}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                witness: Vec::new(),
            });
        }
    }

    // protocol-unread-flag, direction 1: a flag set at a construction
    // site of type T that [flag-reads].T does not declare is dead on
    // the wire.
    let empty: Vec<String> = Vec::new();
    for (ty, path, line, flags) in &facts.constructions {
        let declared = spec.flag_reads.get(ty).unwrap_or(&empty);
        for flag in flags {
            if !declared.iter().any(|f| f == flag) {
                diags.push(Diagnostic {
                    rule: name::PROTOCOL_UNREAD_FLAG,
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "`{flag}` is set at this `{ty}` construction site but \
                         [flag-reads].{ty} in protocol.toml does not declare it — \
                         the receive side never reads it, so the bit is dead on \
                         the wire (or the spec is stale)"
                    ),
                    witness: Vec::new(),
                });
            }
        }
    }
    // Direction 2: every declared flag read must occur in one of the
    // type's handler bodies.
    for (ty, flags) in &spec.flag_reads {
        let handler_fns = spec.handlers.get(ty).unwrap_or(&empty);
        for flag in flags {
            let read = facts
                .flag_reads
                .iter()
                .any(|(func, f, ..)| f == flag && handler_fns.iter().any(|h| h == func));
            if !read {
                let anchor = facts
                    .handler_fns
                    .iter()
                    .find(|(func, ..)| handler_fns.iter().any(|h| h == func));
                let mut d = spec_anchor(
                    name::PROTOCOL_UNREAD_FLAG,
                    format!(
                        "[flag-reads].{ty} declares `{flag}` but none of its handlers \
                         ({}) reads `flags.{flag}` — the receive side cannot \
                         distinguish the spec's `{ty}` transition rows",
                        handler_fns.join(", ")
                    ),
                );
                if let Some((_, path, line)) = anchor {
                    d.path = path.clone();
                    d.line = *line;
                }
                diags.push(d);
            }
        }
    }

    // protocol-ack-discipline: explicit acks only from the allowed
    // callers; every retransmission path exists with a retry counter
    // and a send.
    for (func, path, line) in &facts.ack_sites {
        if !spec.ack_allowed_callers.iter().any(|a| a == func) {
            diags.push(Diagnostic {
                rule: name::PROTOCOL_ACK_DISCIPLINE,
                path: path.clone(),
                line: *line,
                message: format!(
                    "`ack_for` called from `{func}`, which is not in \
                     [ack-discipline].allowed-callers — the protocol acks \
                     implicitly everywhere else (a Result acks its Call, the next \
                     Call acks the previous Result)"
                ),
                witness: Vec::new(),
            });
        }
    }
    for rf in &spec.retransmit_functions {
        let found: Vec<_> = facts
            .retransmit_fns
            .iter()
            .filter(|(n, ..)| n == rf)
            .collect();
        if found.is_empty() {
            diags.push(spec_anchor(
                name::PROTOCOL_ACK_DISCIPLINE,
                format!(
                    "retransmission function `{rf}` declared in \
                     [ack-discipline].retransmit-functions was not found in the \
                     scanned sources — the implicit-ack design depends on it"
                ),
            ));
            continue;
        }
        for (_, path, line, has_counter, has_send) in found {
            if !has_counter || !has_send {
                let lacks = match (has_counter, has_send) {
                    (false, false) => "a retry counter or a send",
                    (false, true) => "a retry counter",
                    _ => "a send",
                };
                diags.push(Diagnostic {
                    rule: name::PROTOCOL_ACK_DISCIPLINE,
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "retransmission function `{rf}` no longer contains {lacks}; \
                         a silent refactor here orphans the recovery path the \
                         implicit-ack protocol depends on"
                    ),
                    witness: Vec::new(),
                });
            }
        }
    }

    let report = Report {
        types: spec.types.clone(),
        transitions: spec.transitions.clone(),
        coverage_allowlist: spec.coverage_allowlist.clone(),
        construction_sites: facts.constructions.len(),
        dispatch_sites: facts.dispatches.len(),
        flag_read_sites: facts.flag_reads.len(),
        ack_sites: facts.ack_sites.len(),
    };
    (diags, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
[packet-types]
types = ["Call", "Result"]

[flags]
order = ["please_ack", "last_fragment"]

[scope]
files = ["src"]
handler-files = ["src/handler.rs"]

[handlers]
Call = ["handle_call"]
Result = ["deliver"]

[flag-reads]
Call = ["last_fragment"]
Result = []

[ack-discipline]
allowed-callers = ["handle_call"]
retransmit-functions = ["transact"]

[transitions]
legal = [
    "server-new Call last_fragment -> dispatch",
]

[coverage]
allowlist = []
"#;

    fn scan(spec: &ProtocolSpec, files: &[(&str, &str)]) -> ProtocolFacts {
        let mut facts = ProtocolFacts::default();
        for (path, text) in files {
            scan_file(&SourceFile::new(path, text), spec, &mut facts);
        }
        facts
    }

    /// A minimal conforming implementation for the test spec.
    const GOOD_HANDLER: &str = "fn handle_call(rpc: &RpcHeader) {\n\
        if rpc.flags.last_fragment { dispatch(); }\n\
        let a = RpcHeader::ack_for(rpc);\n\
        }\n\
        fn deliver(pkt: Packet) {\n\
        match pkt.rpc.packet_type {\n\
        PacketType::Call => route(pkt),\n\
        PacketType::Result => accept(pkt),\n\
        }\n\
        }\n\
        fn transact() { let mut attempts = 0; send_built(&b); }\n\
        fn build() -> RpcHeader {\n\
        RpcHeader { packet_type: PacketType::Call, flags: f(), last_fragment: true }\n\
        }\n\
        fn build_res() -> RpcHeader {\n\
        RpcHeader { packet_type: PacketType::Result, data_len: 0 }\n\
        }\n";

    #[test]
    fn spec_parses_every_section() {
        let spec = ProtocolSpec::from_toml(SPEC);
        assert_eq!(spec.types, vec!["Call", "Result"]);
        assert_eq!(spec.flag_order.len(), 2);
        assert_eq!(spec.handlers["Call"], vec!["handle_call"]);
        assert_eq!(spec.flag_reads["Result"], Vec::<String>::new());
        assert_eq!(spec.transitions.len(), 1);
        assert_eq!(
            spec.transitions[0],
            "server-new Call last_fragment -> dispatch"
        );
        assert!(spec.coverage_allowlist.is_empty());
    }

    #[test]
    fn conforming_sources_are_clean() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let facts = scan(&spec, &[("src/handler.rs", GOOD_HANDLER)]);
        let (diags, report) = evaluate(&facts, &spec);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(report.transitions.len(), 1);
        assert!(report.construction_sites >= 2);
    }

    #[test]
    fn missing_construction_or_arm_fires_unhandled_type() {
        let spec = ProtocolSpec::from_toml(SPEC);
        // `Result` is matched but never constructed.
        let src = "fn deliver(pkt: Packet) {\n\
            match pkt.rpc.packet_type {\n\
            PacketType::Call => route(pkt),\n\
            PacketType::Result => accept(pkt),\n\
            }\n\
            }\n\
            fn handle_call(rpc: &RpcHeader) { let _ = rpc.flags.last_fragment; }\n\
            fn transact() { let mut attempts = 0; send_built(&b); }\n\
            fn build() -> RpcHeader {\n\
            RpcHeader { packet_type: PacketType::Call }\n\
            }\n";
        let facts = scan(&spec, &[("src/handler.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == name::PROTOCOL_UNHANDLED_TYPE && d.message.contains("`Result`")),
            "{diags:?}"
        );
    }

    #[test]
    fn incomplete_match_fires_missing_arm() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let src = "fn route(pkt: Packet) {\n\
            match pkt.rpc.packet_type {\n\
            PacketType::Call => go(pkt),\n\
            }\n\
            }\n";
        let facts = scan(&spec, &[("src/route.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        let hit = diags
            .iter()
            .find(|d| d.rule == name::PROTOCOL_MISSING_ARM)
            .expect("missing-arm fires");
        assert_eq!(hit.line, 2);
        assert!(hit.message.contains("`Result`"));
    }

    #[test]
    fn wildcard_satisfies_missing_arm() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let src = "fn route(pkt: Packet) {\n\
            match pkt.rpc.packet_type {\n\
            PacketType::Call => go(pkt),\n\
            _ => drop(pkt),\n\
            }\n\
            }\n";
        let facts = scan(&spec, &[("src/route.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        assert!(!diags.iter().any(|d| d.rule == name::PROTOCOL_MISSING_ARM));
    }

    #[test]
    fn undeclared_flag_set_fires_unread_flag() {
        let spec = ProtocolSpec::from_toml(SPEC);
        // `please_ack` is set on a Result, whose flag-reads list is
        // empty: the bit is dead on the wire.
        let src = "fn build() -> RpcHeader {\n\
            RpcHeader { packet_type: PacketType::Result, please_ack: true }\n\
            }\n";
        let facts = scan(&spec, &[("src/build.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        let hit = diags
            .iter()
            .find(|d| d.rule == name::PROTOCOL_UNREAD_FLAG && d.path == "src/build.rs")
            .expect("unread-flag fires");
        assert_eq!(hit.line, 2);
        assert!(hit.message.contains("please_ack"));
    }

    #[test]
    fn unread_declared_flag_fires_at_the_handler() {
        let spec = ProtocolSpec::from_toml(SPEC);
        // handle_call never reads flags.last_fragment.
        let src = "fn handle_call(rpc: &RpcHeader) { dispatch(); }\n";
        let facts = scan(&spec, &[("src/handler.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        let hit = diags
            .iter()
            .find(|d| d.rule == name::PROTOCOL_UNREAD_FLAG && d.message.contains("handle_call"))
            .expect("unread declared flag fires");
        assert_eq!(hit.path, "src/handler.rs");
    }

    #[test]
    fn ack_from_unlisted_caller_fires_ack_discipline() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let src = "fn rogue(rpc: &RpcHeader) { let a = RpcHeader::ack_for(rpc); }\n";
        let facts = scan(&spec, &[("src/rogue.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == name::PROTOCOL_ACK_DISCIPLINE && d.message.contains("rogue")),
            "{diags:?}"
        );
    }

    #[test]
    fn gutted_retransmit_function_fires_ack_discipline() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let src = "fn transact() { just_once(); }\n";
        let facts = scan(&spec, &[("src/client.rs", src)]);
        let (diags, _) = evaluate(&facts, &spec);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == name::PROTOCOL_ACK_DISCIPLINE
                    && d.message.contains("transact")
                    && d.path == "src/client.rs"),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_retransmit_function_fires_at_the_spec() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let facts = scan(&spec, &[("src/empty.rs", "fn other() {}\n")]);
        let (diags, _) = evaluate(&facts, &spec);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == name::PROTOCOL_ACK_DISCIPLINE && d.path == "protocol.toml"),
            "{diags:?}"
        );
    }

    #[test]
    fn comparisons_and_test_code_are_not_constructions() {
        let spec = ProtocolSpec::from_toml(SPEC);
        let src = "fn is_res(rpc: &RpcHeader) -> bool { rpc.packet_type == PacketType::Result }\n\
            #[cfg(test)]\n\
            mod tests {\n\
            fn t() { let h = RpcHeader { packet_type: PacketType::Result }; }\n\
            }\n";
        let facts = scan(&spec, &[("src/q.rs", src)]);
        assert!(
            !facts.constructions.iter().any(|(t, ..)| t == "Result"),
            "{:?}",
            facts.constructions
        );
    }
}
