//! Lint configuration: compiled-in defaults plus a `lint.toml` overlay.
//!
//! The checked-in `lint.toml` at the workspace root is the source of
//! truth for the fast-path entry points and scope snapshot, the global
//! lock order, the blocking-call list, and the banned dependency list.
//! The compiled-in defaults are kept identical so the engine still runs
//! sensibly if the file is absent (e.g. when linting a fixture tree in
//! tests).
//!
//! Only the TOML subset the config needs is parsed: `[section]`
//! headers, `key = "string"`, and `key = ["a", "b", ...]` arrays
//! (single- or multi-line). Unknown sections and keys are ignored, so
//! the file can carry commentary for future rules.

use std::collections::HashMap;

/// One lock class: a rank in the global order plus the receiver field
/// names that acquire it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockClass {
    /// Class name as declared in the order (e.g. `calltable`).
    pub name: String,
    /// Identifiers of fields whose `.lock()`/`.read()`/`.write()`
    /// acquire this class (e.g. `entries`, `state`).
    pub receivers: Vec<String>,
    /// Parametric classes are arrays of same-class locks acquired via
    /// an index (`shards[i].lock()`). Instances must be acquired in
    /// ascending index order; each constant index becomes its own
    /// `class[N]` node in the lock graph.
    pub parametric: bool,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fast-path entry points as `path::fn` pairs — the roots of the
    /// call-graph reachability walk (Starter, Transporter, demux,
    /// Ender; see docs/LINTS.md).
    pub fast_path_entry_points: Vec<String>,
    /// Snapshot of the computed fast-path file set. `no-panic-on-fast-
    /// path` and `no-alloc-on-fast-path` apply whole-file here; the
    /// `stale-scope` rule flags any drift between this list and the
    /// computed reachability set.
    pub fast_path_files: Vec<String>,
    /// Reachability boundary: calls into these paths are not followed
    /// (the IDL marshalling engine allocates by design and is measured
    /// as its own step in the latency account).
    pub fast_path_stop_files: Vec<String>,
    /// Substrings marking a line as error construction — allocation
    /// there is exempt from `no-alloc-on-fast-path`, because error
    /// paths are off the fast path by definition.
    pub error_markers: Vec<String>,
    /// Lock classes in their global acquisition order.
    pub lock_order: Vec<LockClass>,
    /// Path prefixes where `lock-order` applies (and where lock-graph
    /// edges are recorded).
    pub lock_files: Vec<String>,
    /// Path prefixes where `no-blocking-under-lock` applies.
    pub blocking_files: Vec<String>,
    /// Called identifiers that can block the current thread. `send` is
    /// special-cased in the rule (only `transport.send`/`socket.send`
    /// block; channel sends are unbounded and never do).
    pub blocking_calls: Vec<String>,
    /// Banned registry crates for `hermetic-deps`.
    pub banned_deps: Vec<String>,
    /// Path prefixes where the condvar-protocol rules apply. The
    /// primitive implementations in `crates/sync/src/lib.rs` are
    /// excluded: they *are* the wait/notify machinery.
    pub condvar_files: Vec<String>,
    /// Path prefixes where `atomic-publication` applies.
    pub atomic_files: Vec<String>,
    /// Atomic location identifiers sanctioned to use `Relaxed` where
    /// paired ordering would otherwise be required. Each entry needs a
    /// protocol proof (comment in lint.toml / SAFETY comment at the
    /// site); hook.rs's disabled-path `INSTALLED` load is the canonical
    /// member.
    pub allow_relaxed: Vec<String>,
    /// Path prefixes where `pool-lifecycle` applies.
    pub pool_files: Vec<String>,
    /// Pool receiver fields (an alloc off one of these is a tracked
    /// buffer definition; retention inside one is accounted).
    pub pool_receivers: Vec<String>,
    /// Method names that allocate a tracked buffer from a pool.
    pub pool_allocs: Vec<String>,
    /// Method names that return a tracked buffer to its pool.
    pub pool_sinks: Vec<String>,
    /// Container receiver fields where retention is accounted (the
    /// pool's own queues, the call table's `Retained` slot, result
    /// delivery): the checker's outstanding accounting covers them.
    pub pool_accounted: Vec<String>,
    /// Type names that move pool ownership across a call boundary when
    /// taken by value — the interprocedural leg of the tracking.
    pub buffer_types: Vec<String>,
    /// Maps dynamic publication labels (checked_atomic labels observed
    /// by firefly-check) to the static location identifiers that
    /// implement them, for the verify.sh cross-diff.
    pub publication_labels: Vec<(String, Vec<String>)>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            fast_path_entry_points: vec![
                "crates/core/src/client.rs::call_inner".into(),
                "crates/core/src/client.rs::transact_single".into(),
                "crates/core/src/client.rs::transact_multi".into(),
                "crates/core/src/client.rs::transact_blast".into(),
                "crates/core/src/endpoint.rs::demux_loop".into(),
                "crates/core/src/calltable.rs::deliver".into(),
                "crates/core/src/calltable.rs::wait".into(),
                "crates/core/src/calltable.rs::wait_spinning".into(),
                "crates/core/src/server.rs::handle_call_packet".into(),
                "crates/core/src/server.rs::handle_probe".into(),
                "crates/core/src/server.rs::handle_result_ack".into(),
                "crates/core/src/server.rs::worker_loop".into(),
                "crates/core/src/transport.rs::send".into(),
                "crates/core/src/transport.rs::recv".into(),
            ],
            fast_path_files: vec![
                "crates/core/src/auth.rs".into(),
                "crates/core/src/client.rs".into(),
                "crates/core/src/server.rs".into(),
                "crates/core/src/transport.rs".into(),
                "crates/core/src/send.rs".into(),
                "crates/core/src/packet.rs".into(),
                "crates/core/src/fragment.rs".into(),
                "crates/core/src/calltable.rs".into(),
                "crates/core/src/endpoint.rs".into(),
                "crates/core/src/shard.rs".into(),
                "crates/core/src/trace.rs".into(),
                "crates/core/src/stats.rs".into(),
                "crates/core/src/witness.rs".into(),
                "crates/pool/src/lib.rs".into(),
                "crates/sync/src/lib.rs".into(),
                "crates/sync/src/hook.rs".into(),
                "crates/sync/src/atomic.rs".into(),
                "crates/rng/src/lib.rs".into(),
                "crates/wire/src".into(),
            ],
            fast_path_stop_files: vec![
                "crates/idl/src".into(),
                "crates/check/src".into(),
                "crates/metrics/src".into(),
            ],
            error_markers: vec![
                "Err(".into(),
                "RpcError::".into(),
                "WireError::".into(),
                "IdlError::".into(),
                "PoolError::".into(),
                "map_err".into(),
                "ok_or_else".into(),
            ],
            lock_order: vec![
                LockClass {
                    name: "calltable".into(),
                    receivers: vec![
                        "entries".into(),
                        "state".into(),
                        "activities".into(),
                        "calls".into(),
                    ],
                    parametric: false,
                },
                LockClass {
                    name: "shard".into(),
                    receivers: vec!["shards".into()],
                    parametric: true,
                },
                LockClass {
                    name: "pool".into(),
                    receivers: vec!["free".into(), "receive_queue".into()],
                    parametric: false,
                },
                LockClass {
                    name: "stats".into(),
                    receivers: vec![
                        "stats".into(),
                        "frames_sent".into(),
                        "frames_dropped".into(),
                    ],
                    parametric: false,
                },
                LockClass {
                    name: "trace".into(),
                    receivers: vec!["ring".into()],
                    parametric: false,
                },
            ],
            lock_files: vec!["crates/core/src".into(), "crates/pool/src".into()],
            blocking_files: vec!["crates/core/src".into(), "crates/pool/src".into()],
            blocking_calls: vec![
                "recv".into(),
                "recv_from".into(),
                "wait".into(),
                "wait_until".into(),
                "wait_timeout".into(),
                "park".into(),
                "test_sleep".into(),
                "send_to".into(),
                "send_built".into(),
                "send_ack".into(),
                "join".into(),
            ],
            banned_deps: vec![
                "parking_lot".into(),
                "crossbeam".into(),
                "crossbeam-channel".into(),
                "rand".into(),
                "rand_core".into(),
                "proptest".into(),
                "criterion".into(),
            ],
            condvar_files: vec![
                "crates/core/src".into(),
                "crates/pool/src".into(),
                "crates/sync/src/channel.rs".into(),
            ],
            atomic_files: vec![
                "crates/core/src".into(),
                "crates/sync/src".into(),
                "crates/pool/src".into(),
            ],
            allow_relaxed: vec!["INSTALLED".into()],
            pool_files: vec!["crates/core/src".into(), "crates/pool/src".into()],
            pool_receivers: vec!["pool".into()],
            pool_allocs: vec![
                "alloc".into(),
                "alloc_timeout".into(),
                "alloc_from".into(),
                "alloc_timeout_from".into(),
                "take_receive_buffer".into(),
                "take_receive_buffer_from".into(),
            ],
            pool_sinks: vec![
                "recycle".into(),
                "recycle_to_receive_queue".into(),
                "return_slab".into(),
                "into_buf".into(),
            ],
            pool_accounted: vec![
                "free".into(),
                "receive_queue".into(),
                "retained".into(),
                "results".into(),
            ],
            buffer_types: vec!["PacketBuf".into()],
            publication_labels: vec![("installed".into(), vec!["INSTALLED".into()])],
        }
    }
}

impl Config {
    /// Parses a `lint.toml` overlay on top of the defaults. Keys that
    /// are present replace the corresponding default wholesale.
    pub fn from_toml(text: &str) -> Config {
        let mut config = Config::default();
        let sections = parse_sections(text);
        if let Some(s) = sections.get("fast-path") {
            if let Some(v) = s.get("entry_points") {
                config.fast_path_entry_points = v.clone();
            }
            if let Some(v) = s.get("files") {
                config.fast_path_files = v.clone();
            }
            if let Some(v) = s.get("stop_files") {
                config.fast_path_stop_files = v.clone();
            }
        }
        if let Some(s) = sections.get("no-alloc-on-fast-path") {
            if let Some(v) = s.get("error_markers") {
                config.error_markers = v.clone();
            }
        }
        if let Some(s) = sections.get("lock-order") {
            if let Some(order) = s.get("order") {
                let parametric = s.get("parametric").cloned().unwrap_or_default();
                config.lock_order = order
                    .iter()
                    .map(|name| LockClass {
                        name: name.clone(),
                        receivers: s.get(name.as_str()).cloned().unwrap_or_default(),
                        parametric: parametric.iter().any(|p| p == name),
                    })
                    .collect();
            }
            if let Some(v) = s.get("files") {
                config.lock_files = v.clone();
                // The blocking rule rides the lock scope unless it
                // declares its own.
                config.blocking_files = v.clone();
            }
        }
        if let Some(s) = sections.get("no-blocking-under-lock") {
            if let Some(v) = s.get("files") {
                config.blocking_files = v.clone();
            }
            if let Some(v) = s.get("blocking") {
                config.blocking_calls = v.clone();
            }
        }
        if let Some(s) = sections.get("hermetic-deps") {
            if let Some(v) = s.get("banned") {
                config.banned_deps = v.clone();
            }
        }
        if let Some(s) = sections.get("condvar-protocol") {
            if let Some(v) = s.get("files") {
                config.condvar_files = v.clone();
            }
        }
        if let Some(s) = sections.get("atomic-publication") {
            if let Some(v) = s.get("files") {
                config.atomic_files = v.clone();
            }
            if let Some(v) = s.get("allow_relaxed") {
                config.allow_relaxed = v.clone();
            }
        }
        if let Some(s) = sections.get("pool-lifecycle") {
            if let Some(v) = s.get("files") {
                config.pool_files = v.clone();
            }
            if let Some(v) = s.get("pools") {
                config.pool_receivers = v.clone();
            }
            if let Some(v) = s.get("allocs") {
                config.pool_allocs = v.clone();
            }
            if let Some(v) = s.get("sinks") {
                config.pool_sinks = v.clone();
            }
            if let Some(v) = s.get("accounted") {
                config.pool_accounted = v.clone();
            }
            if let Some(v) = s.get("buffer_types") {
                config.buffer_types = v.clone();
            }
        }
        if let Some(s) = sections.get("publication-labels") {
            if !s.is_empty() {
                let mut labels: Vec<(String, Vec<String>)> = s
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                labels.sort();
                config.publication_labels = labels;
            }
        }
        config
    }

    /// True when `rel_path` falls under any of the given prefixes.
    pub fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            rel_path == p || rel_path.starts_with(&format!("{p}/")) || rel_path.starts_with(p)
        })
    }
}

/// `[section] → key → list-of-strings` (a bare string parses as a
/// one-element list). Shared with the protocol-conformance pass, whose
/// `protocol.toml` uses the same TOML subset.
pub(crate) fn parse_sections(text: &str) -> HashMap<String, HashMap<String, Vec<String>>> {
    let mut sections: HashMap<String, HashMap<String, Vec<String>>> = HashMap::new();
    let mut current = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            current = line.trim_matches(['[', ']']).to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let mut value = value.trim().to_string();
        // Accumulate a multi-line array until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for more in lines.by_ref() {
                let more = strip_toml_comment(more).trim().to_string();
                value.push(' ');
                value.push_str(&more);
                if more.ends_with(']') {
                    break;
                }
            }
        }
        let items = parse_value(&value);
        sections.entry(current.clone()).or_default().insert(key, items);
    }
    sections
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"x"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Vec<String> {
    let value = value.trim();
    let inner = if value.starts_with('[') && value.ends_with(']') {
        &value[1..value.len() - 1]
    } else {
        value
    };
    inner
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_fast_path_modules() {
        let c = Config::default();
        assert!(Config::path_matches(
            "crates/core/src/calltable.rs",
            &c.fast_path_files
        ));
        assert!(Config::path_matches(
            "crates/wire/src/frame.rs",
            &c.fast_path_files
        ));
        assert!(!Config::path_matches(
            "crates/sim/src/engine.rs",
            &c.fast_path_files
        ));
        // channel.rs is deliberately outside the fast path (the demux
        // hand-off never blocks on an unbounded channel's send side,
        // and its recv runs on worker threads).
        assert!(!Config::path_matches(
            "crates/sync/src/channel.rs",
            &c.fast_path_files
        ));
        assert_eq!(c.lock_order.len(), 5);
        assert_eq!(c.lock_order[0].name, "calltable");
        assert_eq!(c.lock_order[4].name, "trace");
        // Exactly one parametric class, ranked right after calltable.
        let parametric: Vec<&str> = c
            .lock_order
            .iter()
            .filter(|cls| cls.parametric)
            .map(|cls| cls.name.as_str())
            .collect();
        assert_eq!(parametric, vec!["shard"]);
        assert_eq!(c.lock_order[1].name, "shard");
        assert!(c.blocking_calls.iter().any(|b| b == "wait_until"));
    }

    #[test]
    fn toml_overlay_replaces_lists() {
        let toml = r#"
# a comment
[fast-path]
entry_points = ["a/b.rs::run"]
files = [
    "a/b.rs",  # trailing comment
    "c",
]
stop_files = ["d"]

[lock-order]
order = ["alpha", "beta"]
parametric = ["beta"]
alpha = ["x"]
beta = ["y", "z"]
files = ["src"]

[hermetic-deps]
banned = ["tokio"]
"#;
        let c = Config::from_toml(toml);
        assert_eq!(c.fast_path_entry_points, vec!["a/b.rs::run"]);
        assert_eq!(c.fast_path_files, vec!["a/b.rs", "c"]);
        assert_eq!(c.fast_path_stop_files, vec!["d"]);
        assert_eq!(c.lock_order.len(), 2);
        assert_eq!(c.lock_order[1].name, "beta");
        assert_eq!(c.lock_order[1].receivers, vec!["y", "z"]);
        assert!(!c.lock_order[0].parametric);
        assert!(c.lock_order[1].parametric);
        assert_eq!(c.lock_files, vec!["src"]);
        // Without its own section the blocking scope follows lock-order.
        assert_eq!(c.blocking_files, vec!["src"]);
        assert_eq!(c.banned_deps, vec!["tokio"]);
        // Untouched sections keep their defaults.
        assert!(!c.error_markers.is_empty());
        assert!(!c.blocking_calls.is_empty());
    }

    #[test]
    fn blocking_section_overrides_scope_and_calls() {
        let toml = "[no-blocking-under-lock]\nfiles = [\"x\"]\nblocking = [\"recv\"]\n";
        let c = Config::from_toml(toml);
        assert_eq!(c.blocking_files, vec!["x"]);
        assert_eq!(c.blocking_calls, vec!["recv"]);
    }

    #[test]
    fn dataflow_sections_overlay_the_defaults() {
        let toml = r#"
[condvar-protocol]
files = ["src"]

[atomic-publication]
files = ["src"]
allow_relaxed = ["SANCTIONED"]

[pool-lifecycle]
files = ["src"]
pools = ["pool"]
allocs = ["alloc"]
sinks = ["recycle"]
accounted = ["free"]
buffer_types = ["Buf"]

[publication-labels]
installed = ["INSTALLED"]
gate = ["GATE_WORD"]
"#;
        let c = Config::from_toml(toml);
        assert_eq!(c.condvar_files, vec!["src"]);
        assert_eq!(c.atomic_files, vec!["src"]);
        assert_eq!(c.allow_relaxed, vec!["SANCTIONED"]);
        assert_eq!(c.pool_files, vec!["src"]);
        assert_eq!(c.pool_receivers, vec!["pool"]);
        assert_eq!(c.pool_allocs, vec!["alloc"]);
        assert_eq!(c.pool_sinks, vec!["recycle"]);
        assert_eq!(c.pool_accounted, vec!["free"]);
        assert_eq!(c.buffer_types, vec!["Buf"]);
        assert_eq!(
            c.publication_labels,
            vec![
                ("gate".to_string(), vec!["GATE_WORD".to_string()]),
                ("installed".to_string(), vec!["INSTALLED".to_string()]),
            ]
        );
    }

    #[test]
    fn dataflow_defaults_cover_the_runtime_modules() {
        let c = Config::default();
        assert!(Config::path_matches("crates/pool/src/lib.rs", &c.condvar_files));
        assert!(!Config::path_matches("crates/sync/src/lib.rs", &c.condvar_files));
        assert!(Config::path_matches("crates/sync/src/hook.rs", &c.atomic_files));
        assert!(c.allow_relaxed.iter().any(|a| a == "INSTALLED"));
        assert!(c.pool_allocs.iter().any(|a| a == "alloc_timeout_from"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let toml = "[s]\nfiles = [\"a#b\"]\n";
        let c = Config::from_toml(toml);
        // Section `s` is unknown; just proving the parser didn't choke.
        assert!(!c.fast_path_files.is_empty());
        let sections = parse_sections(toml);
        assert_eq!(sections["s"]["files"], vec!["a#b"]);
    }
}
