//! Lint configuration: compiled-in defaults plus a `lint.toml` overlay.
//!
//! The checked-in `lint.toml` at the workspace root is the source of
//! truth for which files are on the fast path, the global lock order,
//! and the banned dependency list. The compiled-in defaults are kept
//! identical so the engine still runs sensibly if the file is absent
//! (e.g. when linting a fixture tree in tests).
//!
//! Only the TOML subset the config needs is parsed: `[section]`
//! headers, `key = "string"`, and `key = ["a", "b", ...]` arrays
//! (single- or multi-line). Unknown sections and keys are ignored, so
//! the file can carry commentary for future rules.

use std::collections::HashMap;

/// One lock class: a rank in the global order plus the receiver field
/// names that acquire it.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Class name as declared in the order (e.g. `calltable`).
    pub name: String,
    /// Identifiers of fields whose `.lock()`/`.read()`/`.write()`
    /// acquire this class (e.g. `entries`, `state`).
    pub receivers: Vec<String>,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// where `no-panic-on-fast-path` applies.
    pub no_panic_files: Vec<String>,
    /// Path prefixes where `no-alloc-on-fast-path` applies.
    pub no_alloc_files: Vec<String>,
    /// Substrings marking a line as error construction — allocation
    /// there is exempt from `no-alloc-on-fast-path`, because error
    /// paths are off the fast path by definition.
    pub error_markers: Vec<String>,
    /// Lock classes in their global acquisition order.
    pub lock_order: Vec<LockClass>,
    /// Path prefixes where `lock-order` applies.
    pub lock_files: Vec<String>,
    /// Banned registry crates for `hermetic-deps`.
    pub banned_deps: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            no_panic_files: vec![
                "crates/core/src/client.rs".into(),
                "crates/core/src/server.rs".into(),
                "crates/core/src/transport.rs".into(),
                "crates/core/src/send.rs".into(),
                "crates/core/src/packet.rs".into(),
                "crates/core/src/fragment.rs".into(),
                "crates/core/src/calltable.rs".into(),
                "crates/core/src/endpoint.rs".into(),
                "crates/core/src/trace.rs".into(),
                "crates/wire/src".into(),
            ],
            no_alloc_files: vec![
                "crates/core/src/client.rs".into(),
                "crates/core/src/server.rs".into(),
                "crates/core/src/transport.rs".into(),
                "crates/core/src/send.rs".into(),
                "crates/core/src/packet.rs".into(),
                "crates/core/src/fragment.rs".into(),
                "crates/core/src/calltable.rs".into(),
                "crates/core/src/endpoint.rs".into(),
                "crates/core/src/trace.rs".into(),
                "crates/wire/src".into(),
            ],
            error_markers: vec![
                "Err(".into(),
                "RpcError::".into(),
                "WireError::".into(),
                "IdlError::".into(),
                "PoolError::".into(),
                "map_err".into(),
                "ok_or_else".into(),
            ],
            lock_order: vec![
                LockClass {
                    name: "calltable".into(),
                    receivers: vec![
                        "entries".into(),
                        "state".into(),
                        "activities".into(),
                        "calls".into(),
                    ],
                },
                LockClass {
                    name: "pool".into(),
                    receivers: vec!["free".into(), "receive_queue".into()],
                },
                LockClass {
                    name: "stats".into(),
                    receivers: vec![
                        "stats".into(),
                        "frames_sent".into(),
                        "frames_dropped".into(),
                    ],
                },
                LockClass {
                    name: "trace".into(),
                    receivers: vec!["ring".into()],
                },
            ],
            lock_files: vec!["crates/core/src".into(), "crates/pool/src".into()],
            banned_deps: vec![
                "parking_lot".into(),
                "crossbeam".into(),
                "crossbeam-channel".into(),
                "rand".into(),
                "rand_core".into(),
                "proptest".into(),
                "criterion".into(),
            ],
        }
    }
}

impl Config {
    /// Parses a `lint.toml` overlay on top of the defaults. Keys that
    /// are present replace the corresponding default wholesale.
    pub fn from_toml(text: &str) -> Config {
        let mut config = Config::default();
        let sections = parse_sections(text);
        if let Some(s) = sections.get("no-panic-on-fast-path") {
            if let Some(v) = s.get("files") {
                config.no_panic_files = v.clone();
            }
        }
        if let Some(s) = sections.get("no-alloc-on-fast-path") {
            if let Some(v) = s.get("files") {
                config.no_alloc_files = v.clone();
            }
            if let Some(v) = s.get("error_markers") {
                config.error_markers = v.clone();
            }
        }
        if let Some(s) = sections.get("lock-order") {
            if let Some(order) = s.get("order") {
                config.lock_order = order
                    .iter()
                    .map(|name| LockClass {
                        name: name.clone(),
                        receivers: s.get(name.as_str()).cloned().unwrap_or_default(),
                    })
                    .collect();
            }
            if let Some(v) = s.get("files") {
                config.lock_files = v.clone();
            }
        }
        if let Some(s) = sections.get("hermetic-deps") {
            if let Some(v) = s.get("banned") {
                config.banned_deps = v.clone();
            }
        }
        config
    }

    /// True when `rel_path` falls under any of the given prefixes.
    pub fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            rel_path == p || rel_path.starts_with(&format!("{p}/")) || rel_path.starts_with(p)
        })
    }
}

/// `[section] → key → list-of-strings` (a bare string parses as a
/// one-element list).
fn parse_sections(text: &str) -> HashMap<String, HashMap<String, Vec<String>>> {
    let mut sections: HashMap<String, HashMap<String, Vec<String>>> = HashMap::new();
    let mut current = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            current = line.trim_matches(['[', ']']).to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let mut value = value.trim().to_string();
        // Accumulate a multi-line array until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for more in lines.by_ref() {
                let more = strip_toml_comment(more).trim().to_string();
                value.push(' ');
                value.push_str(&more);
                if more.ends_with(']') {
                    break;
                }
            }
        }
        let items = parse_value(&value);
        sections.entry(current.clone()).or_default().insert(key, items);
    }
    sections
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"x"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Vec<String> {
    let value = value.trim();
    let inner = if value.starts_with('[') && value.ends_with(']') {
        &value[1..value.len() - 1]
    } else {
        value
    };
    inner
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_fast_path_modules() {
        let c = Config::default();
        assert!(Config::path_matches(
            "crates/core/src/calltable.rs",
            &c.no_panic_files
        ));
        assert!(Config::path_matches(
            "crates/wire/src/frame.rs",
            &c.no_panic_files
        ));
        assert!(!Config::path_matches(
            "crates/sim/src/engine.rs",
            &c.no_panic_files
        ));
        assert_eq!(c.lock_order.len(), 4);
        assert_eq!(c.lock_order[0].name, "calltable");
        assert_eq!(c.lock_order[3].name, "trace");
    }

    #[test]
    fn toml_overlay_replaces_lists() {
        let toml = r#"
# a comment
[no-panic-on-fast-path]
files = [
    "a/b.rs",  # trailing comment
    "c",
]

[lock-order]
order = ["alpha", "beta"]
alpha = ["x"]
beta = ["y", "z"]
files = ["src"]

[hermetic-deps]
banned = ["tokio"]
"#;
        let c = Config::from_toml(toml);
        assert_eq!(c.no_panic_files, vec!["a/b.rs", "c"]);
        assert_eq!(c.lock_order.len(), 2);
        assert_eq!(c.lock_order[1].name, "beta");
        assert_eq!(c.lock_order[1].receivers, vec!["y", "z"]);
        assert_eq!(c.lock_files, vec!["src"]);
        assert_eq!(c.banned_deps, vec!["tokio"]);
        // Untouched sections keep their defaults.
        assert!(!c.no_alloc_files.is_empty());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let toml = "[s]\nfiles = [\"a#b\"]\n";
        let c = Config::from_toml(toml);
        // Section `s` is unknown; just proving the parser didn't choke.
        assert!(!c.no_panic_files.is_empty());
        let sections = parse_sections(toml);
        assert_eq!(sections["s"]["files"], vec!["a#b"]);
    }
}
