//! A lightweight, panic-free Rust tokenizer for lint rules.
//!
//! Rules must never fire on text inside string literals, char literals,
//! or comments ("call `unwrap` here" in a doc comment is not a
//! violation), so the tokenizer understands exactly enough Rust lexical
//! structure to classify every byte: line and block comments (nested),
//! plain/raw/byte string literals, char literals vs. lifetimes,
//! identifiers, numbers and punctuation.
//!
//! It is deliberately forgiving: unterminated literals or comments
//! consume to end of input instead of erroring, and any byte sequence —
//! valid Rust or not — tokenizes without panicking (a propcheck property
//! in `tests/lint.rs` drives arbitrary inputs through it).

/// What a token is, as far as lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `unsafe`, ...).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal.
    Number,
    /// A string, raw string, byte string or char literal.
    Literal,
    /// A single punctuation character (`.`, `:`, `!`, `{`, ...).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text (for literals, including delimiters).
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// One `//` comment with its 1-based line and text (after the slashes).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment appears on.
    pub line: usize,
    /// Comment body, excluding the leading `//` (and `/`/`!` of doc
    /// comments).
    pub text: String,
}

/// Token stream plus the line comments, which carry `lint:allow(...)`
/// suppressions and `SAFETY:` justifications.
#[derive(Debug, Default)]
pub struct Tokenized {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Tokenizes `source`. Never panics, for any input.
pub fn tokenize(source: &str) -> Tokenized {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Tokenized::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment (includes /// and //! doc comments).
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let mut text: String = chars[start..j].iter().collect();
                // Strip the extra doc-comment marker so `///x` and `//!x`
                // read as `x`-ish bodies.
                if let Some(rest) = text.strip_prefix('/') {
                    text = rest.to_string();
                } else if let Some(rest) = text.strip_prefix('!') {
                    text = rest.to_string();
                }
                out.comments.push(LineComment { line, text });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, lines) = scan_string(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..j.min(n)].iter().collect(),
                    line,
                });
                line += lines;
                i = j;
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`).
                if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    // `'static`, `'a` — a lifetime unless closed by a
                    // quote right after one identifier char (`'a'`).
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' && j == i + 2 {
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: chars[i..=j].iter().collect(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: chars[i..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to the
                    // closing quote, honoring backslash escapes.
                    let mut j = i + 1;
                    while j < n {
                        if chars[j] == '\\' {
                            j += 2;
                        } else if chars[j] == '\'' || chars[j] == '\n' {
                            break;
                        } else {
                            j += 1;
                        }
                    }
                    // An unterminated literal stops *before* the newline
                    // so the main loop still counts it — otherwise every
                    // diagnostic line number after it would drift by one.
                    let end = if j < n && chars[j] == '\'' {
                        j + 1
                    } else {
                        j.min(n)
                    };
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: chars[i..end.min(n)].iter().collect(),
                        line,
                    });
                    i = end;
                }
            }
            'r' | 'b' if is_literal_prefix(&chars, i) => {
                let (j, lines) = scan_prefixed_literal(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..j.min(n)].iter().collect(),
                    line,
                });
                line += lines;
                i = j;
            }
            'r' if i + 2 < n
                && chars[i + 1] == '#'
                && (chars[i + 2].is_alphabetic() || chars[i + 2] == '_') =>
            {
                // Raw identifier `r#type`, `r#fn`: one Ident token whose
                // text is the part after `r#`. Tokenizing it as `r`, `#`,
                // `fn` would inject a phantom keyword into the stream and
                // poison fn-definition extraction.
                let mut j = i + 3;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[i + 2..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && j + 1 < n
                        && chars[j + 1].is_ascii_digit()
                        && !chars[i..j].contains(&'.')
                    {
                        // One decimal point, only when followed by a
                        // digit — keeps `0..5` as two numbers.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when the `r`/`b` at `i` starts a raw/byte literal (`r"`, `r#"`,
/// `b"`, `b'`, `br"`, `br#"`).
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && (chars[j] == '"' || chars[j] == '\'') {
            return true;
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
        return j < n && chars[j] == '"';
    }
    false
}

/// Scans a plain string literal starting at the `"` in position `i`.
/// Returns (index one past the closing quote, newlines consumed).
fn scan_string(chars: &[char], i: usize) -> (usize, usize) {
    let n = chars.len();
    let mut j = i + 1;
    let mut lines = 0;
    while j < n {
        match chars[j] {
            // An escape may hide a newline (`\` line continuation);
            // keep the line count honest either way.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    lines += 1;
                }
                j += 2;
            }
            '"' => return (j + 1, lines),
            '\n' => {
                lines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, lines)
}

/// Scans a raw/byte literal starting at its `r`/`b` prefix.
fn scan_prefixed_literal(chars: &[char], i: usize) -> (usize, usize) {
    let n = chars.len();
    let mut j = i;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == '\'' {
        // Byte char literal b'x' / b'\n'.
        let mut k = j + 1;
        while k < n {
            if chars[k] == '\\' {
                k += 2;
            } else if chars[k] == '\'' || chars[k] == '\n' {
                break;
            } else {
                k += 1;
            }
        }
        // Stop before an unterminated literal's newline so the caller's
        // line counter stays honest (same rule as plain char literals).
        if k < n && chars[k] == '\'' {
            return (k + 1, 0);
        }
        return (k.min(n), 0);
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            // Raw string: ends at `"` followed by `hashes` hashes.
            let mut k = j + 1;
            let mut lines = 0;
            while k < n {
                if chars[k] == '\n' {
                    lines += 1;
                    k += 1;
                    continue;
                }
                if chars[k] == '"' {
                    let mut h = 0usize;
                    while k + 1 + h < n && chars[k + 1 + h] == '#' && h < hashes {
                        h += 1;
                    }
                    if h == hashes {
                        return (k + 1 + hashes, lines);
                    }
                }
                k += 1;
            }
            return (n, lines);
        }
        return (j, 0);
    }
    if j < n && chars[j] == '"' {
        // Byte string b"...": same escape rules as a plain string.
        let (end, lines) = scan_string(chars, j);
        return (end, lines);
    }
    (j.max(i + 1), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn words_in_strings_and_comments_are_not_idents() {
        let src = r##"
            // calling unwrap here would panic!
            /* block: unwrap() */
            let s = "x.unwrap()";
            let r = r#"panic!()"#;
            let real = value.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "unwrap").count(), 1);
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let t = tokenize("let a = 1; // lint:allow(x): reason\n// second");
        assert_eq!(t.comments.len(), 2);
        assert_eq!(t.comments[0].line, 1);
        assert!(t.comments[0].text.contains("lint:allow(x)"));
        assert_eq!(t.comments[1].line, 2);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let t = tokenize("/// outer doc unwrap()\n//! inner doc\n");
        assert!(t.comments[0].text.starts_with(" outer"));
        assert!(t.comments[1].text.starts_with(" inner"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let literals: Vec<_> = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(literals.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nlet x = \"s\ns\";\ny";
        let t = tokenize(src);
        let y = t.tokens.last().expect("token y");
        assert_eq!(y.text, "y");
        assert_eq!(y.line, 5);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_a_line() {
        // `\` at end of line is a string continuation; the newline it
        // swallows must still advance the line counter.
        let src = "let x = \"a \\\n   b\";\ny";
        let t = tokenize(src);
        let y = t.tokens.last().expect("token y");
        assert_eq!(y.text, "y");
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let t = tokenize("/* outer /* inner */ still comment */ after");
        assert_eq!(t.tokens.len(), 1);
        assert_eq!(t.tokens[0].text, "after");
    }

    #[test]
    fn ranges_do_not_swallow_method_calls() {
        let t = tokenize("for i in 0..5 { x.0.lock(); }");
        assert!(t.tokens.iter().any(|tok| tok.text == "lock"));
        let nums: Vec<_> = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "5", "0"]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'x", "b\"bytes", "r###"] {
            let _ = tokenize(src);
        }
    }

    #[test]
    fn unterminated_char_literal_does_not_drift_line_numbers() {
        // The stray `'x` never closes; the newline after it must still
        // count so `after` lands on line 2.
        let t = tokenize("let bad = 'x\nafter");
        let after = t.tokens.last().expect("token after");
        assert_eq!(after.text, "after");
        assert_eq!(after.line, 2);
        let t = tokenize("let bad = b'x\nafter");
        let after = t.tokens.last().expect("token after");
        assert_eq!(after.text, "after");
        assert_eq!(after.line, 2);
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        let t = tokenize("let r#fn = r#type.r#match();");
        let ids = idents("let r#fn = r#type.r#match();");
        assert_eq!(ids, vec!["let", "fn", "type", "match"]);
        // No stray `r` ident and no `#` punct from the raw-ident prefix.
        assert!(!t.tokens.iter().any(|tok| tok.text == "r"));
        assert!(!t.tokens.iter().any(|tok| tok.text == "#"));
    }

    #[test]
    fn raw_strings_with_hashes_close_correctly() {
        let t = tokenize(r##"let s = r#"contains "quotes" and unwrap()"# ; next"##);
        assert!(t.tokens.iter().any(|tok| tok.text == "next"));
        assert!(!t.tokens.iter().any(|tok| tok.text == "unwrap"));
    }
}
