pub fn fault_delay(d: std::time::Duration) {
    // lint:allow(no-sleep-in-lib): fixture — models in-flight latency.
    std::thread::sleep(d);
}
