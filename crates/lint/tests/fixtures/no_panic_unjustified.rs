pub fn hot(x: Option<u8>) -> u8 {
    x.unwrap() // lint:allow(no-panic-on-fast-path)
}
