// Seeded defect: the dispatch match routes `Call` but has no `Result`
// arm and no `_` wildcard — protocol-missing-arm must fire at it.
fn handle_call(rpc: &RpcHeader) {
    if rpc.flags.last_fragment {
        dispatch();
    }
    let a = RpcHeader::ack_for(rpc);
}
fn deliver(pkt: Packet) {
    match pkt.rpc.packet_type {
        PacketType::Call => route(pkt),
    }
}
fn transact() {
    let mut attempts = 0;
    send_built(&b);
}
fn build() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Call, flags: f(), last_fragment: true }
}
fn build_res() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Result, data_len: 0 }
}
