pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live byte for the
    // duration of this call.
    unsafe { *p }
}
