pub fn hot(data: &[u8]) -> Vec<u8> {
    let copy = data.to_vec();
    let mut extra = Vec::new();
    extra.extend_from_slice(&copy);
    extra
}

pub fn error_paths_are_exempt(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| format!("missing value"))
}
