pub fn lazy_wait() {
    std::thread::sleep(std::time::Duration::from_millis(20));
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_sleep_is_exempt() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
