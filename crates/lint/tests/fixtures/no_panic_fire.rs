pub fn hot(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn also_hot(n: u8) -> u8 {
    if n > 250 {
        panic!("too big");
    }
    n + 1
}

#[test]
fn tests_are_exempt() {
    assert_eq!(hot(Some(1)).checked_add(1).unwrap(), 2);
}
