// Seeded defect: the Call construction site sets `please_ack`, but the
// spec's [flag-reads].Call declares only `last_fragment` — the bit is
// dead on the wire, so protocol-unread-flag must fire at the builder.
fn handle_call(rpc: &RpcHeader) {
    if rpc.flags.last_fragment {
        dispatch();
    }
    let a = RpcHeader::ack_for(rpc);
}
fn deliver(pkt: Packet) {
    match pkt.rpc.packet_type {
        PacketType::Call => route(pkt),
        PacketType::Result => accept(pkt),
    }
}
fn transact() {
    let mut attempts = 0;
    send_built(&b);
}
fn build() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Call, please_ack: true, last_fragment: true }
}
fn build_res() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Result, data_len: 0 }
}
