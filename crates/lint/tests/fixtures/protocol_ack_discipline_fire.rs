// Seeded defect: `rogue` builds an ack but is not in the spec's
// [ack-discipline].allowed-callers — protocol-ack-discipline must fire.
fn handle_call(rpc: &RpcHeader) {
    if rpc.flags.last_fragment {
        dispatch();
    }
    let a = RpcHeader::ack_for(rpc);
}
fn rogue(rpc: &RpcHeader) {
    let a = RpcHeader::ack_for(rpc);
}
fn deliver(pkt: Packet) {
    match pkt.rpc.packet_type {
        PacketType::Call => route(pkt),
        PacketType::Result => accept(pkt),
    }
}
fn transact() {
    let mut attempts = 0;
    send_built(&b);
}
fn build() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Call, flags: f(), last_fragment: true }
}
fn build_res() -> RpcHeader {
    RpcHeader { packet_type: PacketType::Result, data_len: 0 }
}
