pub fn inverted(pool: &Pool, table: &Table) {
    let _buf = pool.free.lock();
    // lint:allow(lock-order): fixture — the pool guard is dropped
    // before this point in the real code shape being modelled.
    let _entry = table.entries.lock();
}
