pub fn drop_then_relock(pool: &Pool, table: &Table) {
    let buf = pool.free.lock();
    consume(&buf);
    drop(buf);
    let _entry = table.entries.lock();
}

pub fn scope_then_relock(pool: &Pool, table: &Table) {
    {
        let _buf = pool.free.lock();
    }
    let _entry = table.entries.lock();
}
