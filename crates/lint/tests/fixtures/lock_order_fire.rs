pub fn inverted(pool: &Pool, table: &Table) {
    let _buf = pool.free.lock();
    let _entry = table.entries.lock();
}

pub fn in_order(table: &Table, pool: &Pool) {
    let _entry = table.entries.lock();
    let _buf = pool.free.lock();
}
