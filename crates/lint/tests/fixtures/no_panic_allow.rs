pub fn hot(x: Option<u8>) -> u8 {
    // lint:allow(no-panic-on-fast-path): fixture — the invariant is
    // established two lines up and documented here.
    x.unwrap()
}
