pub fn hot(data: &[u8]) -> Vec<u8> {
    // lint:allow(no-alloc-on-fast-path): fixture — slow path copy.
    data.to_vec()
}
