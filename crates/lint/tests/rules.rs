//! Fire / allow / suppress coverage for every rule, driven by the
//! fixture files in `tests/fixtures/`, plus a property test that the
//! tokenizer total-functions over arbitrary byte soup.

use firefly_lint::config::Config;
use firefly_lint::rules::name;
use firefly_lint::tokenizer::tokenize;
use firefly_lint::{Diagnostic, Engine};

/// Lints a fixture as if it lived at a fast-path location so every
/// path-scoped rule is in force.
fn lint(source: &str) -> Vec<Diagnostic> {
    Engine::new(Config::default()).check_source_text("crates/core/src/client.rs", source)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn no_panic_fires_and_tests_are_exempt() {
    let diags = lint(include_str!("fixtures/no_panic_fire.rs"));
    // `unwrap` on line 2 and `panic!` on line 7; the `unwrap` inside
    // `#[test]` must not be reported.
    assert_eq!(rules_of(&diags), vec![name::NO_PANIC, name::NO_PANIC]);
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 7);
}

#[test]
fn no_panic_justified_allow_suppresses() {
    let diags = lint(include_str!("fixtures/no_panic_allow.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_panic_unjustified_allow_is_flagged() {
    let diags = lint(include_str!("fixtures/no_panic_unjustified.rs"));
    assert_eq!(rules_of(&diags), vec![name::UNJUSTIFIED_ALLOW]);
}

#[test]
fn no_alloc_fires_and_error_lines_are_exempt() {
    let diags = lint(include_str!("fixtures/no_alloc_fire.rs"));
    // `.to_vec()` and `Vec::new` fire; the `format!` inside the
    // `ok_or_else` error constructor is exempt.
    assert_eq!(rules_of(&diags), vec![name::NO_ALLOC, name::NO_ALLOC]);
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 3);
}

#[test]
fn no_alloc_justified_allow_suppresses() {
    let diags = lint(include_str!("fixtures/no_alloc_allow.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_fires_on_inversion_only() {
    let diags = lint(include_str!("fixtures/lock_order_fire.rs"));
    // `inverted` takes pool before calltable — one diagnostic; the
    // `in_order` function below it is clean.
    assert_eq!(rules_of(&diags), vec![name::LOCK_ORDER]);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("calltable"));
}

#[test]
fn lock_order_justified_allow_suppresses() {
    let diags = lint(include_str!("fixtures/lock_order_allow.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_accepts_drop_then_relock_without_suppression() {
    // The guard-lifetime analysis must see that `drop(buf)` (and a
    // closing brace) end the pool guard before the calltable lock is
    // taken — no `lint:allow` anywhere in this fixture.
    let diags = lint(include_str!("fixtures/lock_order_drop_relock.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_sleep_fires_outside_tests_only() {
    let diags = lint(include_str!("fixtures/no_sleep_fire.rs"));
    assert_eq!(rules_of(&diags), vec![name::NO_SLEEP]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn no_sleep_justified_allow_suppresses() {
    let diags = lint(include_str!("fixtures/no_sleep_allow.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn safety_comment_fires_without_and_not_with() {
    let fire = lint(include_str!("fixtures/safety_comment_fire.rs"));
    assert_eq!(rules_of(&fire), vec![name::SAFETY_COMMENT]);
    let ok = lint(include_str!("fixtures/safety_comment_allow.rs"));
    assert!(ok.is_empty(), "{ok:?}");
}

#[test]
fn hermetic_deps_fires_on_registry_and_banned_deps() {
    let engine = Engine::new(Config::default());
    let diags =
        engine.check_manifest_text("Cargo.toml", include_str!("fixtures/hermetic_deps_fire.toml"));
    // `rand` is banned outright; `serde` is a versioned registry dep;
    // the path-only `firefly-wire` is fine.
    assert_eq!(
        rules_of(&diags),
        vec![name::HERMETIC_DEPS, name::HERMETIC_DEPS]
    );
    assert!(diags[0].message.contains("rand"));
    assert!(diags[1].message.contains("serde"));

    let clean = engine
        .check_manifest_text("Cargo.toml", include_str!("fixtures/hermetic_deps_clean.toml"));
    assert!(clean.is_empty(), "{clean:?}");
}

/// Runs the protocol-conformance pass over one fixture handler file
/// against the miniature spec in `fixtures/protocol_spec.toml`.
fn protocol_lint(source: &str) -> Vec<Diagnostic> {
    use firefly_lint::protocol::{evaluate, scan_file, ProtocolFacts, ProtocolSpec};
    use firefly_lint::source::SourceFile;
    let spec = ProtocolSpec::from_toml(include_str!("fixtures/protocol_spec.toml"));
    let mut facts = ProtocolFacts::default();
    scan_file(&SourceFile::new("src/handler.rs", source), &spec, &mut facts);
    let (diags, _report) = evaluate(&facts, &spec);
    diags
}

#[test]
fn protocol_conforming_fixture_is_clean() {
    let diags = protocol_lint(include_str!("fixtures/protocol_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn protocol_unhandled_type_fires_on_unconstructed_result() {
    let diags = protocol_lint(include_str!("fixtures/protocol_unhandled_type_fire.rs"));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == name::PROTOCOL_UNHANDLED_TYPE && d.message.contains("`Result`")),
        "{diags:?}"
    );
}

#[test]
fn protocol_missing_arm_fires_on_unrouted_result() {
    let diags = protocol_lint(include_str!("fixtures/protocol_missing_arm_fire.rs"));
    let arm = diags
        .iter()
        .find(|d| d.rule == name::PROTOCOL_MISSING_ARM)
        .unwrap_or_else(|| panic!("{diags:?}"));
    assert!(arm.message.contains("`Result`"));
    assert_eq!(arm.path, "src/handler.rs");
}

#[test]
fn protocol_unread_flag_fires_on_dead_please_ack() {
    let diags = protocol_lint(include_str!("fixtures/protocol_unread_flag_fire.rs"));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == name::PROTOCOL_UNREAD_FLAG && d.message.contains("please_ack")),
        "{diags:?}"
    );
}

#[test]
fn protocol_ack_discipline_fires_on_rogue_ack_builder() {
    let diags = protocol_lint(include_str!("fixtures/protocol_ack_discipline_fire.rs"));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == name::PROTOCOL_ACK_DISCIPLINE && d.message.contains("rogue")),
        "{diags:?}"
    );
}

#[test]
fn rules_stay_quiet_off_the_fast_path() {
    // The same allocating/panicking source at a non-fast-path location
    // only answers to the everywhere-rules (sleep, safety), which it
    // does not violate.
    let engine = Engine::new(Config::default());
    let diags = engine.check_source_text(
        "crates/sim/src/engine.rs",
        include_str!("fixtures/no_panic_fire.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tokenizer_never_panics_on_arbitrary_bytes() {
    firefly_propcheck::check("tokenize-total", 500, |g| {
        let bytes = g.bytes(0..256);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let t = tokenize(&text);
        // Weak sanity bound: token count can never exceed char count.
        if t.tokens.len() > text.chars().count() {
            return Err(format!(
                "{} tokens from {} chars",
                t.tokens.len(),
                text.chars().count()
            ));
        }
        Ok(())
    });
}

#[test]
fn tokenizer_never_panics_on_rusty_fragments() {
    // Biased generator: glue together Rust-ish fragments (including
    // pathological unterminated literals) and tokenize the result.
    const PIECES: &[&str] = &[
        "fn f() {", "}", "\"str", "r#\"raw\"#", "r#\"", "'a", "'a'", "b'\\x", "//", "/*", "*/",
        "0.5", "0..5", "x.lock()", "#[test]", "unsafe", "\\", "\"", "\n", "é", "🦀", "r#fn",
        "r#match", "r#", "b'",
    ];
    firefly_propcheck::check("tokenize-rusty-total", 500, |g| {
        let n = g.usize_in(0..40);
        let mut text = String::new();
        for _ in 0..n {
            text.push_str(g.choose::<&str>(PIECES));
        }
        let _ = tokenize(&text);
        Ok(())
    });
}

/// Regression: an unterminated char-literal-ish sequence must never
/// swallow the newline that ends it, or every later diagnostic would
/// point one line too high. Pieces are chosen so that nothing can
/// *legitimately* span lines (no strings, no block comments); a marker
/// after the newline must therefore always land on line 2.
#[test]
fn char_literal_soup_never_drifts_line_numbers() {
    const PIECES: &[&str] = &[
        "'a", "' ", "'abc", "'", "'_", "b'", "b'x", "'a'", "b'x'", "x", "lock", "(", ")", ".",
        "0.5", "r#fn", "r#x",
    ];
    firefly_propcheck::check("char-literal-line-honesty", 500, |g| {
        let n = g.usize_in(0..20);
        let mut text = String::new();
        for _ in 0..n {
            text.push_str(g.choose::<&str>(PIECES));
            text.push(' ');
        }
        text.push_str("\nzz_marker");
        let t = tokenize(&text);
        match t.tokens.iter().find(|tok| tok.text == "zz_marker") {
            Some(tok) if tok.line == 2 => Ok(()),
            Some(tok) => Err(format!("marker on line {} in {text:?}", tok.line)),
            None => Err(format!("marker token swallowed in {text:?}")),
        }
    });
}

/// The interprocedural dataflow engine must be total and deterministic
/// on arbitrary token streams: scanning Rust-ish soup (biased toward
/// the wait/notify/atomic/pool constructs it models) never panics, and
/// scanning + evaluating the same text twice yields identical facts,
/// diagnostics, and summaries.
#[test]
fn dataflow_engine_is_total_and_deterministic_on_token_soup() {
    const PIECES: &[&str] = &[
        "fn f(p: &P) {",
        "}",
        "{",
        "let mut g = p.free.lock();",
        "while busy(&g) {",
        "loop {",
        "p.available.wait(&mut g);",
        "p.available.wait_until(&mut g, d);",
        "p.available.notify_one();",
        "p.cond.notify_all();",
        "s.flag.store(1, Ordering::Release);",
        "s.flag.load(Ordering::Relaxed)",
        "s.flag.fetch_add(1, Ordering::AcqRel);",
        "s.flag.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed)",
        "let b = p.pool.alloc()?;",
        "let Ok(b) = p.pool.alloc()",
        "b.recycle();",
        "stash.lock().push(b);",
        "p.receive_queue.lock().push_back(b);",
        "std::mem::forget(b);",
        "return Ok(b);",
        "b: PacketBuf",
        "Ordering::",
        "&mut",
        "(",
        ")",
        "\"str",
        "/*",
        "'a",
        "?",
    ];
    let config = Config::default();
    firefly_propcheck::check("dataflow-total-deterministic", 300, |g| {
        let n = g.usize_in(0..30);
        let mut text = String::new();
        for _ in 0..n {
            text.push_str(g.choose::<&str>(PIECES));
            text.push(if g.usize_in(0..4) == 0 { '\n' } else { ' ' });
        }
        let first = firefly_lint::dataflow::scan_text("crates/core/src/client.rs", &text, &config);
        let second = firefly_lint::dataflow::scan_text("crates/core/src/client.rs", &text, &config);
        if format!("{first:?}") != format!("{second:?}") {
            return Err(format!("non-deterministic facts for {text:?}"));
        }
        let (diags_a, summary_a) = firefly_lint::dataflow::evaluate(&first, &config);
        let (diags_b, summary_b) = firefly_lint::dataflow::evaluate(&second, &config);
        if summary_a != summary_b {
            return Err(format!("non-deterministic summary for {text:?}"));
        }
        if format!("{diags_a:?}") != format!("{diags_b:?}") {
            return Err(format!("non-deterministic diagnostics for {text:?}"));
        }
        Ok(())
    });
}

/// Regression: `r#ident` must tokenize as one plain identifier, not a
/// phantom `r`, `#`, and a bare keyword token that the fn extractor
/// would mistake for a definition.
#[test]
fn raw_identifiers_never_leak_keyword_tokens() {
    const KEYWORDS: &[&str] = &["fn", "match", "loop", "struct", "impl", "type", "move", "let"];
    firefly_propcheck::check("raw-ident-regression", 200, |g| {
        let kw = g.choose::<&str>(KEYWORDS);
        let text = format!("call(r#{kw}); let r#{kw} = 1;");
        let t = tokenize(&text);
        // The keyword text may appear (as the raw identifier's name),
        // but no stray `#` may survive, and tokenizing the same text
        // twice must be deterministic.
        if t.tokens.iter().any(|tok| tok.text == "#") {
            return Err(format!("stray `#` token in {text:?}: {:?}", t.tokens));
        }
        let again = tokenize(&text);
        if again.tokens.len() != t.tokens.len() {
            return Err("non-deterministic tokenization".to_string());
        }
        Ok(())
    });
}
