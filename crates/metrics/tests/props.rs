//! Property-based tests for the measurement substrate: the histogram's
//! percentile accuracy contract and the JSON round-trip invariant the
//! `BENCH_*.json` perf trajectory depends on.

use firefly_metrics::json::Json;
use firefly_metrics::{HistSummary, Histogram};
use firefly_propcheck::{check, prop_assert, prop_assert_eq, Gen};

/// The histogram's growth factor (kept in sync with `hist.rs` by the
/// accuracy assertion itself: if `GROWTH` changed, the ratio bound here
/// would fail).
const GROWTH: f64 = 1.022;

/// Exact order statistic matching the histogram's target rule:
/// the ceil(p/100 · n)-th smallest value (1-based), at least the 1st.
fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len() as f64;
    let k = ((p / 100.0) * n).ceil().max(1.0) as usize;
    sorted[k.min(sorted.len()) - 1]
}

#[test]
fn percentile_is_within_one_bucket_of_the_order_statistic() {
    check("hist_percentile_accuracy", 200, |g: &mut Gen| {
        // Positive inputs spanning the histogram's useful range; start
        // at 2 µs so a value and its bucket never straddle the clamped
        // bucket 0 (values ≤ 1 µs all share it by design).
        let values = g.vec(1..400, |g| {
            let exp = g.rng().f64() * 6.0; // 10^0 .. 10^6
            2.0 + 10f64.powf(exp)
        });
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));

        for _ in 0..8 {
            let p = g.rng().f64() * 100.0;
            let got = h.percentile(p);
            let exact = exact_percentile(&sorted, p);
            // Same bucket ⇒ the reported midpoint and the exact order
            // statistic differ by less than one bucket width; allow one
            // extra factor of GROWTH for ln()-truncation at the edges.
            let ratio = got / exact;
            let bound = GROWTH * GROWTH;
            prop_assert!(
                ratio > 1.0 / bound && ratio < bound,
                "p{p:.2}: got {got}, exact {exact} (ratio {ratio})"
            );
        }

        // min ≤ p0 ≤ p100 ≤ max, always.
        let p0 = h.percentile(0.0);
        let p100 = h.percentile(100.0);
        prop_assert!(
            h.min() <= p0 && p0 <= p100 && p100 <= h.max(),
            "min {} p0 {} p100 {} max {}",
            h.min(),
            p0,
            p100,
            h.max()
        );
        Ok(())
    });
}

#[test]
fn summary_is_always_finite() {
    check("hist_summary_finite", 100, |g: &mut Gen| {
        let mut h = Histogram::new();
        // Sometimes empty, sometimes with extreme values.
        for _ in 0..g.usize_in(0..20) {
            h.record(g.rng().f64() * 1e12);
        }
        let s = h.summary();
        for (name, v) in [
            ("mean", s.mean),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p95", s.p95),
            ("p99", s.p99),
        ] {
            prop_assert!(v.is_finite(), "{name} = {v} not finite");
        }
        prop_assert!(!s.to_json().contains_null());
        Ok(())
    });
}

fn arb_json(g: &mut Gen, depth: usize) -> Json {
    let kind = if depth == 0 {
        g.usize_in(0..4)
    } else {
        g.usize_in(0..6)
    };
    match kind {
        0 => Json::Null,
        1 => Json::Bool(g.bool()),
        2 => {
            // Finite numbers of every magnitude, including negatives,
            // zero, and values that exercise shortest-repr printing.
            let v = match g.usize_in(0..4) {
                0 => g.rng().f64() * 2.0 - 1.0,
                1 => (g.i32() as f64) / 7.0,
                2 => g.rng().f64() * 1e18 - 5e17,
                _ => 0.0,
            };
            Json::num(v)
        }
        3 => Json::Str(g.string(0..12)),
        4 => Json::Arr(g.vec(0..4, |g| arb_json(g, depth - 1))),
        _ => {
            let n = g.usize_in(0..4);
            let mut fields = Vec::new();
            for _ in 0..n {
                fields.push((g.string(0..8), arb_json(g, depth - 1)));
            }
            Json::Obj(fields)
        }
    }
}

#[test]
fn json_emit_parse_reemit_is_identical() {
    check("json_roundtrip", 300, |g: &mut Gen| {
        let doc = arb_json(g, 3);
        let compact = doc.to_string();
        let parsed = Json::parse(&compact).map_err(|e| format!("{e}: {compact}"))?;
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.to_string(), compact);

        // The pretty form (the on-disk snapshot format) parses back to
        // the same tree, and its re-emission is byte-identical too.
        let pretty = doc.to_pretty();
        let reparsed = Json::parse(&pretty).map_err(|e| format!("{e}: {pretty}"))?;
        prop_assert_eq!(&reparsed, &doc);
        prop_assert_eq!(reparsed.to_pretty(), pretty);
        Ok(())
    });
}

#[test]
fn summary_json_round_trips() {
    check("hist_summary_roundtrip", 100, |g: &mut Gen| {
        let mut h = Histogram::new();
        for _ in 0..g.usize_in(0..50) {
            h.record(1.0 + g.rng().f64() * 1e7);
        }
        let s: HistSummary = h.summary();
        let text = s.to_json().to_pretty();
        let parsed = Json::parse(&text).map_err(|e| e.to_string())?;
        prop_assert_eq!(
            parsed.get("count").and_then(Json::as_f64),
            Some(s.count as f64)
        );
        prop_assert_eq!(parsed.get("p99").and_then(Json::as_f64), Some(s.p99));
        prop_assert_eq!(parsed.to_pretty(), text);
        Ok(())
    });
}
