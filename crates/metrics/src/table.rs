//! Fixed-width text tables shaped like the paper's Tables I–XII.
//!
//! Every `firefly-bench` binary prints its reproduction side by side with
//! the paper's published numbers; this module renders those tables in plain
//! text for the terminal and in Markdown for EXPERIMENTS.md.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
///
/// # Examples
///
/// ```
/// use firefly_metrics::Table;
/// let mut t = Table::new(&["# of caller threads", "seconds", "RPCs/sec"]);
/// t.row(&["1", "26.61", "375"]);
/// t.row(&["2", "16.80", "595"]);
/// let text = t.render();
/// assert!(text.contains("26.61"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the paper's layout).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: None,
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a caption printed above the table.
    pub fn title(mut self, t: &str) -> Self {
        self.title = Some(t.to_string());
        self
    }

    /// Overrides per-column alignment.
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row; missing cells render empty, extra cells are an error.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        self.row(&refs);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => line.push_str(&format!("{:<width$}", cell, width = widths[i])),
                    Align::Right => line.push_str(&format!("{:>width$}", cell, width = widths[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("**{t}**\n\n"));
        }
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for a in &self.aligns {
            out.push_str(match a {
                Align::Left => "---|",
                Align::Right => "---:|",
            });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `digits` decimal places, trimming to a compact
/// representation like the paper's tables.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{:.*}", digits, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["threads", "seconds"]);
        t.row(&["1", "26.61"]);
        t.row(&["10", "5.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numbers are right-aligned within their column.
        assert!(lines[2].ends_with("26.61"));
        assert!(lines[3].ends_with("5.2"));
    }

    #[test]
    fn title_is_printed() {
        let mut t = Table::new(&["a"]).title("Table I: Time for 10000 RPCs");
        t.row(&["x"]);
        assert!(t.render().starts_with("Table I"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["a", "1"]);
        let md = t.render_markdown();
        assert!(md.contains("| k | v |"));
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| a | 1 |"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn long_rows_rejected() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(4.654, 2), "4.65");
        assert_eq!(fnum(2661.0, 0), "2661");
    }
}
