//! A minimal, dependency-free JSON value with a canonical writer and a
//! strict parser — the serialization layer of the `BENCH_*.json` perf
//! trajectory.
//!
//! Design constraints, in order:
//!
//! * **Serialization-safe.** IEEE 754 has values JSON cannot express;
//!   [`Json::num`] maps non-finite input to `null` instead of emitting
//!   the invalid tokens `inf`/`NaN` (the bug that motivated this module:
//!   an empty histogram's `min()` once returned `+∞`, which would have
//!   poisoned the very first snapshot). Consumers that must not see
//!   `null` assert that at the schema level (scripts/bench_gate.sh does).
//! * **Round-trip stable.** `parse(s).to_string() == s` for any string
//!   this writer produced: object key order is preserved (objects are
//!   association lists, not maps), numbers use Rust's shortest-exact
//!   `f64` display, and strings escape through one canonical path. The
//!   propcheck property in `tests/props.rs` holds this invariant for
//!   arbitrary trees.
//! * **Small.** Only what the bench snapshot and its gate need; this is
//!   not a general-purpose JSON library.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (construction via [`Json::num`] enforces this).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and significant for
    /// round-tripping. Duplicate keys are not rejected but [`Json::get`]
    /// returns the first.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a number, mapping non-finite values to `Json::Null` so the
    /// emitted document is always valid JSON.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Wraps a string.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder
    /// misuse is a programming error, caught by every test that builds a
    /// snapshot).
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Field lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `root.at(&["latency_us", "null", "p50"])`.
    pub fn at(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True if any node in the tree is `null` (the writer's image of a
    /// non-finite number; snapshot tests assert its absence).
    pub fn contains_null(&self) -> bool {
        match self {
            Json::Null => true,
            Json::Bool(_) | Json::Num(_) | Json::Str(_) => false,
            Json::Arr(items) => items.iter().any(Json::contains_null),
            Json::Obj(fields) => fields.iter().any(|(_, v)| v.contains_null()),
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the on-disk `BENCH_*.json` format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, trailing whitespace
    /// only).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Shortest `f64` representation that parses back exactly; this is what
/// makes emit → parse → re-emit byte-identical.
fn write_number(out: &mut String, v: f64) {
    use fmt::Write;
    let _ = write!(out, "{v}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so slicing on
                // the next char boundary is safe).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| {
                    ParseError::at(*pos, "unterminated string")
                })?;
                if (c as u32) < 0x20 {
                    return Err(ParseError::at(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    let v: f64 = text
        .parse()
        .map_err(|_| ParseError::at(start, format!("invalid number `{text}`")))?;
    if !v.is_finite() {
        // A literal too large for f64 (e.g. 1e999); JSON allows it,
        // round-tripping does not.
        return Err(ParseError::at(start, "number overflows f64"));
    }
    Ok(Json::Num(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
        assert_eq!(Json::num(2.5), Json::Num(2.5));
    }

    #[test]
    fn builder_and_lookup() {
        let doc = Json::obj()
            .set("a", Json::num(1.0))
            .set("b", Json::obj().set("c", Json::str("x")));
        assert_eq!(doc.at(&["b", "c"]).and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert!(doc.get("missing").is_none());
        assert!(!doc.contains_null());
        assert!(doc.set("d", Json::num(f64::NAN)).contains_null());
    }

    #[test]
    fn round_trips_basic_documents() {
        for text in [
            "null",
            "true",
            "[1,2.5,-3e-7]",
            "{\"k\":\"v\",\"n\":[{},[]]}",
            "\"esc \\\" \\\\ \\n \\u0001\"",
        ] {
            let v = Json::parse(text).expect(text);
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = Json::obj()
            .set("arr", Json::Arr(vec![Json::num(1.0), Json::Bool(false)]))
            .set("obj", Json::obj().set("x", Json::str("y")));
        let pretty = doc.to_pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,]", "{\"a\"}", "nul", "1e999", "\"\\x\"", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }
}
