//! Microsecond latency histograms with percentile queries.

/// A latency histogram over microseconds with logarithmic buckets.
///
/// Buckets grow geometrically (~4.6% per bucket, 128 buckets per factor of
/// e²) so percentiles are accurate to a few percent across the full range
/// from 1 µs to tens of seconds — wide enough to span both the paper's
/// 2.66 ms RPCs and the 600 ms retransmission penalty of §5.
///
/// # Examples
///
/// ```
/// use firefly_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in [100.0, 200.0, 300.0, 400.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 200.0 && h.percentile(50.0) <= 310.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 1024;
/// Growth factor per bucket; bucket i covers [GROWTH^i, GROWTH^(i+1)) µs.
const GROWTH: f64 = 1.022;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(micros: f64) -> usize {
        if micros <= 1.0 {
            return 0;
        }
        let idx = micros.ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        GROWTH.powi(index as i32 + 1)
    }

    /// Records one latency observation in microseconds.
    pub fn record(&mut self, micros: f64) {
        let micros = micros.max(0.0);
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.sum += micros;
        self.min = self.min.min(micros);
        self.max = self.max.max(micros);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The value at or below which `p` percent of observations fall,
    /// accurate to the bucket width (~2%).
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(2660.0); // The paper's Null() latency.
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2660.0);
        let p50 = h.percentile(50.0);
        assert!((p50 - 2660.0).abs() / 2660.0 < 0.03, "p50 = {p50}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 10.0);
        }
        let mut last = 0.0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} < {last}");
            last = v;
        }
        // Median of 10..10000 uniform should be near 5000.
        let p50 = h.percentile(50.0);
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50 = {p50}");
    }

    #[test]
    fn wide_range_supported() {
        let mut h = Histogram::new();
        h.record(1.0); // 1 µs.
        h.record(600_000.0); // The §5 retransmission penalty.
        h.record(20_000_000.0); // 20 s.
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 20_000_000.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..50 {
            a.record(100.0 + i as f64);
            b.record(5000.0 + i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        let p25 = a.percentile(25.0);
        let p75 = a.percentile(75.0);
        assert!(p25 < 200.0, "p25 = {p25}");
        assert!(p75 > 4000.0, "p75 = {p75}");
    }

    #[test]
    fn negative_values_clamped() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), 0.0);
    }
}
