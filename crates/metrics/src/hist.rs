//! Microsecond latency histograms with percentile queries.

/// A latency histogram over microseconds with logarithmic buckets.
///
/// Buckets grow geometrically (`GROWTH = 1.022`: ~2.2% per bucket, ~92
/// buckets per factor of e²; 1024 buckets in total) so percentiles are
/// accurate to about one bucket width (~±1.1% at the reported midpoint)
/// across the covered range from 1 µs to `GROWTH`¹⁰²⁴ ≈ 4.8·10⁹ µs
/// (~80 minutes) — wide enough to span both the paper's 2.66 ms RPCs and
/// the 600 ms retransmission penalty of §5 with orders of magnitude to
/// spare. Values past the top bucket clamp into it.
///
/// # Examples
///
/// ```
/// use firefly_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in [100.0, 200.0, 300.0, 400.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// // p50 is the bucket midpoint nearest the 2nd of 4 values (200 µs).
/// assert!((h.percentile(50.0) - 200.0).abs() / 200.0 < 0.025);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 1024;
/// Growth factor per bucket; bucket i covers [GROWTH^i, GROWTH^(i+1)) µs.
const GROWTH: f64 = 1.022;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(micros: f64) -> usize {
        if micros <= 1.0 {
            return 0;
        }
        let idx = micros.ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// The representative value reported for a bucket: its midpoint.
    ///
    /// Bucket `i` covers `[GROWTH^i, GROWTH^(i+1))`; reporting the upper
    /// edge (as this function once did) biased every percentile high by
    /// one bucket width before the min/max clamp. The midpoint is
    /// unbiased to within half a bucket width either way.
    fn bucket_value(index: usize) -> f64 {
        let lower = GROWTH.powi(index as i32);
        let upper = GROWTH.powi(index as i32 + 1);
        (lower + upper) / 2.0
    }

    /// Records one latency observation in microseconds.
    pub fn record(&mut self, micros: f64) {
        let micros = micros.max(0.0);
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.sum += micros;
        self.min = self.min.min(micros);
        self.max = self.max.max(micros);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 for an empty histogram.
    ///
    /// The empty case once leaked the internal `+∞` sentinel, which
    /// serializes as invalid JSON (`inf`) and poisoned any snapshot or
    /// merged-then-empty shard that touched it.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 for an empty histogram (the internal
    /// `-∞` sentinel never escapes; see [`Histogram::min`]).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The value at or below which `p` percent of observations fall,
    /// reported as the midpoint of the selected bucket (unbiased to
    /// within half a bucket width, ~±1.1%) and clamped into
    /// `[min, max]` so it never strays outside the observed data.
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A serialization-safe summary of this histogram: every field is
    /// finite (an empty histogram summarizes to all zeros), so the
    /// result can be embedded in a `BENCH_*.json` snapshot without ever
    /// producing the invalid JSON tokens `inf`/`NaN`.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// The fixed percentile summary the perf trajectory records per metric.
///
/// Produced by [`Histogram::summary`]; all fields are guaranteed finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean, µs.
    pub mean: f64,
    /// Smallest observation, µs (0 when empty).
    pub min: f64,
    /// Largest observation, µs (0 when empty).
    pub max: f64,
    /// Median, µs.
    pub p50: f64,
    /// 95th percentile, µs.
    pub p95: f64,
    /// 99th percentile, µs.
    pub p99: f64,
}

impl HistSummary {
    /// Renders as a JSON object in stable field order.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj()
            .set("count", Json::num(self.count as f64))
            .set("mean", Json::num(self.mean))
            .set("min", Json::num(self.min))
            .set("max", Json::num(self.max))
            .set("p50", Json::num(self.p50))
            .set("p95", Json::num(self.p95))
            .set("p99", Json::num(self.p99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn empty_min_max_are_finite_zero() {
        // Regression: these returned the ±∞ sentinels, which serialize
        // as invalid JSON and poisoned empty shards in merged reports.
        let h = Histogram::new();
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.min().is_finite() && h.max().is_finite());
    }

    #[test]
    fn merge_with_empty_keeps_real_extremes() {
        // Regression: merging an empty histogram must not let the ±∞
        // sentinels clobber (or be reported from) the populated side.
        let mut a = Histogram::new();
        a.record(100.0);
        a.record(300.0);
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100.0);
        assert_eq!(a.max(), 300.0);

        // Empty ← populated direction too.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.min(), 100.0);
        assert_eq!(e.max(), 300.0);

        // Empty ← empty stays finite.
        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both.min(), 0.0);
        assert_eq!(both.max(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(2660.0); // The paper's Null() latency.
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2660.0);
        // The min/max clamp pins every percentile of a single-value
        // histogram to exactly that value now that the midpoint (not the
        // upper bucket edge) is the starting point.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 2660.0, "p{p}");
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 10.0);
        }
        let mut last = 0.0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} < {last}");
            last = v;
        }
        // Median of 10..10000 uniform should be near 5000. The midpoint
        // fix removed the one-bucket-high bias, so the tolerance is a
        // little over one bucket width (~2.2%) rather than the old 5%.
        let p50 = h.percentile(50.0);
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.03, "p50 = {p50}");
    }

    #[test]
    fn wide_range_supported() {
        let mut h = Histogram::new();
        h.record(1.0); // 1 µs.
        h.record(600_000.0); // The §5 retransmission penalty.
        h.record(20_000_000.0); // 20 s.
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 20_000_000.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..50 {
            a.record(100.0 + i as f64);
            b.record(5000.0 + i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        let p25 = a.percentile(25.0);
        let p75 = a.percentile(75.0);
        assert!(p25 < 200.0, "p25 = {p25}");
        assert!(p75 > 4000.0, "p75 = {p75}");
    }

    #[test]
    fn negative_values_clamped() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), 0.0);
    }
}
