//! Measurement utilities for the Firefly RPC reproduction.
//!
//! The paper's evaluation style is distinctive: it does not stop at
//! end-to-end numbers but "account\[s\] precisely for all measured latency".
//! This crate provides the pieces that style needs, for both the real Rust
//! stack (wall-clock time) and the discrete-event simulator (virtual time):
//!
//! * [`Stopwatch`] — wall-clock elapsed-time measurement,
//! * [`Histogram`] — microsecond latency distributions with percentiles,
//! * [`Summary`] — count/mean/stddev/min/max accumulator,
//! * [`throughput`] — the paper's two throughput units, RPCs/second and
//!   megabits/second of useful payload,
//! * [`UtilizationTracker`] — busy-time accounting that reproduces the
//!   paper's "about 1.2 CPUs being used on the caller machine" figures,
//! * [`Table`] — fixed-width text tables shaped like the paper's
//!   Tables I–XII, with optional Markdown output for EXPERIMENTS.md,
//! * [`Json`] — a dependency-free, round-trip-stable JSON value (with
//!   [`HistSummary`], the serialization-safe percentile summary) used by
//!   the `BENCH_*.json` perf trajectory and its regression gate.

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod table;
pub mod throughput;
pub mod util;

pub use hist::{HistSummary, Histogram};
pub use json::Json;
pub use table::Table;
pub use throughput::{megabits_per_sec, rpcs_per_sec};
pub use util::UtilizationTracker;

use std::time::{Duration, Instant};

/// A wall-clock stopwatch.
///
/// # Examples
///
/// ```
/// use firefly_metrics::Stopwatch;
/// let w = Stopwatch::start();
/// let micros = w.elapsed_micros();
/// assert!(micros < 1_000_000.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed microseconds as a float.
    pub fn elapsed_micros(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e6
    }
}

/// Streaming count/mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation, or 0 with fewer than two observations.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation, or +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        // Sample stddev of that classic data set is ~2.138.
        assert!((s.stddev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_matches_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 101) as f64).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..33] {
            a.record(x);
        }
        for &x in &xs[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn stopwatch_moves_forward() {
        let w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(w.elapsed_micros() >= 2000.0);
    }
}
