//! CPU-utilization accounting.
//!
//! The paper reports "about 1.2 CPUs being used on the caller machine,
//! slightly less on the server machine, to achieve maximum throughput" and
//! "about 0.15 CPUs when idling" (§2.1). Utilization in that sense is
//! total busy time across all processors divided by elapsed time — a value
//! between 0 and the processor count.

/// Accumulates busy intervals per resource and reports utilization in
/// "CPUs used" units.
///
/// Works in any time base (the simulator feeds virtual nanoseconds, the
/// real stack feeds wall-clock microseconds) as long as busy spans and the
/// observation window use the same units.
///
/// # Examples
///
/// ```
/// use firefly_metrics::UtilizationTracker;
/// let mut u = UtilizationTracker::new(2);
/// u.add_busy(0, 500_000.0);
/// u.add_busy(1, 250_000.0);
/// // Over a 500 ms window: CPU 0 fully busy, CPU 1 half busy = 1.5 CPUs.
/// assert!((u.cpus_used(500_000.0) - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    busy: Vec<f64>,
}

impl UtilizationTracker {
    /// Creates a tracker for `resources` CPUs (or other unit-capacity
    /// resources).
    pub fn new(resources: usize) -> Self {
        UtilizationTracker {
            busy: vec![0.0; resources],
        }
    }

    /// Number of tracked resources.
    pub fn resources(&self) -> usize {
        self.busy.len()
    }

    /// Adds `span` time units of busy time to resource `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn add_busy(&mut self, index: usize, span: f64) {
        self.busy[index] += span;
    }

    /// Total busy time across all resources.
    pub fn total_busy(&self) -> f64 {
        self.busy.iter().sum()
    }

    /// Busy time of one resource.
    pub fn busy_of(&self, index: usize) -> f64 {
        self.busy[index]
    }

    /// Utilization of one resource over a window (0.0–1.0, can exceed 1.0
    /// only if busy spans were over-reported).
    pub fn utilization_of(&self, index: usize, window: f64) -> f64 {
        if window <= 0.0 {
            0.0
        } else {
            self.busy[index] / window
        }
    }

    /// The paper's "CPUs used" figure: total busy time divided by the
    /// window.
    pub fn cpus_used(&self, window: f64) -> f64 {
        if window <= 0.0 {
            0.0
        } else {
            self.total_busy() / window
        }
    }

    /// Clears all accumulated busy time.
    pub fn reset(&mut self) {
        self.busy.iter_mut().for_each(|b| *b = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_machine_uses_zero_cpus() {
        let u = UtilizationTracker::new(5);
        assert_eq!(u.cpus_used(1_000_000.0), 0.0);
        assert_eq!(u.total_busy(), 0.0);
    }

    #[test]
    fn paper_style_figures() {
        // A 5-CPU Firefly at max throughput: ~1.2 CPUs used.
        let mut u = UtilizationTracker::new(5);
        let window = 1_000_000.0; // 1 s in µs.
        u.add_busy(0, 600_000.0); // CPU 0 does I/O work.
        u.add_busy(1, 300_000.0);
        u.add_busy(2, 200_000.0);
        u.add_busy(3, 100_000.0);
        assert!((u.cpus_used(window) - 1.2).abs() < 1e-9);
        assert!((u.utilization_of(0, window) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut u = UtilizationTracker::new(1);
        u.add_busy(0, 10.0);
        u.reset();
        assert_eq!(u.total_busy(), 0.0);
    }

    #[test]
    fn zero_window_is_zero() {
        let mut u = UtilizationTracker::new(1);
        u.add_busy(0, 10.0);
        assert_eq!(u.cpus_used(0.0), 0.0);
    }
}
