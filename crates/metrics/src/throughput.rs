//! The paper's two throughput units.
//!
//! Table I reports `Null()` performance as RPCs/second and `MaxResult(b)`
//! performance as megabits/second of *useful data* — 1440 bytes per call,
//! not the 1514 bytes on the wire. These helpers reproduce that accounting
//! so reproduced tables use exactly the paper's arithmetic (e.g. 10 000
//! calls in 24.93 s × 1440 B = 4.65 megabits/second).

/// Calls per second for `calls` completed in `seconds`.
///
/// # Examples
///
/// ```
/// // Table I, row 1: 10000 Null() calls in 26.61 s = 375 RPCs/sec.
/// let rps = firefly_metrics::rpcs_per_sec(10_000, 26.61);
/// assert_eq!(rps.round() as u64, 376); // The paper rounds to 375.
/// ```
pub fn rpcs_per_sec(calls: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    calls as f64 / seconds
}

/// Megabits per second of useful payload: `calls × payload_bytes × 8` bits
/// over `seconds`, in units of 10⁶ bits (the paper's "megabit" is decimal —
/// a 10 megabit/second Ethernet).
///
/// # Examples
///
/// ```
/// // Table I, row 4: 10000 MaxResult(b) calls in 24.93 s.
/// let mbps = firefly_metrics::megabits_per_sec(10_000, 1440, 24.93);
/// assert!((mbps - 4.62).abs() < 0.05);
/// ```
pub fn megabits_per_sec(calls: u64, payload_bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (calls as f64 * payload_bytes as f64 * 8.0) / seconds / 1e6
}

/// Time in seconds to complete `calls` at a given per-call latency in
/// microseconds, assuming serial execution (the paper's single-thread
/// rows).
pub fn serial_seconds(calls: u64, latency_micros: f64) -> f64 {
    calls as f64 * latency_micros / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_row_checks() {
        // Spot-check the paper's own arithmetic for several Table I rows.
        // (The paper rounds; we allow ±1 RPC/s and ±0.05 Mbit/s.)
        let cases = [
            (26.61, 375.0),
            (16.80, 595.0),
            (15.45, 647.0),
            (13.49, 741.0),
        ];
        for (secs, rps) in cases {
            assert!(
                (rpcs_per_sec(10_000, secs) - rps).abs() <= 1.0,
                "{secs} s -> {rps}"
            );
        }
        let mb = [(63.47, 1.82), (35.28, 3.28), (24.93, 4.65), (24.65, 4.70)];
        for (secs, mbps) in mb {
            assert!(
                (megabits_per_sec(10_000, 1440, secs) - mbps).abs() < 0.06,
                "{secs} s -> {mbps}"
            );
        }
    }

    #[test]
    fn zero_time_is_zero_throughput() {
        assert_eq!(rpcs_per_sec(100, 0.0), 0.0);
        assert_eq!(megabits_per_sec(100, 1440, 0.0), 0.0);
    }

    #[test]
    fn serial_time_round_trip() {
        // 10000 calls at 2661 µs each = 26.61 s (Table I row 1).
        let secs = serial_seconds(10_000, 2661.0);
        assert!((secs - 26.61).abs() < 1e-9);
    }
}
