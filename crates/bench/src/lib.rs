//! Shared helpers for the table-regeneration binaries.
//!
//! Each `bin/tableN` prints the paper's published numbers next to this
//! reproduction's, plus relative deltas, in plain text (default) or
//! Markdown (`--markdown`), so EXPERIMENTS.md can be regenerated
//! mechanically.

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

use firefly_metrics::Table;

pub mod account;
pub mod snapshot;

/// Output mode selected by the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Human-readable aligned text.
    Text,
    /// Markdown table fragments for EXPERIMENTS.md.
    Markdown,
}

/// Parses the standard bench-binary command line.
pub fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--markdown") {
        Mode::Markdown
    } else {
        Mode::Text
    }
}

/// Renders a table in the selected mode.
pub fn emit(table: &Table, mode: Mode) {
    match mode {
        Mode::Text => println!("{table}"),
        Mode::Markdown => println!("{}", table.render_markdown()),
    }
}

/// Formats a measured-vs-paper pair with a relative delta.
///
/// When the paper does not state a value (`f64::NAN` in the published
/// tables, e.g. [`IMPROVEMENTS`]) or states zero, there is no meaningful
/// delta, so only the bare measured value is emitted — the delta used to
/// render as the literal string `NaN%`.
pub fn vs(ours: f64, paper: f64, digits: usize) -> String {
    if paper == 0.0 || !paper.is_finite() {
        return format!("{ours:.*}", digits);
    }
    let delta = (ours - paper) / paper * 100.0;
    format!("{ours:.*} ({delta:+.0}%)", digits)
}

/// Formats a published value for table output: `f64::NAN` (the marker
/// for numbers the paper does not state) renders as `n/s` — "not
/// stated" — instead of the literal `NaN`.
pub fn paper_num(paper: f64, digits: usize) -> String {
    if paper.is_finite() {
        format!("{paper:.*}", digits)
    } else {
        "n/s".to_string()
    }
}

/// Published cross-system results for Table XII (machine, processor,
/// approximate MIPS expression, latency ms, throughput Mbit/s).
pub const OTHER_SYSTEMS: &[(&str, &str, &str, f64, f64)] = &[
    ("Cedar", "Dorado - custom", "1 x 4", 1.1, 2.0),
    ("Amoeba", "Tadpole - M68020", "1 x 1.5", 1.4, 5.3),
    ("V", "Sun 3/75 - M68020", "1 x 2", 2.5, 4.4),
    ("Sprite", "Sun 3/75 - M68020", "1 x 2", 2.8, 5.6),
    ("Amoeba/Unix", "Sun 3/50 - M68020", "1 x 1.5", 7.0, 1.8),
];

/// The paper's own Firefly rows in Table XII (uniprocessor and
/// five-processor), for comparison against simulated values.
pub const FIREFLY_ROWS: &[(&str, &str, f64, f64)] = &[
    ("Firefly (1 CPU)", "FF - MicroVAX II 1x1", 4.8, 2.5),
    ("Firefly (5 CPUs)", "FF - MicroVAX II 5x1", 2.7, 4.6),
];

/// Table I as published: (threads, Null seconds, Null RPCs/s, MaxResult
/// seconds, MaxResult Mbit/s), for 10000 calls.
pub const TABLE_I: &[(usize, f64, f64, f64, f64)] = &[
    (1, 26.61, 375.0, 63.47, 1.82),
    (2, 16.80, 595.0, 35.28, 3.28),
    (3, 16.26, 615.0, 27.28, 4.25),
    (4, 15.45, 647.0, 24.93, 4.65),
    (5, 15.11, 662.0, 24.69, 4.69),
    (6, 14.69, 680.0, 24.65, 4.70),
    (7, 13.49, 741.0, 24.72, 4.69),
    (8, 13.67, 732.0, 24.68, 4.69),
];

/// Table X as published: (caller CPUs, server CPUs, seconds per 1000
/// Null() calls with the RPC Exerciser).
pub const TABLE_X: &[(usize, usize, f64)] = &[
    (5, 5, 2.69),
    (4, 5, 2.73),
    (3, 5, 2.85),
    (2, 5, 2.98),
    (1, 5, 3.96),
    (1, 4, 3.98),
    (1, 3, 4.13),
    (1, 2, 4.21),
    (1, 1, 4.81),
];

/// Table XI as published: throughput (Mbit/s) of MaxResult(b) for
/// (caller CPUs, server CPUs) = (5,5), (1,5), (1,1) × 1–5 caller threads.
pub const TABLE_XI: [[f64; 5]; 3] = [
    [2.0, 3.4, 4.6, 4.7, 4.7],
    [1.5, 2.3, 2.7, 2.7, 2.7],
    [1.3, 2.0, 2.4, 2.5, 2.5],
];

/// §4.2's published estimates: (name, Null µs saved, Null %, MaxResult µs
/// saved, MaxResult %). `f64::NAN` marks values the paper does not state.
pub const IMPROVEMENTS: &[(&str, f64, f64, f64, f64)] = &[
    (
        "4.2.1 Different network controller",
        300.0,
        11.0,
        1800.0,
        28.0,
    ),
    ("4.2.2 Faster network (100 Mb/s)", 110.0, 4.0, 1160.0, 18.0),
    ("4.2.3 Faster CPUs (3x)", 1380.0, 52.0, 2280.0, 36.0),
    ("4.2.4 Omit UDP checksums", 180.0, 7.0, 1000.0, 16.0),
    ("4.2.5 Redesign RPC protocol", 200.0, 8.0, 200.0, 3.0),
    ("4.2.6 Omit IP/UDP layering", 100.0, 4.0, 100.0, 1.5),
    ("4.2.7 Busy wait", 440.0, 17.0, 440.0, 7.0),
    ("4.2.8 Recode RPC runtime", 280.0, 10.0, 280.0, 4.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_formats_deltas() {
        assert_eq!(vs(110.0, 100.0, 0), "110 (+10%)");
        assert_eq!(vs(95.0, 100.0, 1), "95.0 (-5%)");
    }

    #[test]
    fn vs_with_unstated_paper_value_emits_bare_measurement() {
        // Regression: a NAN paper value (the IMPROVEMENTS marker for
        // numbers the paper does not state) rendered as "123 (NaN%)".
        assert_eq!(vs(123.0, f64::NAN, 0), "123");
        assert_eq!(vs(123.4, f64::NAN, 1), "123.4");
        assert_eq!(vs(123.0, f64::INFINITY, 0), "123");
        // Zero already took the bare-value path; keep it that way.
        assert_eq!(vs(7.0, 0.0, 0), "7");
    }

    #[test]
    fn paper_num_marks_unstated_values() {
        assert_eq!(paper_num(440.0, 0), "440");
        assert_eq!(paper_num(4.65, 2), "4.65");
        assert_eq!(paper_num(f64::NAN, 0), "n/s");
    }

    #[test]
    fn table_constants_are_consistent() {
        assert_eq!(TABLE_I.len(), 8);
        assert_eq!(TABLE_X.len(), 9);
        assert_eq!(IMPROVEMENTS.len(), 8);
        // Table I's own arithmetic: RPCs/s ≈ 10000 / seconds.
        for (_, secs, rps, _, _) in TABLE_I {
            assert!((10_000.0 / secs - rps).abs() < 6.0);
        }
        // Every IMPROVEMENTS cell must render NaN-free through the
        // table helpers, whether the paper states it or marks it NAN.
        for &(name, a, b, c, d) in IMPROVEMENTS {
            for v in [a, b, c, d] {
                assert!(!vs(100.0, v, 0).contains("NaN"), "{name}");
                assert!(!paper_num(v, 0).contains("NaN"), "{name}");
            }
        }
    }
}
