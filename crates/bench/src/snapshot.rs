//! The repo's performance trajectory: one machine-readable
//! `BENCH_NNNN.json` per measurement run, captured from the *real* RPC
//! stack over loopback UDP (real sockets, real demux threads — not the
//! discrete-event simulator the `tableN` binaries use for paper-hardware
//! numbers).
//!
//! Each snapshot carries four sections, mirroring how the paper reports
//! its own numbers:
//!
//! * `latency_us` — Null() and MaxResult round-trip histogram summaries
//!   (count/mean/min/max/p50/p95/p99), the Table I latency analog;
//! * `throughput` — single-caller and multi-caller call rates plus the
//!   MaxResult data rate, the Table I throughput analog;
//! * `trace` — the per-step Table VII account from `firefly_rpc::trace`,
//!   with accounted-vs-measured coverage;
//! * `ablations` — live measured §4.2 what-ifs (checksums off, busy-wait
//!   spin, fragment blasting), baseline and ablated side by side.
//!
//! `gate_metrics` flattens the headline numbers into
//! `name → {value, direction, unit}` rows so `scripts/bench_gate.sh` can
//! diff consecutive snapshots with the paper's ±10% discipline without
//! re-deriving paths into the nested sections. The schema is documented
//! in `docs/BENCH.md`.

use firefly_idl::{parse_interface, test_interface, Value};
use firefly_metrics::{Histogram, Json, Stopwatch};
use firefly_rpc::transport::UdpTransport;
use firefly_rpc::{Client, Config, Endpoint, ServiceBuilder};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema identifier stamped into every snapshot; bump on breaking
/// changes so the gate can refuse cross-schema comparisons.
pub const SCHEMA: &str = "firefly-bench-snapshot/1";

/// Snapshots are numbered from the PR that introduced them, so the
/// first file a fresh checkout writes is `BENCH_0006.json` even though
/// no earlier snapshot exists.
pub const FIRST_NUMBER: u32 = 6;

/// Payload bytes of one MaxResult call (the paper's maximum single
/// packet result).
const MAX_RESULT_BYTES: usize = 1440;

/// Work sizes for one snapshot run.
#[derive(Debug, Clone)]
pub struct SnapshotSpec {
    /// Timed calls per latency histogram.
    pub latency_calls: usize,
    /// Untimed calls before every measured section.
    pub warmup: usize,
    /// Caller threads in the multi-caller throughput section.
    pub throughput_threads: usize,
    /// Calls per caller thread in each throughput section.
    pub throughput_calls: usize,
    /// Traced calls for the per-step account.
    pub trace_calls: usize,
    /// Timed calls per ablation arm (baseline and ablated each run this
    /// many).
    pub ablation_calls: usize,
    /// Marks the snapshot as a smoke run (CI-budget sizes). Smoke
    /// snapshots are never comparable to full ones, and the gate
    /// refuses to try.
    pub smoke: bool,
}

impl SnapshotSpec {
    /// The real measurement run.
    pub fn full() -> SnapshotSpec {
        SnapshotSpec {
            latency_calls: 2000,
            warmup: 200,
            throughput_threads: 4,
            // Long enough per thread that the multi-caller sections
            // measure the steady-state wave pipeline (coalesced results
            // waking the next round of combined calls), not the ramp:
            // at 4x500 the ramp is ~25% of the window.
            throughput_calls: 2000,
            trace_calls: 500,
            ablation_calls: 400,
            smoke: false,
        }
    }

    /// A seconds-scale run for `verify.sh`: same code paths, CI-sized
    /// counts.
    pub fn smoke() -> SnapshotSpec {
        SnapshotSpec {
            latency_calls: 150,
            warmup: 30,
            throughput_threads: 4,
            throughput_calls: 60,
            trace_calls: 120,
            ablation_calls: 80,
            smoke: true,
        }
    }
}

/// A server/caller endpoint pair over real localhost UDP sockets,
/// serving the paper's test interface (Null/MaxResult/MaxArg).
fn udp_pair(config: Config) -> (Arc<Endpoint>, Arc<Endpoint>, Client) {
    let server = Endpoint::new(
        UdpTransport::localhost().expect("server socket"),
        config.clone(),
    )
    .expect("server endpoint");
    let caller = Endpoint::new(UdpTransport::localhost().expect("caller socket"), config)
        .expect("caller endpoint");
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(MAX_RESULT_BYTES)?.fill(0xab);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .expect("test service");
    server.export(service).expect("export");
    let client = caller
        .bind(&test_interface(), server.address())
        .expect("bind");
    (server, caller, client)
}

/// Same, serving an echo interface whose `Blob` procedure reflects
/// arbitrary-size byte arrays — the multi-fragment workload for the
/// fragment-blast ablation.
fn echo_pair(config: Config) -> (Arc<Endpoint>, Arc<Endpoint>, Client) {
    let iface = parse_interface(
        "DEFINITION MODULE Echo;
           PROCEDURE Blob(VAR IN data: ARRAY OF CHAR; VAR OUT copy: ARRAY OF CHAR);
         END Echo.",
    )
    .expect("echo interface");
    let server = Endpoint::new(
        UdpTransport::localhost().expect("server socket"),
        config.clone(),
    )
    .expect("server endpoint");
    let caller = Endpoint::new(UdpTransport::localhost().expect("caller socket"), config)
        .expect("caller endpoint");
    let service = ServiceBuilder::new(iface.clone())
        .on_call("Blob", |args, w| {
            let data = args[0].bytes().unwrap();
            w.next_bytes(data.len())?.copy_from_slice(data);
            Ok(())
        })
        .build()
        .expect("echo service");
    server.export(service).expect("export");
    let client = caller.bind(&iface, server.address()).expect("bind");
    (server, caller, client)
}

/// One procedure's workload: name plus the argument vector every call
/// carries.
#[derive(Clone)]
struct Workload {
    procedure: &'static str,
    args: Vec<Value>,
}

impl Workload {
    fn null() -> Workload {
        Workload {
            procedure: "Null",
            args: Vec::new(),
        }
    }

    fn max_result() -> Workload {
        Workload {
            procedure: "MaxResult",
            args: vec![Value::char_array(MAX_RESULT_BYTES)],
        }
    }

    fn blob(bytes: usize) -> Workload {
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        Workload {
            procedure: "Blob",
            args: vec![Value::Bytes(data), Value::Bytes(Vec::new())],
        }
    }
}

/// Runs `warmup + calls` calls and returns a µs round-trip histogram of
/// the timed ones.
fn measure_latency(client: &Client, work: &Workload, calls: usize, warmup: usize) -> Histogram {
    for _ in 0..warmup {
        client.call(work.procedure, &work.args).expect("warmup call");
    }
    let mut hist = Histogram::new();
    for _ in 0..calls {
        let w = Stopwatch::start();
        client.call(work.procedure, &work.args).expect("timed call");
        hist.record(w.elapsed_micros());
    }
    hist
}

/// Drives `threads` caller threads through `calls` calls each over one
/// shared client and returns aggregate calls per second.
///
/// All caller threads rendezvous on a barrier before the clock starts,
/// so the timed window covers calls only — on a loaded box, spawning a
/// scoped thread costs a sizable fraction of a millisecond, which would
/// otherwise tax the multi-caller sections `threads` times more than
/// the single-caller one.
fn measure_throughput(client: &Client, work: &Workload, threads: usize, calls: usize) -> f64 {
    let start = std::sync::Barrier::new(threads + 1);
    let micros = std::thread::scope(|scope| {
        for _ in 0..threads {
            let client = client.clone();
            let work = work.clone();
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for _ in 0..calls {
                    client
                        .call(work.procedure, &work.args)
                        .expect("throughput call");
                }
            });
        }
        start.wait();
        // `thread::scope` joins every caller before returning, so the
        // stopwatch handed out here is read only after the last call
        // completes.
        Stopwatch::start()
    })
    .elapsed_micros();
    let secs = micros / 1e6;
    if secs > 0.0 {
        (threads * calls) as f64 / secs
    } else {
        0.0
    }
}

/// Renders one role's per-step histograms as a JSON array of
/// `{step, count, mean, …}` rows.
fn steps_json(steps: &[(&'static str, Histogram)]) -> Json {
    Json::Arr(
        steps
            .iter()
            .map(|(name, h)| {
                let mut row = Json::obj().set("step", Json::Str((*name).to_string()));
                if let Json::Obj(fields) = h.summary().to_json() {
                    for (k, v) in fields {
                        row = row.set(&k, v);
                    }
                }
                row
            })
            .collect(),
    )
}

/// The Table VII section: a traced Null() run over UDP with the
/// accounted-vs-measured comparison.
fn measure_trace(spec: &SnapshotSpec) -> Json {
    let config = Config {
        trace: true,
        trace_capacity: spec.trace_calls + spec.warmup + 64,
        ..Config::default()
    };
    let (server, caller, client) = udp_pair(config);
    let work = Workload::null();
    for _ in 0..spec.warmup {
        client.call(work.procedure, &work.args).expect("warmup");
    }
    // The server's record lands just after it sends the result; give the
    // last warmup record a moment before discarding, as run_account does.
    for _ in 0..10_000 {
        if server.tracer().recorded() >= spec.warmup as u64 {
            break;
        }
        std::thread::yield_now();
    }
    caller.tracer().drain(|_| {});
    server.tracer().drain(|_| {});

    let mut measured_sum = 0.0;
    for _ in 0..spec.trace_calls {
        let w = Stopwatch::start();
        client.call(work.procedure, &work.args).expect("traced call");
        measured_sum += w.elapsed_micros();
    }
    for _ in 0..10_000 {
        if server.tracer().recorded() >= (spec.warmup + spec.trace_calls) as u64 {
            break;
        }
        std::thread::yield_now();
    }
    let caller_report = caller.trace_report();
    let server_report = server.trace_report();

    let measured_mean = measured_sum / spec.trace_calls.max(1) as f64;
    let accounted_mean = caller_report.caller.accounted_mean_us();
    let coverage = if measured_mean > 0.0 {
        accounted_mean / measured_mean
    } else {
        0.0
    };
    Json::obj()
        .set("procedure", Json::Str(work.procedure.to_string()))
        .set("calls", Json::num(spec.trace_calls as f64))
        .set("measured_mean_us", Json::num(measured_mean))
        .set("accounted_mean_us", Json::num(accounted_mean))
        .set("coverage", Json::num(coverage))
        .set("caller_steps", steps_json(&caller_report.caller.steps))
        .set("server_steps", steps_json(&server_report.server.steps))
}

/// One §4.2 ablation: the same workload under the baseline and ablated
/// configs, p50s side by side.
fn measure_ablation(
    name: &str,
    section: &str,
    work: &Workload,
    baseline_cfg: Config,
    ablated_cfg: Config,
    spec: &SnapshotSpec,
) -> Json {
    let run = |cfg: Config| {
        let (_server, _caller, client) = if work.procedure == "Blob" {
            echo_pair(cfg)
        } else {
            udp_pair(cfg)
        };
        measure_latency(&client, work, spec.ablation_calls, spec.warmup)
    };
    let baseline = run(baseline_cfg);
    let ablated = run(ablated_cfg);
    let saved = baseline.percentile(50.0) - ablated.percentile(50.0);
    Json::obj()
        .set("name", Json::Str(name.to_string()))
        .set("section", Json::Str(section.to_string()))
        .set("procedure", Json::Str(work.procedure.to_string()))
        .set("calls", Json::num(spec.ablation_calls as f64))
        .set("baseline_p50_us", Json::num(baseline.percentile(50.0)))
        .set("ablated_p50_us", Json::num(ablated.percentile(50.0)))
        .set("saved_us", Json::num(saved))
        .set("baseline", baseline.summary().to_json())
        .set("ablated", ablated.summary().to_json())
}

/// One flat gate row.
fn gate_metric(value: f64, direction: &str, unit: &str) -> Json {
    Json::obj()
        .set("value", Json::num(value))
        .set("direction", Json::Str(direction.to_string()))
        .set("unit", Json::Str(unit.to_string()))
}

/// Runs every section and assembles the snapshot document.
pub fn run_snapshot(spec: &SnapshotSpec) -> Json {
    // Latency histograms, one endpoint pair for both procedures.
    let (_server, _caller, client) = udp_pair(Config::default());
    let null_hist = measure_latency(&client, &Workload::null(), spec.latency_calls, spec.warmup);
    let max_hist = measure_latency(
        &client,
        &Workload::max_result(),
        spec.latency_calls,
        spec.warmup,
    );

    // Throughput: single caller, then the multi-caller scope, then the
    // MaxResult data rate (Table I's Mb/s column).
    let single_rps = measure_throughput(
        &client,
        &Workload::null(),
        1,
        spec.throughput_calls * spec.throughput_threads,
    );
    let multi_rps = measure_throughput(
        &client,
        &Workload::null(),
        spec.throughput_threads,
        spec.throughput_calls,
    );
    let max_rps = measure_throughput(
        &client,
        &Workload::max_result(),
        spec.throughput_threads,
        spec.throughput_calls,
    );
    let max_mbps = max_rps * (MAX_RESULT_BYTES * 8) as f64 / 1e6;

    // Shard scaling: how much aggregate Null throughput the sharded
    // runtime (per-shard call table and pool, per-worker queues,
    // batched transport) adds when concurrent callers are offered, as
    // the N-thread/1-thread rps ratio. On a multi-core host this
    // measures parallel speedup across shards; on one core it measures
    // how far batching amortizes the per-call fixed costs (syscalls,
    // wakeups) that a lone caller pays serially.
    let scaling_ratio = if single_rps > 0.0 {
        multi_rps / single_rps
    } else {
        0.0
    };

    let trace = measure_trace(spec);

    let ablations = Json::Arr(vec![
        measure_ablation(
            "no_checksums",
            "4.2.4",
            &Workload::max_result(),
            Config::default(),
            Config::without_checksums(),
            spec,
        ),
        measure_ablation(
            "busy_wait",
            "4.2.7",
            &Workload::null(),
            Config::default(),
            Config::busy_wait(),
            spec,
        ),
        measure_ablation(
            "fragment_blast",
            "4.2.5",
            &Workload::blob(4 * MAX_RESULT_BYTES),
            Config::default(),
            Config::batched_fragments(),
            spec,
        ),
    ]);

    let gate = Json::obj()
        .set(
            "null_p50_us",
            gate_metric(null_hist.percentile(50.0), "lower", "us"),
        )
        .set(
            "null_p95_us",
            gate_metric(null_hist.percentile(95.0), "lower", "us"),
        )
        .set(
            "null_p99_us",
            gate_metric(null_hist.percentile(99.0), "lower", "us"),
        )
        .set(
            "maxresult_p50_us",
            gate_metric(max_hist.percentile(50.0), "lower", "us"),
        )
        .set(
            "single_caller_null_rps",
            gate_metric(single_rps, "higher", "calls/s"),
        )
        .set(
            "multi_caller_null_rps",
            gate_metric(multi_rps, "higher", "calls/s"),
        )
        .set(
            "multi_caller_maxresult_mbps",
            gate_metric(max_mbps, "higher", "Mb/s"),
        )
        .set(
            "null_scaling_ratio",
            gate_metric(scaling_ratio, "higher", "x"),
        );

    Json::obj()
        .set("schema", Json::Str(SCHEMA.to_string()))
        .set(
            "mode",
            Json::Str(if spec.smoke { "smoke" } else { "full" }.to_string()),
        )
        .set(
            "spec",
            Json::obj()
                .set("latency_calls", Json::num(spec.latency_calls as f64))
                .set("warmup", Json::num(spec.warmup as f64))
                .set(
                    "throughput_threads",
                    Json::num(spec.throughput_threads as f64),
                )
                .set("throughput_calls", Json::num(spec.throughput_calls as f64))
                .set("trace_calls", Json::num(spec.trace_calls as f64))
                .set("ablation_calls", Json::num(spec.ablation_calls as f64)),
        )
        .set(
            "latency_us",
            Json::obj()
                .set("Null", null_hist.summary().to_json())
                .set("MaxResult", max_hist.summary().to_json()),
        )
        .set(
            "throughput",
            Json::obj()
                .set("single_caller_null_rps", Json::num(single_rps))
                .set("multi_caller_null_rps", Json::num(multi_rps))
                .set(
                    "multi_caller_threads",
                    Json::num(spec.throughput_threads as f64),
                )
                .set("multi_caller_maxresult_mbps", Json::num(max_mbps)),
        )
        .set(
            "shard_scaling",
            Json::obj()
                .set("threads", Json::num(spec.throughput_threads as f64))
                .set("single_caller_null_rps", Json::num(single_rps))
                .set("multi_caller_null_rps", Json::num(multi_rps))
                .set("null_scaling_ratio", Json::num(scaling_ratio)),
        )
        .set("trace", trace)
        .set("ablations", ablations)
        .set("gate_metrics", gate)
}

/// Parses `BENCH_NNNN.json` file names; returns the number.
pub fn parse_snapshot_number(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    if digits.len() != 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The path the next snapshot in `dir` should be written to: one past
/// the highest existing `BENCH_NNNN.json`, but never below
/// [`FIRST_NUMBER`].
pub fn next_snapshot_path(dir: &Path) -> PathBuf {
    let mut max = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(n) = parse_snapshot_number(&entry.file_name().to_string_lossy()) {
                max = max.max(n);
            }
        }
    }
    dir.join(format!("BENCH_{:04}.json", (max + 1).max(FIRST_NUMBER)))
}

/// Writes `text` to `path` atomically (write a sibling temp file, then
/// rename), so a crashed or interrupted run never leaves a torn
/// snapshot for the gate to trip over.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_numbering() {
        assert_eq!(parse_snapshot_number("BENCH_0006.json"), Some(6));
        assert_eq!(parse_snapshot_number("BENCH_0123.json"), Some(123));
        assert_eq!(parse_snapshot_number("BENCH_6.json"), None);
        assert_eq!(parse_snapshot_number("BENCH_00061.json"), None);
        assert_eq!(parse_snapshot_number("bench_0006.json"), None);
        assert_eq!(parse_snapshot_number("BENCH_0006.json.tmp"), None);
    }

    #[test]
    fn next_path_bootstraps_at_first_number() {
        let dir = std::env::temp_dir().join("firefly-bench-numbering-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let first = next_snapshot_path(&dir);
        assert!(first.ends_with("BENCH_0006.json"), "{first:?}");
        std::fs::write(dir.join("BENCH_0011.json"), "{}").unwrap();
        let next = next_snapshot_path(&dir);
        assert!(next.ends_with("BENCH_0012.json"), "{next:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join("firefly-bench-atomic-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_0006.json");
        write_atomic(&path, "{\"a\": 1}\n").unwrap();
        write_atomic(&path, "{\"a\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 2}\n");
        assert!(!dir.join("BENCH_0006.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
