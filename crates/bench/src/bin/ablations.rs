//! Ablations of the fast-path design features of §3.2.
//!
//! The paper lists the structural decisions that make Firefly RPC fast:
//! demultiplexing inside the receive interrupt (one wakeup per packet),
//! the shared packet-buffer pool (no mapping or copying), procedure
//! variables bound at bind time (no table lookup), direct-assignment
//! stubs (no interpreter), and on-the-fly receive-buffer recycling.
//!
//! Each ablation *undoes* one feature in the cost model and reruns the
//! simulator, quantifying what that feature buys on `Null()` and
//! `MaxResult(b)` — numbers the paper implies but never tabulates.

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn latency(cost: CostModel, p: Procedure) -> f64 {
    run(&WorkloadSpec {
        threads: 1,
        calls: 300,
        procedure: p,
        cost,
        background: false,
        ..WorkloadSpec::default()
    })
    .mean_latency_us
}

struct Ablation {
    name: &'static str,
    rationale: &'static str,
    build: fn() -> CostModel,
}

fn main() {
    let mode = mode_from_args();
    let ablations = [
        Ablation {
            name: "demux via datalink thread",
            rationale: "§3.2: the traditional approach \"doubles the number \
                        of wakeups required for an RPC\"",
            build: || {
                let mut m = CostModel::paper();
                // A second wakeup per received packet, plus requeueing
                // through the datalink thread's dispatch.
                m.wakeup *= 2.0;
                m
            },
        },
        Ablation {
            name: "no shared buffer pool",
            rationale: "§3.2: shared buffers eliminate \"extra address \
                        mapping operations or copying\"; undoing them costs \
                        one copy per packet plus a map operation",
            build: || {
                let mut m = CostModel::paper();
                // One extra copy of the packet (~0.3 µs/byte on a
                // MicroVAX, cf. Table III slope) + ~80 µs of mapping per
                // packet, charged to the receive interrupt path.
                m.rx_interrupt += 80.0;
                m.checksum_small += 74.0 * 0.3;
                m.checksum_large += 1514.0 * 0.3;
                m
            },
        },
        Ablation {
            name: "transport lookup per call",
            rationale: "§3.2: Starter/Transporter/Ender are \"procedure \
                        variables filled in at binding time, rather than \
                        finding the procedures by a table lookup\"",
            build: || {
                let mut m = CostModel::paper();
                // A hash + dispatch per runtime entry point (3 per call).
                m.starter += 20.0;
                m.transporter_send += 20.0;
                m.ender += 20.0;
                m
            },
        },
        Ablation {
            name: "interpreted marshalling",
            rationale: "§2.2/§3.2: stubs use \"custom generated assignment \
                        statements … rather than library procedures or an \
                        interpreter\"; Table IX prices interpretation at ~3x",
            build: || {
                let mut m = CostModel::paper();
                m.caller_stub *= 3.0;
                m.server_stub *= 3.0;
                m.marshal_scale *= 3.0;
                m
            },
        },
        Ablation {
            name: "no receive-buffer recycling",
            rationale: "§3.2: the interrupt handler recycles the call-table \
                        buffer to the receive queue; without it every packet \
                        pays a pool round trip in the handler",
            build: || {
                let mut m = CostModel::paper();
                m.rx_interrupt += 40.0;
                m
            },
        },
    ];

    let base_null = latency(CostModel::paper(), Procedure::Null);
    let base_max = latency(CostModel::paper(), Procedure::MaxResult);

    let mut t = Table::new(&[
        "Feature removed",
        "Null µs (+delta)",
        "MaxResult µs (+delta)",
    ])
    .title("Ablations of the Section 3.2 fast-path features (simulated)");
    t.row_owned(vec![
        "none (shipped system)".into(),
        format!("{base_null:.0}"),
        format!("{base_max:.0}"),
    ]);
    for a in &ablations {
        let n = latency((a.build)(), Procedure::Null);
        let m = latency((a.build)(), Procedure::MaxResult);
        t.row_owned(vec![
            a.name.into(),
            format!("{n:.0} (+{:.0})", n - base_null),
            format!("{m:.0} (+{:.0})", m - base_max),
        ]);
    }
    emit(&t, mode);
    println!("Rationale, per ablation:");
    for a in &ablations {
        println!("  - {}: {}", a.name, a.rationale);
    }
    println!(
        "\nAll five together would roughly undo the paper's \"factor of \
         three or so\" improvement over the initial implementation (§4)."
    );
}
