//! Table I: Time for 10000 RPCs, 1–8 caller threads.
//!
//! Runs the closed-loop workload on the Firefly simulator and prints the
//! reproduction next to the paper's values. With `--real`, additionally
//! runs the same workload shape on the real Rust stack over the loopback
//! transport (modern hardware: absolute numbers differ by orders of
//! magnitude; the *scaling shape* with threads is the comparison).

use firefly_bench::{emit, mode_from_args, vs, Mode, TABLE_I};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};

fn main() {
    let mode = mode_from_args();
    let calls: u64 = if std::env::args().any(|a| a == "--full") {
        10_000
    } else {
        2_000
    };
    let scale = 10_000.0 / calls as f64;

    let mut t = Table::new(&[
        "# of caller threads",
        "Null secs (paper)",
        "Null RPCs/s (paper)",
        "MaxResult secs (paper)",
        "MaxResult Mb/s (paper)",
    ])
    .title("Table I: Time for 10000 RPCs (simulated vs paper)");

    for &(threads, p_ns, p_rps, p_ms, p_mb) in TABLE_I {
        let rn = run(&WorkloadSpec {
            threads,
            calls,
            procedure: Procedure::Null,
            ..WorkloadSpec::default()
        });
        let rm = run(&WorkloadSpec {
            threads,
            calls,
            procedure: Procedure::MaxResult,
            ..WorkloadSpec::default()
        });
        t.row_owned(vec![
            threads.to_string(),
            vs(rn.seconds * scale, p_ns, 2),
            vs(rn.rpcs_per_sec, p_rps, 0),
            vs(rm.seconds * scale, p_ms, 2),
            vs(rm.megabits_per_sec, p_mb, 2),
        ]);
    }
    emit(&t, mode);

    // The §2.1 CPU-utilization note: ~1.2 CPUs on the caller at max
    // throughput, slightly less on the server, ~0.15 idle.
    let peak = run(&WorkloadSpec {
        threads: 4,
        calls,
        procedure: Procedure::MaxResult,
        ..WorkloadSpec::default()
    });
    println!(
        "At max throughput: caller {:.2} CPUs (paper ~1.2), server {:.2} (paper: slightly less)",
        peak.caller_cpus_used, peak.server_cpus_used
    );

    if std::env::args().any(|a| a == "--real") {
        real_stack(mode);
    }
}

/// The same experiment on the real Rust RPC stack (loopback transport).
fn real_stack(mode: Mode) {
    use firefly_idl::{test_interface, Value};
    use firefly_rpc::transport::LoopbackNet;
    use firefly_rpc::{Config, Endpoint, ServiceBuilder};
    use std::sync::Arc;

    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();

    let mut t = Table::new(&["threads", "Null RPCs/s", "MaxResult Mb/s"])
        .title("Real Rust stack over loopback (shape comparison only)");
    let calls_per_thread = 2000;
    for threads in [1usize, 2, 4, 8] {
        let mut null_rps = 0.0;
        let mut mb = 0.0;
        for proc_name in ["Null", "MaxResult"] {
            let w = firefly_metrics::Stopwatch::start();
            let mut handles = Vec::new();
            for _ in 0..threads {
                let client = client.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..calls_per_thread {
                        let args = if proc_name == "Null" {
                            vec![]
                        } else {
                            vec![Value::char_array(1440)]
                        };
                        client.call(proc_name, &args).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let secs = w.elapsed().as_secs_f64();
            let total = (threads * calls_per_thread) as u64;
            if proc_name == "Null" {
                null_rps = firefly_metrics::rpcs_per_sec(total, secs);
            } else {
                mb = firefly_metrics::megabits_per_sec(total, 1440, secs);
            }
        }
        t.row_owned(vec![
            threads.to_string(),
            format!("{null_rps:.0}"),
            format!("{mb:.0}"),
        ]);
    }
    emit(&t, mode);
    let _ = Arc::strong_count(&server);
}
