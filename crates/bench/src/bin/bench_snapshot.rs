//! Captures one `BENCH_NNNN.json` performance snapshot of the real RPC
//! stack over loopback UDP. See `docs/BENCH.md` for the schema and
//! `scripts/bench_gate.sh` for the ±10% trajectory gate that consumes
//! these files.
//!
//! ```text
//! bench_snapshot            # full run, writes BENCH_NNNN.json in the cwd
//! bench_snapshot --smoke    # CI-sized run (seconds, marked mode=smoke)
//! bench_snapshot --out P    # write to P instead of auto-numbering
//! ```

use firefly_bench::snapshot::{next_snapshot_path, run_snapshot, write_atomic, SnapshotSpec};
use std::path::PathBuf;

fn main() {
    let mut spec = SnapshotSpec::full();
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => spec = SnapshotSpec::smoke(),
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("bench_snapshot: --out needs a path");
                    std::process::exit(2);
                });
                out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: bench_snapshot [--smoke] [--out PATH]");
                return;
            }
            other => {
                eprintln!("bench_snapshot: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let doc = run_snapshot(&spec);
    if doc.contains_null() {
        // Json::num renders non-finite values as null; a null anywhere
        // means a measurement produced inf/NaN and the snapshot is unfit
        // to join the trajectory.
        eprintln!("bench_snapshot: snapshot contains a non-finite measurement; not writing");
        std::process::exit(1);
    }

    let path = out.unwrap_or_else(|| next_snapshot_path(&PathBuf::from(".")));
    write_atomic(&path, &doc.to_pretty()).unwrap_or_else(|e| {
        eprintln!("bench_snapshot: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });

    let mode = doc.get("mode").and_then(|m| m.as_str()).unwrap_or("?");
    println!("wrote {} (mode: {mode})", path.display());
    for section in ["latency_us", "throughput", "shard_scaling"] {
        if let Some(obj) = doc.get(section).and_then(|s| s.as_object()) {
            for (name, value) in obj {
                match value {
                    v if v.as_f64().is_some() => {
                        println!("  {section}.{name} = {:.1}", v.as_f64().unwrap());
                    }
                    v => {
                        if let Some(p50) = v.at(&["p50"]).and_then(|p| p.as_f64()) {
                            println!("  {section}.{name}.p50 = {p50:.1} us");
                        }
                    }
                }
            }
        }
    }
}
