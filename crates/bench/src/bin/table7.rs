//! Table VII: latency of stubs and RPC runtime for a call to Null()
//! (606 µs total on the MicroVAX II).

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::CostModel;

fn main() {
    let mode = mode_from_args();
    let m = CostModel::paper();
    let mut t = Table::new(&["Machine", "Procedure", "Microseconds"])
        .title("Table VII: Latency of stubs and RPC runtime");
    for (machine, name, us) in m.runtime_steps() {
        t.row_owned(vec![
            machine.to_string(),
            name.to_string(),
            format!("{us:.0}"),
        ]);
    }
    t.row_owned(vec![
        "".into(),
        "TOTAL".into(),
        format!("{:.0} (paper: 606)", m.runtime_total()),
    ]);
    emit(&t, mode);
    println!(
        "The Modula-2+ code includes 9 procedure calls at ~15 µs each — \
         about 20% of this time is calling sequence (paper §3.3)."
    );
}
