//! Local (same-machine) RPC: the paper's footnote gives 937 µs for a
//! local `Null()` against 2661 µs remote — a 2.8x ratio. This binary
//! measures the real Rust stack's local (shared-memory) and remote
//! (loopback) transports and compares the ratio.

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{test_interface, Value};
use firefly_metrics::{Stopwatch, Table};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};

fn service() -> std::sync::Arc<dyn firefly_rpc::Service> {
    ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap()
}

fn main() {
    let mode = mode_from_args();
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    server.export(service()).unwrap();

    // Remote transport: full protocol over the loopback Ethernet.
    let remote = caller.bind(&test_interface(), server.address()).unwrap();
    // Local transport: shared-memory, same stubs (bound on the server
    // endpoint itself, where the service lives).
    let local = server.bind_local(&test_interface()).unwrap();

    let iters = 5_000;
    let measure_remote = |name: &str, args: &[Value]| {
        let w = Stopwatch::start();
        for _ in 0..iters {
            remote.call(name, args).unwrap();
        }
        w.elapsed_micros() / iters as f64
    };
    let measure_local = |name: &str, args: &[Value]| {
        let w = Stopwatch::start();
        for _ in 0..iters {
            local.call(name, args).unwrap();
        }
        w.elapsed_micros() / iters as f64
    };

    let remote_null = measure_remote("Null", &[]);
    let local_null = measure_local("Null", &[]);
    let remote_max = measure_remote("MaxResult", &[Value::char_array(1440)]);
    let local_max = measure_local("MaxResult", &[Value::char_array(1440)]);

    let mut t = Table::new(&["Transport", "Null µs", "MaxResult µs"])
        .title("Local vs remote RPC on the real Rust stack (this machine)");
    t.row_owned(vec![
        "Remote (loopback Ethernet)".into(),
        format!("{remote_null:.1}"),
        format!("{remote_max:.1}"),
    ]);
    t.row_owned(vec![
        "Local (shared memory)".into(),
        format!("{local_null:.1}"),
        format!("{local_max:.1}"),
    ]);
    emit(&t, mode);
    println!(
        "Remote/local Null ratio: {:.1}x (paper: 2661/937 = {:.1}x)",
        remote_null / local_null,
        2661.0 / 937.0
    );
    println!(
        "Paper: \"the time for local transport is independent of packet \
         size\" — local MaxResult/Null = {:.1}x here (dominated by the \
         single 1440-byte copy back to the caller).",
        local_max / local_null
    );
}
