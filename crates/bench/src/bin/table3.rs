//! Table III: marshalling time for fixed-length CHAR arrays passed by
//! VAR OUT — 20 µs @ 4 bytes, 140 µs @ 400 bytes.

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{parse_interface, CompiledStub, StubEngine, Value};
use firefly_metrics::{Stopwatch, Table};
use std::sync::Arc;

fn measure_real(len: usize) -> f64 {
    let src = format!(
        "DEFINITION MODULE M; PROCEDURE P(VAR OUT b: ARRAY [0..{}] OF CHAR); END M.",
        len - 1
    );
    let iface = parse_interface(&src).unwrap();
    let p = iface.procedure("P").unwrap();
    let stub = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let out = vec![Value::Bytes(vec![7u8; len])];
    let mut buf = vec![0u8; len + 16];
    let iters = 100_000;
    let w = Stopwatch::start();
    for _ in 0..iters {
        let n = stub.marshal_result(&out, &mut buf).unwrap();
        let v = stub.unmarshal_result(&buf[..n]).unwrap();
        std::hint::black_box(v);
    }
    w.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "Array size (bytes)",
        "paper µs",
        "model µs",
        "real engine ns",
    ])
    .title("Table III: fixed length array, passed by VAR OUT");
    for (len, paper) in [(4usize, 20.0), (400, 140.0)] {
        let model = firefly_idl::cost::fixed_array_micros(len);
        t.row_owned(vec![
            len.to_string(),
            format!("{paper:.0}"),
            format!("{model:.0}"),
            format!("{:.0}", measure_real(len)),
        ]);
    }
    emit(&t, mode);
}
