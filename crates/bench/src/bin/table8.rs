//! Table VIII: composing Tables VI + VII (+ marshalling) into end-to-end
//! latency, and checking the composition against the simulator's measured
//! end-to-end time — the paper's "accounted … to within about 5%".

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn simulate(p: Procedure) -> f64 {
    let r = run(&WorkloadSpec {
        threads: 1,
        calls: 200,
        procedure: p,
        background: false,
        ..WorkloadSpec::default()
    });
    r.mean_latency_us
}

fn main() {
    let mode = mode_from_args();
    let m = CostModel::paper();

    let mut t = Table::new(&["Procedure", "Action", "Microseconds"])
        .title("Table VIII: Calculation of latency for RPC to Null() and MaxResult(b)");
    t.row(&["Null()", "Caller, server, stubs and RPC runtime", "606"]);
    t.row_owned(vec![
        "".into(),
        "Send+receive 74-byte call packet".into(),
        format!("{:.0}", m.send_receive_total(74)),
    ]);
    t.row_owned(vec![
        "".into(),
        "Send+receive 74-byte result packet".into(),
        format!("{:.0}", m.send_receive_total(74)),
    ]);
    t.row_owned(vec![
        "".into(),
        "TOTAL (paper: 2514)".into(),
        format!("{:.0}", m.null_composed()),
    ]);
    t.row(&[
        "MaxResult(b)",
        "Caller, server, stubs and RPC runtime",
        "606",
    ]);
    t.row(&["", "Marshall a 1440-byte VAR OUT result", "550"]);
    t.row_owned(vec![
        "".into(),
        "Send+receive 74-byte call packet".into(),
        format!("{:.0}", m.send_receive_total(74)),
    ]);
    t.row_owned(vec![
        "".into(),
        "Send+receive 1514-byte result packet".into(),
        format!("{:.0}", m.send_receive_total(1514)),
    ]);
    t.row_owned(vec![
        "".into(),
        "TOTAL (paper: 6524)".into(),
        format!("{:.0}", m.max_result_composed()),
    ]);
    emit(&t, mode);

    // The 5% account check against the simulated "measured" latency.
    let null_measured = simulate(Procedure::Null);
    let max_measured = simulate(Procedure::MaxResult);
    let mut c = Table::new(&["Procedure", "accounted µs", "measured µs", "gap"])
        .title("Account vs measured (paper: within ~5%; gaps of -131/+177 µs)");
    for (name, accounted, measured, paper_measured) in [
        ("Null()", m.null_composed(), null_measured, 2645.0),
        (
            "MaxResult(b)",
            m.max_result_composed(),
            max_measured,
            6347.0,
        ),
    ] {
        let gap = (measured - accounted) / accounted * 100.0;
        c.row_owned(vec![
            name.to_string(),
            format!("{accounted:.0}"),
            format!("{measured:.0} (paper best: {paper_measured:.0})"),
            format!("{gap:+.1}%"),
        ]);
        // The paper's own Null gap is 131/2514 = 5.2% ("within about 5%");
        // we carry the same residual explicitly, so allow ≤6%.
        assert!(gap.abs() < 6.0, "account off by more than ~5%");
    }
    emit(&c, mode);
    println!("Both gaps are within the paper's \"within about 5%\" accounting claim.");
}
