//! §5's pathology, reproduced on the real stack: "The good multiprocessor
//! code tends to lose about 1 packet/second when a single thread calls
//! Null() using uniprocessors, producing a penalty of about 600
//! milliseconds waiting for a retransmission to occur" — so calls
//! averaged ~20 ms until the statement order was fixed.
//!
//! We reproduce the mechanism: inject a small packet-loss rate and use
//! the historical 600 ms retransmission timeout; mean latency explodes by
//! orders of magnitude even though the loss rate is tiny. The "fix"
//! (losing no packets) restores microsecond latency.

use firefly_bench::{emit, mode_from_args};
use firefly_idl::test_interface;
use firefly_metrics::{Histogram, Stopwatch, Table};
use firefly_rpc::transport::{FaultPlan, LoopbackNet};
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use std::time::Duration;

fn main() {
    let mode = mode_from_args();
    let net = LoopbackNet::new();
    // The historical retransmission timeout: ~600 ms.
    let cfg = Config {
        retransmit_initial: Duration::from_millis(600),
        ..Config::default()
    };
    let server = Endpoint::new(net.station(1), cfg.clone()).unwrap();
    let caller = Endpoint::new(net.station(2), cfg).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, _w| Ok(()))
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let client = caller.bind(&test_interface(), server.address()).unwrap();

    let mut t = Table::new(&["Condition", "calls", "mean µs", "p99 µs", "retransmissions"])
        .title("Section 5: the swapped-lines bug (lost packet + 600 ms retransmit)");

    for (label, loss, calls) in [
        ("fixed code (no loss)", 0.0, 2000u64),
        ("buggy code (~1 pkt/s lost)", 0.004, 400),
    ] {
        net.set_faults(FaultPlan {
            loss,
            ..FaultPlan::default()
        });
        let mut h = Histogram::new();
        let before = caller.stats().retransmissions();
        for _ in 0..calls {
            let w = Stopwatch::start();
            client.call("Null", &[]).unwrap();
            h.record(w.elapsed_micros());
        }
        let retr = caller.stats().retransmissions() - before;
        t.row_owned(vec![
            label.into(),
            calls.to_string(),
            format!("{:.0}", h.mean()),
            format!("{:.0}", h.percentile(99.0)),
            retr.to_string(),
        ]);
    }
    emit(&t, mode);
    println!(
        "The paper measured ~20 ms average Null() latency under this bug \
         against ~2.7 ms fixed — a tiny loss rate is catastrophic when \
         the retransmission timeout is 600 ms. \"Fixing the problem \
         requires swapping the order of a few statements at a penalty of \
         about 100 microseconds for multiprocessor latency.\""
    );
}
