//! Table XII: published RPC performance of other systems, with this
//! reproduction's simulated Firefly rows next to the paper's.

use firefly_bench::{emit, mode_from_args, FIREFLY_ROWS, OTHER_SYSTEMS};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn firefly_row(cpus: usize) -> (f64, f64) {
    // Latency: 1-thread Null with the exerciser (the paper's Table XII
    // Firefly numbers come from the §5 exerciser runs).
    let lat = run(&WorkloadSpec {
        threads: 1,
        calls: 500,
        procedure: Procedure::Null,
        cost: CostModel::exerciser(),
        caller_cpus: cpus,
        server_cpus: cpus,
        background: true,
    });
    // Throughput: saturated MaxResult.
    let thr = run(&WorkloadSpec {
        threads: 5,
        calls: 1500,
        procedure: Procedure::MaxResult,
        cost: CostModel::exerciser(),
        caller_cpus: cpus,
        server_cpus: cpus,
        background: true,
    });
    (lat.mean_latency_us / 1000.0, thr.megabits_per_sec)
}

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "System",
        "Machine - Processor",
        "~MIPs",
        "Latency ms",
        "Throughput Mb/s",
    ])
    .title("Table XII: Performance of remote RPC in other systems (published values)");
    for &(sys, machine, mips, lat, thr) in OTHER_SYSTEMS {
        t.row_owned(vec![
            sys.into(),
            machine.into(),
            mips.into(),
            format!("{lat:.1}"),
            format!("{thr:.1}"),
        ]);
    }
    for (i, &(name, machine, p_lat, p_thr)) in FIREFLY_ROWS.iter().enumerate() {
        let cpus = if i == 0 { 1 } else { 5 };
        let (lat, thr) = firefly_row(cpus);
        t.row_owned(vec![
            name.into(),
            machine.into(),
            if cpus == 1 {
                "1 x 1".into()
            } else {
                "5 x 1".into()
            },
            format!("{lat:.1} (paper {p_lat})"),
            format!("{thr:.1} (paper {p_thr})"),
        ]);
    }
    emit(&t, mode);
    println!(
        "All measurements are inter-machine Null() over 10 Mb Ethernet \
         except Cedar (3 Mb Ethernet). The paper's point stands: \
         \"Determining a winner in the RPC sweepstakes is tricky business.\""
    );
}
