//! §4.2: the eight speculated improvements, reproduced two ways — by the
//! paper's own arithmetic over the cost model, and by actually running
//! the simulator with the modified parameters.

use firefly_bench::{emit, mode_from_args, paper_num, IMPROVEMENTS};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::{CostModel, Improvement};

fn simulate(cost: CostModel, p: Procedure) -> f64 {
    run(&WorkloadSpec {
        threads: 1,
        calls: 300,
        procedure: p,
        cost,
        background: false,
        ..WorkloadSpec::default()
    })
    .mean_latency_us
}

fn main() {
    let mode = mode_from_args();
    let improvements = [
        Improvement::BetterController,
        Improvement::FasterNetwork,
        Improvement::FasterCpus,
        Improvement::OmitChecksums,
        Improvement::RedesignProtocol,
        Improvement::OmitIpUdp,
        Improvement::BusyWait,
        Improvement::RecodeRuntime,
    ];

    let base_null = simulate(CostModel::paper(), Procedure::Null);
    let base_max = simulate(CostModel::paper(), Procedure::MaxResult);
    let model = CostModel::paper();

    let mut t = Table::new(&[
        "Improvement",
        "Null µs saved (paper)",
        "Null % (paper)",
        "MaxResult µs saved (paper)",
        "MaxResult % (paper)",
    ])
    .title("Section 4.2: Speculations on future improvements (simulated vs paper)");

    for (imp, &(name, p_null_us, p_null_pct, p_max_us, p_max_pct)) in
        improvements.iter().zip(IMPROVEMENTS)
    {
        let cost = CostModel::with_improvement(*imp);
        let null_saved = base_null - simulate(cost.clone(), Procedure::Null);
        let max_saved = base_max - simulate(cost, Procedure::MaxResult);
        let null_pct = null_saved / base_null * 100.0;
        let max_pct = max_saved / base_max * 100.0;
        // paper_num renders unstated (NAN-marked) published values as
        // "n/s" instead of the literal "NaN".
        t.row_owned(vec![
            name.into(),
            format!("{null_saved:.0} ({})", paper_num(p_null_us, 0)),
            format!("{null_pct:.0} ({})", paper_num(p_null_pct, 0)),
            format!("{max_saved:.0} ({})", paper_num(p_max_us, 0)),
            format!("{max_pct:.0} ({})", paper_num(p_max_pct, 0)),
        ]);
    }
    emit(&t, mode);

    // The cost-model arithmetic (the paper's own derivation), which the
    // crate's unit tests pin to the published numbers.
    println!(
        "Cost-model composition: Null {} µs, MaxResult {} µs (paper: 2514 / 6524).",
        model.null_composed(),
        model.max_result_composed()
    );
    println!(
        "Note (paper): \"the effects discussed are not always independent, so \
         the performance improvement figures cannot always be added.\""
    );
}
