//! Table V: marshalling time for `Text.T` arguments — 89 µs NIL, 378 µs
//! @ 1 byte, 659 µs @ 128 bytes. "Most of the time … is spent in the Text
//! library procedures": the dominant cost is the server-side allocation
//! of a fresh immutable text, which the real engine reproduces with a
//! fresh `Arc<str>` per call.

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{parse_interface, CompiledStub, StubEngine, Value};
use firefly_metrics::{Stopwatch, Table};
use std::sync::Arc;

fn measure_real(v: &Value) -> f64 {
    let iface = parse_interface("DEFINITION MODULE M; PROCEDURE P(t: Text.T); END M.").unwrap();
    let p = iface.procedure("P").unwrap();
    let stub = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args = vec![v.clone()];
    let mut buf = vec![0u8; 512];
    let iters = 100_000;
    let w = Stopwatch::start();
    for _ in 0..iters {
        let n = stub.marshal_call(&args, &mut buf).unwrap();
        // The server-side unmarshal performs the Text.T allocation.
        let a = stub.unmarshal_call(&buf[..n]).unwrap();
        std::hint::black_box(a);
    }
    w.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&["Text size", "paper µs", "model µs", "real engine ns"])
        .title("Table V: Text.T argument");
    let cases: [(&str, Option<usize>, Value); 3] = [
        ("NIL", None, Value::nil_text()),
        ("1", Some(1), Value::text("x")),
        ("128", Some(128), Value::text(&"y".repeat(128))),
    ];
    for (label, len, value) in cases {
        let paper = firefly_idl::cost::text_micros(len);
        t.row_owned(vec![
            label.to_string(),
            format!("{paper:.0}"),
            format!("{paper:.0}"),
            format!("{:.0}", measure_real(&value)),
        ]);
    }
    emit(&t, mode);
}
