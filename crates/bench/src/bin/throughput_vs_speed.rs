//! §6's footnote: "we noticed that throughput has remained the same as
//! the last few performance improvements were put in place. The CPU
//! utilization continued to drop as the code got faster." — because the
//! controller, not the software, limits saturation throughput.
//!
//! We sweep a software-speed factor over the cost model and report
//! saturated MaxResult throughput and caller CPU utilization.

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

/// Scales every software cost by `k` (1.0 = the shipped assembly code;
/// >1 = slower, <1 = faster than shipped).
fn scaled(k: f64) -> CostModel {
    let mut m = CostModel::paper();
    for f in [
        &mut m.sender_header,
        &mut m.checksum_small,
        &mut m.checksum_large,
        &mut m.trap,
        &mut m.queue_packet,
        &mut m.ipi_handler,
        &mut m.activate_controller,
        &mut m.io_interrupt,
        &mut m.rx_interrupt,
        &mut m.wakeup,
        &mut m.caller_loop,
        &mut m.caller_stub,
        &mut m.starter,
        &mut m.transporter_send,
        &mut m.receiver_recv,
        &mut m.server_stub,
        &mut m.null_proc,
        &mut m.receiver_send,
        &mut m.transporter_recv,
        &mut m.ender,
        &mut m.residual,
        &mut m.marshal_scale,
    ] {
        *f *= k;
    }
    m
}

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "software speed vs shipped",
        "MaxResult Mb/s (4 threads)",
        "caller CPUs used",
    ])
    .title("Section 6 footnote: throughput flat, CPU use dropping, as code gets faster");
    let mut last_mb = 0.0;
    for (label, k) in [
        ("3x slower (early Modula-2+)", 3.0),
        ("2x slower", 2.0),
        ("shipped (assembly)", 1.0),
        ("1.5x faster", 1.0 / 1.5),
        ("3x faster", 1.0 / 3.0),
    ] {
        let r = run(&WorkloadSpec {
            threads: 4,
            calls: 2000,
            procedure: Procedure::MaxResult,
            cost: scaled(k),
            ..WorkloadSpec::default()
        });
        t.row_owned(vec![
            label.into(),
            format!("{:.2}", r.megabits_per_sec),
            format!("{:.2}", r.caller_cpus_used),
        ]);
        last_mb = r.megabits_per_sec;
    }
    emit(&t, mode);
    println!(
        "Once the software is fast enough, throughput pins at the \
         controller's limit (~{last_mb:.1} Mb/s here) and further code \
         speedups only reduce CPU utilization — exactly the paper's \
         observation."
    );
}
