//! Beyond the paper's testbed: several caller machines against one
//! server, testing §7's prediction that "the throughput of several RPC
//! implementations (including ours) appears limited by the network
//! controller hardware".
//!
//! With the stock DEQNA model, aggregate MaxResult throughput pins at the
//! server controller's limit no matter how many machines offer load. The
//! §4.2.1 improved controller shifts the bottleneck toward the wire.

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::multi::{run_multi, MultiSpec};
use firefly_sim::rpc::Procedure;
use firefly_sim::{CostModel, Improvement};

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "caller machines",
        "stock: Mb/s (srv ctrl / ether util)",
        "better ctrl: Mb/s (srv ctrl / ether util)",
    ])
    .title("Multi-caller saturation: one server, N caller machines, MaxResult(b)");
    for machines in [1usize, 2, 3, 4] {
        let stock = run_multi(&MultiSpec {
            caller_machines: machines,
            threads_per_machine: 4,
            calls: 2000,
            procedure: Procedure::MaxResult,
            cost: CostModel::paper(),
        });
        let better = run_multi(&MultiSpec {
            caller_machines: machines,
            threads_per_machine: 4,
            calls: 2000,
            procedure: Procedure::MaxResult,
            cost: CostModel::with_improvement(Improvement::BetterController),
        });
        t.row_owned(vec![
            machines.to_string(),
            format!(
                "{:.2} ({:.0}% / {:.0}%)",
                stock.megabits_per_sec,
                stock.server_controller_util * 100.0,
                stock.ether_util * 100.0
            ),
            format!(
                "{:.2} ({:.0}% / {:.0}%)",
                better.megabits_per_sec,
                better.server_controller_util * 100.0,
                better.ether_util * 100.0
            ),
        ]);
    }
    emit(&t, mode);
    println!(
        "Stock: the server's DEQNA saturates (~100% busy) at the same \
         ~4.6 Mb/s whether one or four machines offer load — §7's claim. \
         With §4.2.1's overlapped controller the Ethernet becomes the \
         next constraint."
    );
}
