//! Table XI: throughput of MaxResult(b) in megabits/second with varying
//! processor counts and 1–5 caller threads (1000 calls per thread).

use firefly_bench::{emit, mode_from_args, TABLE_XI};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn main() {
    let mode = mode_from_args();
    let configs = [(5usize, 5usize), (1, 5), (1, 1)];
    let mut t = Table::new(&[
        "caller threads",
        "5x5 Mb/s (paper)",
        "1x5 Mb/s (paper)",
        "1x1 Mb/s (paper)",
    ])
    .title("Table XI: Throughput of MaxResult(b) with varying numbers of processors");
    for threads in 1..=5usize {
        let mut cells = vec![threads.to_string()];
        for (ci, &(c, s)) in configs.iter().enumerate() {
            let r = run(&WorkloadSpec {
                threads,
                calls: 1000,
                procedure: Procedure::MaxResult,
                cost: CostModel::exerciser(),
                caller_cpus: c,
                server_cpus: s,
                background: true,
            });
            cells.push(format!(
                "{:.1} ({:.1})",
                r.megabits_per_sec,
                TABLE_XI[ci][threads - 1]
            ));
        }
        t.row_owned(cells);
    }
    emit(&t, mode);
    println!(
        "Shape check: \"Uniprocessor throughput is slightly more than half \
         of 5 processor performance for the same number of caller threads.\""
    );
}
