//! Table IX: execution time of the Ethernet interrupt routine across code
//! versions (758 µs original Modula-2+, 547 µs final Modula-2+, 177 µs
//! assembly), its effect on end-to-end RPC, and the modern analog:
//! interpreted vs compiled stub dispatch on the real engine.

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{test_interface, CompiledStub, InterpStub, StubEngine, Value};
use firefly_metrics::{Stopwatch, Table};
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::{CodeVersion, CostModel};
use std::sync::Arc;

fn main() {
    let mode = mode_from_args();

    let mut t = Table::new(&[
        "Version",
        "Interrupt routine µs (paper)",
        "Simulated Null() latency µs",
    ])
    .title("Table IX: Execution time for main path of the Ethernet interrupt routine");
    for (name, version) in [
        ("Original Modula-2+", CodeVersion::OriginalModula),
        ("Final Modula-2+", CodeVersion::FinalModula),
        ("Assembly language", CodeVersion::Assembly),
    ] {
        let cost = CostModel::with_code_version(version);
        let r = run(&WorkloadSpec {
            threads: 1,
            calls: 300,
            procedure: Procedure::Null,
            cost,
            background: false,
            ..WorkloadSpec::default()
        });
        t.row_owned(vec![
            name.to_string(),
            format!("{:.0}", version.interrupt_routine_us()),
            format!("{:.0}", r.mean_latency_us),
        ]);
    }
    emit(&t, mode);

    // Modern analog: the same marshalling plan executed by the
    // interpreted engine (per-element dispatch) vs the compiled engine
    // (block copies) — the Modula-2+-vs-assembly theme on today's metal.
    let iface = test_interface();
    let p = iface.procedure("MaxResult").unwrap();
    let comp = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let interp = InterpStub::new(p.name(), Arc::clone(p.plan()));
    let out = vec![Value::Bytes(vec![0xabu8; 1440])];
    let mut buf = vec![0u8; 1500];
    let iters = 50_000;

    let w = Stopwatch::start();
    for _ in 0..iters {
        let n = comp.marshal_result(&out, &mut buf).unwrap();
        std::hint::black_box(n);
    }
    let compiled_ns = w.elapsed().as_nanos() as f64 / iters as f64;

    let w = Stopwatch::start();
    for _ in 0..iters {
        let n = interp.marshal_result(&out, &mut buf).unwrap();
        std::hint::black_box(n);
    }
    let interp_ns = w.elapsed().as_nanos() as f64 / iters as f64;

    let mut a = Table::new(&["Engine", "1440-byte marshal ns", "ratio"])
        .title("Modern analog: interpreted vs compiled stubs (this machine)");
    a.row_owned(vec![
        "Interpreted (library style)".into(),
        format!("{interp_ns:.0}"),
        format!("{:.1}x", interp_ns / compiled_ns),
    ]);
    a.row_owned(vec![
        "Compiled (direct assignment)".into(),
        format!("{compiled_ns:.0}"),
        "1.0x".into(),
    ]);
    emit(&a, mode);
    println!(
        "The paper's assembly rewrite bought 758/177 = {:.1}x on the interrupt routine.",
        758.0 / 177.0
    );
}
