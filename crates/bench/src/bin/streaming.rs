//! §5's closing conjecture, tested: "It seems plausible that better
//! uniprocessor throughput could be achieved by an RPC design … that
//! streamed a large argument or result for a single call in multiple
//! packets … The streaming strategy requires fewer thread-to-thread
//! context switches."
//!
//! We transfer the same number of bytes two ways on the simulator —
//! N threads × MaxResult calls (the paper's design) versus one streamed
//! call (Amoeba/V/Sprite style) — on multiprocessors and uniprocessors.

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::stream::run_streaming;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn threaded(threads: usize, calls: u64, cpus: usize) -> (f64, f64) {
    let r = run(&WorkloadSpec {
        threads,
        calls,
        procedure: Procedure::MaxResult,
        cost: CostModel::exerciser(),
        caller_cpus: cpus,
        server_cpus: cpus,
        background: true,
    });
    (r.megabits_per_sec, r.caller_cpus_used)
}

fn main() {
    let mode = mode_from_args();
    let packets = 1000u64;
    let mut t = Table::new(&[
        "Configuration",
        "threads: Mb/s (CPUs)",
        "streaming: Mb/s (CPUs)",
    ])
    .title("Section 5: threads-per-packet vs streaming, same bytes transferred");
    for (label, cpus) in [("5 x 5 processors", 5usize), ("1 x 1 processors", 1)] {
        let (t_mbps, t_cpu) = threaded(3, packets, cpus);
        let s = run_streaming(packets, CostModel::exerciser(), cpus, cpus);
        t.row_owned(vec![
            label.into(),
            format!("{t_mbps:.2} ({t_cpu:.2})"),
            format!("{:.2} ({:.2})", s.megabits_per_sec, s.caller_cpus_used),
        ]);
    }
    emit(&t, mode);
    println!(
        "The conjecture holds: on the uniprocessor, streaming recovers \
         most of the multiprocessor's throughput because the per-packet \
         wakeups and thread-to-thread context switches disappear."
    );
}
