//! Table X: 1000 calls to Null() with varying processor counts, using the
//! RPC Exerciser (hand stubs, §5's swapped-lines fix installed).

use firefly_bench::{emit, mode_from_args, vs, TABLE_X};
use firefly_metrics::Table;
use firefly_sim::workload::{run, Procedure, WorkloadSpec};
use firefly_sim::CostModel;

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "caller processors",
        "server processors",
        "seconds for 1000 calls (paper)",
    ])
    .title("Table X: Calls to Null() with varying numbers of processors");
    for &(c, s, paper) in TABLE_X {
        let r = run(&WorkloadSpec {
            threads: 1,
            calls: 1000,
            procedure: Procedure::Null,
            cost: CostModel::exerciser(),
            caller_cpus: c,
            server_cpus: s,
            background: true,
        });
        t.row_owned(vec![c.to_string(), s.to_string(), vs(r.seconds, paper, 2)]);
    }
    emit(&t, mode);
    println!(
        "Shape check: the paper's signature is a gentle slope from 5 to 2 \
         caller CPUs and a sharp jump at 1 (the uniprocessor scheduler \
         path), with 1x1 about 75% slower than 5x5."
    );
}
