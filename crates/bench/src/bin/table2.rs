//! Table II: marshalling time for 4-byte integers passed by value —
//! 8 µs per argument on the MicroVAX II; plus the same experiment run on
//! the real Rust marshalling engine (nanoseconds today, but the same
//! per-argument linearity).

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{parse_interface, CompiledStub, StubEngine, Value};
use firefly_metrics::{Stopwatch, Table};
use std::sync::Arc;

/// Measures the real engine's marshal+unmarshal time per call for `n`
/// integer arguments, in nanoseconds.
fn measure_real(n: usize) -> f64 {
    let params = (0..n)
        .map(|i| format!("a{i}: INTEGER"))
        .collect::<Vec<_>>()
        .join("; ");
    let src = format!("DEFINITION MODULE M; PROCEDURE P({params}); END M.");
    let iface = parse_interface(&src).unwrap();
    let p = iface.procedure("P").unwrap();
    let stub = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args: Vec<Value> = (0..n).map(|i| Value::Integer(i as i32)).collect();
    let mut buf = vec![0u8; 64.max(4 * n)];
    let iters = 200_000;
    let w = Stopwatch::start();
    for _ in 0..iters {
        let len = stub.marshal_call(&args, &mut buf).unwrap();
        let a = stub.unmarshal_call(&buf[..len]).unwrap();
        std::hint::black_box(a);
    }
    w.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mode = mode_from_args();
    let mut t = Table::new(&[
        "# of arguments",
        "paper µs (MicroVAX II)",
        "model µs",
        "real engine ns (this machine)",
    ])
    .title("Table II: 4-byte integer arguments, passed by value");

    let zero = measure_real(0);
    for (n, paper) in [(1usize, 8.0), (2, 16.0), (4, 32.0)] {
        let model = firefly_idl::cost::int_by_value_micros(n);
        let real = measure_real(n) - zero;
        t.row_owned(vec![
            n.to_string(),
            format!("{paper:.0}"),
            format!("{model:.0}"),
            format!("{real:.0}"),
        ]);
    }
    emit(&t, mode);
    println!("(real-engine column is incremental over a 0-argument call, as in the paper)");
}
