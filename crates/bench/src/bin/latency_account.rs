//! The real stack's own Tables VII/VIII: a live per-step latency account
//! of Null() and MaxResult-style calls over the loopback Ethernet, built
//! from `firefly_rpc::trace` records.
//!
//! For each procedure it prints the caller-side step table (mean +
//! p50/p95/p99 per step), an "accounted vs measured" comparison in the
//! paper's style, and the server-side breakdown of the wire step.
//!
//! Flags:
//!   --markdown   emit Markdown instead of aligned text (EXPERIMENTS.md)
//!   --smoke      tiny run for scripts/verify.sh (no percentile value)
//!   --calls N    measured calls per procedure (default 2000)
//!   --profile    append a flat per-step "top offenders" profile, all
//!                steps of both roles ranked by total time
//!   --flame      emit folded stacks (flamegraph.pl input) on stdout
//!                instead of tables: `proc;role;step total-us`

use firefly_bench::account::{folded_stacks, paper_procedures, profile_table, run_account};
use firefly_bench::{emit, mode_from_args};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let profile = args.iter().any(|a| a == "--profile");
    let flame = args.iter().any(|a| a == "--flame");
    let calls = args
        .iter()
        .position(|a| a == "--calls")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 50 } else { 2000 });
    let warmup = if smoke { 10 } else { 200 };
    let mode = mode_from_args();

    for (procedure, call_args) in paper_procedures() {
        let account = run_account(procedure, &call_args, calls, warmup);
        if flame {
            // Folded stacks only: the output pipes straight into
            // `flamegraph.pl` (or any folded-stack consumer).
            for line in folded_stacks(procedure, &account.report) {
                println!("{line}");
            }
            continue;
        }
        emit(&account.caller_table(), mode);
        emit(&account.server_table(), mode);
        if profile {
            emit(
                &profile_table(
                    &format!("Profile: {procedure} (steps by total time)"),
                    &account.report,
                ),
                mode,
            );
        }
        println!(
            "{procedure}: accounted {:.2} us vs measured {:.2} us ({:.1}% explained)",
            account.accounted_mean_us,
            account.measured_mean_us,
            account.coverage() * 100.0
        );
        println!();
    }
    println!(
        "Paper analog: Table VII explains Null()'s 2660 us within a few \
         percent; tests/latency_account.rs holds this account to +/-10%."
    );
}
