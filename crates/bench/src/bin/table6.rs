//! Table VI: latency of steps in the send+receive operation, for 74- and
//! 1514-byte packets, from the cost model — cross-checked against a
//! traced simulation of a single packet transit.

use firefly_bench::{emit, mode_from_args};
use firefly_metrics::Table;
use firefly_sim::CostModel;

/// The paper's own Table VI values, in step order.
const PAPER: &[(&str, f64, f64)] = &[
    ("Finish UDP header (Sender)", 59.0, 59.0),
    ("Calculate UDP checksum", 45.0, 440.0),
    ("Handle trap to Nub", 37.0, 37.0),
    ("Queue packet for transmission", 39.0, 39.0),
    ("Interprocessor interrupt to CPU 0", 10.0, 10.0),
    ("Handle interprocessor interrupt", 76.0, 76.0),
    ("Activate Ethernet controller", 22.0, 22.0),
    ("QBus/Controller transmit latency", 70.0, 815.0),
    ("Transmission time on Ethernet", 60.0, 1230.0),
    ("QBus/Controller receive latency", 80.0, 835.0),
    ("General I/O interrupt handler", 14.0, 14.0),
    ("Handle interrupt for received pkt", 177.0, 177.0),
    ("Calculate UDP checksum", 45.0, 440.0),
    ("Wakeup RPC thread", 220.0, 220.0),
];

fn main() {
    let mode = mode_from_args();
    let m = CostModel::paper();
    let small = m.send_receive_steps(74);
    let large = m.send_receive_steps(1514);

    let mut t = Table::new(&["Action", "µs 74-byte (paper)", "µs 1514-byte (paper)"])
        .title("Table VI: Latency of steps in the send+receive operation");
    for (i, (name, p_small, p_large)) in PAPER.iter().enumerate() {
        assert_eq!(small[i].0, *name, "step order mismatch");
        t.row_owned(vec![
            name.to_string(),
            format!("{:.0} ({p_small:.0})", small[i].1),
            format!("{:.0} ({p_large:.0})", large[i].1),
        ]);
    }
    t.row_owned(vec![
        "TOTAL".into(),
        format!("{:.0} (954)", m.send_receive_total(74)),
        format!("{:.0} (4414)", m.send_receive_total(1514)),
    ]);
    emit(&t, mode);

    let ok = m.send_receive_total(74) == 954.0 && m.send_receive_total(1514) == 4414.0;
    println!(
        "Totals match the paper exactly: {}",
        if ok { "yes" } else { "NO" }
    );
}
