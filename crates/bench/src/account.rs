//! The real stack's own Table VII/VIII: a per-step latency account of
//! live RPCs over the loopback Ethernet, built from `firefly_rpc::trace`
//! records.
//!
//! The paper's methodology is to break one call into steps and check
//! that the steps *sum to* the measured end-to-end time ("The sum of the
//! [steps] ... accounts for all but a few percent"). [`run_account`]
//! reproduces that: it drives traced calls, pairs each call's stopwatch
//! measurement with its drained trace record, and reports the per-step
//! means next to an accounted-vs-measured comparison. The
//! `latency_account` binary prints it; `tests/latency_account.rs`
//! asserts the ±10% bound so the account cannot silently rot.

use firefly_idl::{test_interface, Value};
use firefly_metrics::table::{fnum, Align, Table};
use firefly_metrics::Stopwatch;
use firefly_rpc::trace::{Role, RoleReport, TraceRecord, TraceReport};
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};

/// Fraction of the slowest calls dropped before comparing accounted and
/// measured means. A call descheduled between the stopwatch start and
/// the span start (outside the traced window) would otherwise charge an
/// arbitrary amount of time to neither side of the comparison.
const TRIM_FRACTION: f64 = 0.10;

/// One procedure's completed account.
pub struct Account {
    /// Procedure name as called.
    pub procedure: String,
    /// Calls measured (after warmup).
    pub calls: usize,
    /// Calls kept after trimming the slowest [`TRIM_FRACTION`].
    pub kept: usize,
    /// Aggregated per-step histograms from the kept caller records and
    /// all server records.
    pub report: TraceReport,
    /// Mean of the kept per-call stopwatch times, µs.
    pub measured_mean_us: f64,
    /// Sum of the kept caller-step means, µs — what the trace explains.
    pub accounted_mean_us: f64,
}

impl Account {
    /// accounted / measured, as a fraction (1.0 = perfect account).
    pub fn coverage(&self) -> f64 {
        if self.measured_mean_us == 0.0 {
            return 0.0;
        }
        self.accounted_mean_us / self.measured_mean_us
    }

    /// Renders the caller-side account as a paper-style table.
    pub fn caller_table(&self) -> Table {
        let mut t = Table::new(&["Step", "Mean µs", "p50", "p95", "p99"])
            .title(&format!(
                "Latency account: {} ({} calls, {} kept)",
                self.procedure, self.calls, self.kept
            ))
            .aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for (name, h) in &self.report.caller.steps {
            t.row_owned(vec![
                name.to_string(),
                fnum(h.mean(), 2),
                fnum(h.percentile(50.0), 2),
                fnum(h.percentile(95.0), 2),
                fnum(h.percentile(99.0), 2),
            ]);
        }
        t.row_owned(vec![
            "TOTAL accounted (step sum)".into(),
            fnum(self.accounted_mean_us, 2),
            "".into(),
            "".into(),
            "".into(),
        ]);
        t.row_owned(vec![
            "Measured end-to-end (stopwatch)".into(),
            fnum(self.measured_mean_us, 2),
            "".into(),
            "".into(),
            "".into(),
        ]);
        t.row_owned(vec![
            "Accounted / measured".into(),
            format!("{:.1}%", self.coverage() * 100.0),
            "".into(),
            "".into(),
            "".into(),
        ]);
        t
    }

    /// Renders the server-side breakdown of the caller's "Wire + server
    /// + wakeup" step.
    pub fn server_table(&self) -> Table {
        let mut t = Table::new(&["Server step", "Mean µs", "p50", "p95", "p99"])
            .title(&format!(
                "Inside \"Wire + server + wakeup\": {} ({} server records)",
                self.procedure, self.report.server.records
            ))
            .aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for (name, h) in &self.report.server.steps {
            t.row_owned(vec![
                name.to_string(),
                fnum(h.mean(), 2),
                fnum(h.percentile(50.0), 2),
                fnum(h.percentile(95.0), 2),
                fnum(h.percentile(99.0), 2),
            ]);
        }
        let wire_step = self
            .report
            .caller
            .steps
            .iter()
            .find(|(name, _)| name.contains("Wire"))
            .map(|(_, h)| h.mean())
            .unwrap_or(0.0);
        let server_total = self.report.server.accounted_mean_us();
        t.row_owned(vec![
            "Wire transit + result delivery (residual)".into(),
            fnum((wire_step - server_total).max(0.0), 2),
            "".into(),
            "".into(),
            "".into(),
        ]);
        t
    }
}

/// Drives `calls` traced calls of `procedure` over a fresh loopback pair
/// and returns the paired account.
///
/// `args` travel on every call; `warmup` untimed calls run first so the
/// account describes the steady state (pools warm, activity registered,
/// caches hot), matching the paper's measurement discipline.
/// Renders one role's per-step histograms as a paper-style table.
/// Shared by the `latency_account` binary and the RPC exerciser, which
/// drains [`Endpoint::trace_report`](firefly_rpc::Endpoint) directly.
pub fn role_table(title: &str, role: &RoleReport) -> Table {
    let mut t = Table::new(&["Step", "Mean µs", "p50", "p95", "p99"])
        .title(title)
        .aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (name, h) in &role.steps {
        t.row_owned(vec![
            name.to_string(),
            fnum(h.mean(), 2),
            fnum(h.percentile(50.0), 2),
            fnum(h.percentile(95.0), 2),
            fnum(h.percentile(99.0), 2),
        ]);
    }
    t.row_owned(vec![
        "TOTAL (step sum)".into(),
        fnum(role.accounted_mean_us(), 2),
        "".into(),
        "".into(),
        "".into(),
    ]);
    t
}

/// A flat "top offenders" profile: every caller- and server-side step
/// of one report, ranked by total time spent in it. The cumulative
/// column answers the profiler question — how many steps explain 90%
/// of the latency — without reading two histogram tables side by side.
pub fn profile_table(title: &str, report: &TraceReport) -> Table {
    let mut rows: Vec<(String, f64, f64, u64)> = Vec::new();
    for (prefix, role) in [("caller", &report.caller), ("server", &report.server)] {
        for (name, h) in &role.steps {
            if h.count() > 0 {
                rows.push((format!("{prefix}: {name}"), h.sum(), h.mean(), h.count()));
            }
        }
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let grand: f64 = rows.iter().map(|r| r.1).sum();
    let mut t = Table::new(&["#", "Step", "Total ms", "Mean µs", "Samples", "Cum %"])
        .title(title)
        .aligns(&[
            Align::Right,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut cum = 0.0;
    for (i, (name, total, mean, count)) in rows.iter().enumerate() {
        cum += total;
        let share = if grand > 0.0 { cum / grand * 100.0 } else { 0.0 };
        t.row_owned(vec![
            (i + 1).to_string(),
            name.clone(),
            fnum(total / 1000.0, 2),
            fnum(*mean, 2),
            count.to_string(),
            format!("{share:.1}%"),
        ]);
    }
    t
}

/// Renders one report as folded stacks — the `flamegraph.pl` input
/// format, one `frame;frame;frame weight` line per stack, weight in
/// integer microseconds of total time spent in that step. The stack is
/// `procedure;role;step`, so a flamegraph groups by procedure, splits
/// caller vs server, and sizes each step by its histogram sum:
///
/// ```text
/// Null;caller;Wire + server + wakeup 104212
/// ```
pub fn folded_stacks(procedure: &str, report: &TraceReport) -> Vec<String> {
    let mut lines = Vec::new();
    for (role_name, role) in [("caller", &report.caller), ("server", &report.server)] {
        for (name, h) in &role.steps {
            if h.count() > 0 {
                lines.push(format!(
                    "{procedure};{role_name};{name} {}",
                    h.sum().round() as u64
                ));
            }
        }
    }
    lines
}

pub fn run_account(procedure: &str, args: &[Value], calls: usize, warmup: usize) -> Account {
    // Ring sized so no record of the measured window is ever dropped.
    let config = Config {
        trace: true,
        trace_capacity: calls + warmup + 64,
        ..Config::default()
    };
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), config.clone()).expect("server endpoint");
    let caller = Endpoint::new(net.station(2), config).expect("caller endpoint");
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0xab);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .expect("test service");
    server.export(service).expect("export");
    let client = caller
        .bind(&test_interface(), server.address())
        .expect("bind");

    for _ in 0..warmup {
        client.call(procedure, args).expect("warmup call");
    }
    // Discard warmup records so the account starts clean. The server
    // pushes its record after sending the result, so wait for the last
    // warmup record to land before draining.
    // The wait is microseconds (the record lands just after the result
    // send), so yielding is enough — and keeps this library sleep-free.
    for _ in 0..10_000 {
        if server.tracer().recorded() >= warmup as u64 {
            break;
        }
        std::thread::yield_now();
    }
    caller.tracer().drain(|_| {});
    server.tracer().drain(|_| {});

    let mut measured = Vec::with_capacity(calls);
    for _ in 0..calls {
        let w = Stopwatch::start();
        client.call(procedure, args).expect("measured call");
        measured.push(w.elapsed_micros());
    }

    // One caller thread: records drain in call order, so record i pairs
    // with measured[i].
    let mut records: Vec<TraceRecord> = Vec::with_capacity(calls);
    caller.tracer().drain(|rec| {
        if rec.role == Role::Caller && rec.is_complete() {
            records.push(*rec);
        }
    });
    let paired = records.len().min(measured.len());
    let mut order: Vec<usize> = (0..paired).collect();
    order.sort_by(|&a, &b| {
        measured[a]
            .partial_cmp(&measured[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let kept = paired - ((paired as f64 * TRIM_FRACTION) as usize).min(paired.saturating_sub(1));
    order.truncate(kept);

    let mut report = TraceReport::empty();
    let mut measured_sum = 0.0;
    for &i in &order {
        report.add(&records[i]);
        measured_sum += measured[i];
    }
    // Same post-result race on the measured window's final record.
    for _ in 0..10_000 {
        if server.tracer().recorded() >= (warmup + calls) as u64 {
            break;
        }
        std::thread::yield_now();
    }
    server.tracer().drain(|rec| {
        if rec.role == Role::Server && rec.is_complete() {
            report.add(rec);
        }
    });

    let measured_mean_us = if kept > 0 {
        measured_sum / kept as f64
    } else {
        0.0
    };
    let accounted_mean_us = report.caller.accounted_mean_us();
    Account {
        procedure: procedure.to_string(),
        calls,
        kept,
        report,
        measured_mean_us,
        accounted_mean_us,
    }
}

/// The two procedures the paper's latency tables account for: `Null()`
/// (Table VII) and a MaxResult-style call (Table VIII's large-transfer
/// analog). Returns `(procedure, args)` pairs for [`run_account`].
pub fn paper_procedures() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        ("Null", Vec::new()),
        ("MaxResult", vec![Value::char_array(1440)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_account_is_complete_and_plausible() {
        let account = run_account("Null", &[], 50, 10);
        assert!(account.kept >= 40, "kept {} of 50", account.kept);
        assert_eq!(account.report.caller.records, account.kept as u64);
        assert!(account.report.server.records > 0);
        assert!(account.measured_mean_us > 0.0);
        assert!(account.accounted_mean_us > 0.0);
        // Accounted time can never exceed what the stopwatch saw by much;
        // the strict ±10% bound lives in tests/latency_account.rs.
        assert!(account.coverage() > 0.5 && account.coverage() < 1.5);
    }
}
