//! Microbenchmarks of the real stack's fast-path components: the
//! modern-hardware counterparts of Tables II–VI and IX.
//!
//! A self-contained `std::time::Instant` harness (no Criterion): each
//! benchmark is calibrated until a batch runs long enough to time
//! reliably, then sampled repeatedly and reported as the median ns/op
//! with derived throughput where a payload size applies.
//!
//! Flags/env:
//!   --markdown            emit Markdown instead of aligned text
//!   --test                smoke mode: one tiny batch per benchmark
//!   FIREFLY_BENCH_SAMPLES overrides the sample count (default 9)

use firefly_bench::{emit, mode_from_args};
use firefly_idl::{parse_interface, test_interface, CompiledStub, InterpStub, StubEngine, Value};
use firefly_metrics::table::{fnum, Align, Table};
use firefly_pool::BufferPool;
use firefly_rng::Rng;
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use firefly_wire::{internet_checksum, ActivityId, Frame, FrameBuilder, PacketType};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Collects rows for the final report.
struct Runner {
    rows: Vec<(String, f64, Option<u64>)>,
    samples: u32,
    smoke: bool,
}

impl Runner {
    fn new() -> Self {
        let samples = std::env::var("FIREFLY_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(9);
        let smoke = std::env::args().any(|a| a == "--test");
        Runner {
            rows: Vec::new(),
            samples,
            smoke,
        }
    }

    /// Times `f`, returning the median ns per call across samples.
    fn measure<F: FnMut()>(&self, mut f: F) -> f64 {
        if self.smoke {
            let t = Instant::now();
            f();
            return t.elapsed().as_nanos() as f64;
        }
        // Calibrate: grow the batch until it takes at least 2 ms, so
        // Instant's resolution is negligible against the batch time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 28 {
                break;
            }
            // Aim straight for the target rather than doubling blindly.
            let scale = Duration::from_millis(2).as_nanos() as f64
                / dt.as_nanos().max(1) as f64;
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }
        let mut per_op: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
        per_op[per_op.len() / 2]
    }

    /// Runs one benchmark; `bytes` enables the throughput column.
    fn bench<F: FnMut()>(&mut self, name: &str, bytes: Option<u64>, f: F) {
        let ns = self.measure(f);
        self.rows.push((name.to_string(), ns, bytes));
    }

    fn report(self) {
        let mut table = Table::new(&["benchmark", "ns/op", "Mops/s", "MB/s"])
            .title("Microbenchmarks (median of samples)")
            .aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
        for (name, ns, bytes) in &self.rows {
            let mops = if *ns > 0.0 { 1e3 / ns } else { 0.0 };
            let mbps = match bytes {
                Some(b) if *ns > 0.0 => fnum(*b as f64 / *ns * 1e9 / 1e6, 1),
                _ => "-".to_string(),
            };
            table.row_owned(vec![name.clone(), fnum(*ns, 1), fnum(mops, 3), mbps]);
        }
        emit(&table, mode_from_args());
    }
}

/// Table VI's "Calculate UDP checksum" rows: 74- and 1514-byte frames.
fn bench_checksum(r: &mut Runner) {
    let mut rng = Rng::new(0xc0de_cafe);
    for size in [74usize, 1514] {
        let mut data = vec![0u8; size];
        rng.fill_bytes(&mut data);
        r.bench(&format!("checksum/{size}"), Some(size as u64), || {
            black_box(internet_checksum(black_box(&data)));
        });
    }
}

/// The Sender's job: build a complete frame with headers and checksum.
fn bench_frame_build(r: &mut Runner) {
    for payload in [0usize, 1440] {
        let data = vec![0xa5u8; payload];
        let builder = FrameBuilder::new(PacketType::Call)
            .activity(ActivityId::new(1, 2, 3))
            .call_seq(42);
        r.bench(&format!("frame_build/{payload}"), None, || {
            black_box(builder.build(black_box(&data)).unwrap());
        });
    }
}

/// The receive interrupt's job: validate and parse a frame.
fn bench_frame_parse(r: &mut Runner) {
    for payload in [0usize, 1440] {
        let data = vec![0xa5u8; payload];
        let frame = FrameBuilder::new(PacketType::Call).build(&data).unwrap();
        let bytes = frame.bytes().to_vec();
        r.bench(&format!("frame_parse/{payload}"), None, || {
            black_box(Frame::parse(black_box(&bytes)).unwrap());
        });
    }
}

/// Tables II–IV: marshalling by argument kind on the compiled engine.
fn bench_marshal(r: &mut Runner) {
    // Table II: four integers by value.
    let iface =
        parse_interface("DEFINITION MODULE M; PROCEDURE P(a, b, x, y: INTEGER); END M.").unwrap();
    let p = iface.procedure("P").unwrap();
    let ints = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args: Vec<Value> = (0..4).map(Value::Integer).collect();
    let mut buf = vec![0u8; 64];
    r.bench("marshal/four_integers", None, || {
        black_box(ints.marshal_call(black_box(&args), &mut buf).unwrap());
    });
    // Table IV: the 1440-byte open array.
    let iface = test_interface();
    let p = iface.procedure("MaxArg").unwrap();
    let blob = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args = vec![Value::char_array(1440)];
    let mut big = vec![0u8; 1500];
    r.bench("marshal/open_array_1440", Some(1440), || {
        black_box(blob.marshal_call(black_box(&args), &mut big).unwrap());
    });
    // Table V: a 128-byte Text.T round trip (allocation included).
    let iface = parse_interface("DEFINITION MODULE T; PROCEDURE P(t: Text.T); END T.").unwrap();
    let p = iface.procedure("P").unwrap();
    let text = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let targs = vec![Value::text(&"z".repeat(128))];
    let mut tbuf = vec![0u8; 256];
    r.bench("marshal/text_128_round_trip", None, || {
        let n = text.marshal_call(black_box(&targs), &mut tbuf).unwrap();
        let args = text.unmarshal_call(&tbuf[..n]).unwrap();
        black_box(args.len());
    });
}

/// Table IX analog: interpreted vs compiled stub engines on the same
/// marshalling plan.
fn bench_stub_dispatch(r: &mut Runner) {
    let iface = test_interface();
    let p = iface.procedure("MaxResult").unwrap();
    let comp = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let interp = InterpStub::new(p.name(), Arc::clone(p.plan()));
    let out = vec![Value::Bytes(vec![0xabu8; 1440])];
    let mut buf = vec![0u8; 1500];
    r.bench("stub_dispatch/compiled", Some(1440), || {
        black_box(comp.marshal_result(black_box(&out), &mut buf).unwrap());
    });
    r.bench("stub_dispatch/interpreted", Some(1440), || {
        black_box(interp.marshal_result(black_box(&out), &mut buf).unwrap());
    });
}

/// The buffer pool's fast path: alloc/free and the recycling path.
fn bench_pool(r: &mut Runner) {
    let pool = BufferPool::new(8);
    r.bench("pool/alloc_free", None, || {
        let buf = pool.alloc().unwrap();
        black_box(&buf);
    });
    r.bench("pool/recycle_take", None, || {
        let buf = pool.take_receive_buffer().unwrap();
        pool.recycle_to_receive_queue(buf);
    });
}

/// End-to-end round trips: local (shared memory) and remote (loopback
/// Ethernet) Null() and MaxResult(b) — the modern Table I row 1.
fn bench_rpc_round_trip(r: &mut Runner) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let remote = caller.bind(&test_interface(), server.address()).unwrap();
    let local = server.bind_local(&test_interface()).unwrap();

    r.bench("rpc_round_trip/remote_null", None, || {
        black_box(remote.call("Null", &[]).unwrap());
    });
    let arg = [Value::char_array(1440)];
    r.bench("rpc_round_trip/remote_max_result", Some(1440), || {
        black_box(remote.call("MaxResult", black_box(&arg)).unwrap());
    });
    r.bench("rpc_round_trip/local_null", None, || {
        black_box(local.call("Null", &[]).unwrap());
    });
    r.bench("rpc_round_trip/local_max_result", Some(1440), || {
        black_box(local.call("MaxResult", black_box(&arg)).unwrap());
    });
}

/// Tracing-is-observability guard: a traced Null() round trip must cost
/// less than 15% more than an untraced one. The trace write path is a
/// handful of `Instant` reads and one ring push per call, so anything
/// above that margin means an allocation or lock crept onto the fast
/// path.
fn bench_trace_overhead(r: &mut Runner) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, _w| Ok(()))
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let remote = caller.bind(&test_interface(), server.address()).unwrap();
    // Warm the path before either measurement so the comparison is
    // steady state vs steady state.
    for _ in 0..50 {
        remote.call("Null", &[]).unwrap();
    }
    let untraced = r.measure(|| {
        black_box(remote.call("Null", &[]).unwrap());
    });
    caller.set_tracing(true);
    server.set_tracing(true);
    let traced = r.measure(|| {
        black_box(remote.call("Null", &[]).unwrap());
    });
    r.rows
        .push(("rpc_round_trip/null_untraced".to_string(), untraced, None));
    r.rows
        .push(("rpc_round_trip/null_traced".to_string(), traced, None));
    if !r.smoke {
        let overhead = traced / untraced - 1.0;
        assert!(
            overhead < 0.15,
            "traced Null() overhead {:.1}% exceeds the 15% budget \
             (untraced {untraced:.0} ns, traced {traced:.0} ns)",
            overhead * 100.0
        );
    }
}

fn main() {
    let mut r = Runner::new();
    bench_checksum(&mut r);
    bench_frame_build(&mut r);
    bench_frame_parse(&mut r);
    bench_marshal(&mut r);
    bench_stub_dispatch(&mut r);
    bench_pool(&mut r);
    bench_rpc_round_trip(&mut r);
    bench_trace_overhead(&mut r);
    r.report();
}
