//! Criterion microbenchmarks of the real stack's fast-path components:
//! the modern-hardware counterparts of Tables II–VI and IX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use firefly_idl::{parse_interface, test_interface, CompiledStub, InterpStub, StubEngine, Value};
use firefly_pool::BufferPool;
use firefly_rpc::transport::LoopbackNet;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use firefly_wire::{internet_checksum, ActivityId, Frame, FrameBuilder, PacketType};
use std::hint::black_box;
use std::sync::Arc;

/// Table VI's "Calculate UDP checksum" rows: 74- and 1514-byte frames.
fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [74usize, 1514] {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| internet_checksum(black_box(data)));
        });
    }
    g.finish();
}

/// The Sender's job: build a complete frame with headers and checksum.
fn bench_frame_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_build");
    for payload in [0usize, 1440] {
        let data = vec![0xa5u8; payload];
        let builder = FrameBuilder::new(PacketType::Call)
            .activity(ActivityId::new(1, 2, 3))
            .call_seq(42);
        g.bench_with_input(BenchmarkId::from_parameter(payload), &data, |b, data| {
            b.iter(|| builder.build(black_box(data)).unwrap());
        });
    }
    g.finish();
}

/// The receive interrupt's job: validate and parse a frame.
fn bench_frame_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_parse");
    for payload in [0usize, 1440] {
        let data = vec![0xa5u8; payload];
        let frame = FrameBuilder::new(PacketType::Call).build(&data).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(payload),
            frame.bytes(),
            |b, bytes| {
                b.iter(|| Frame::parse(black_box(bytes)).unwrap());
            },
        );
    }
    g.finish();
}

/// Tables II–IV: marshalling by argument kind on the compiled engine.
fn bench_marshal(c: &mut Criterion) {
    let mut g = c.benchmark_group("marshal");
    // Table II: four integers by value.
    let iface =
        parse_interface("DEFINITION MODULE M; PROCEDURE P(a, b, x, y: INTEGER); END M.").unwrap();
    let p = iface.procedure("P").unwrap();
    let ints = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args: Vec<Value> = (0..4).map(Value::Integer).collect();
    let mut buf = vec![0u8; 64];
    g.bench_function("four_integers", |b| {
        b.iter(|| ints.marshal_call(black_box(&args), &mut buf).unwrap());
    });
    // Table IV: the 1440-byte open array.
    let iface = test_interface();
    let p = iface.procedure("MaxArg").unwrap();
    let blob = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let args = vec![Value::char_array(1440)];
    let mut big = vec![0u8; 1500];
    g.throughput(Throughput::Bytes(1440));
    g.bench_function("open_array_1440", |b| {
        b.iter(|| blob.marshal_call(black_box(&args), &mut big).unwrap());
    });
    // Table V: a 128-byte Text.T round trip (allocation included).
    let iface = parse_interface("DEFINITION MODULE T; PROCEDURE P(t: Text.T); END T.").unwrap();
    let p = iface.procedure("P").unwrap();
    let text = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let targs = vec![Value::text(&"z".repeat(128))];
    let mut tbuf = vec![0u8; 256];
    g.bench_function("text_128_round_trip", |b| {
        b.iter(|| {
            let n = text.marshal_call(black_box(&targs), &mut tbuf).unwrap();
            let args = text.unmarshal_call(&tbuf[..n]).unwrap();
            black_box(args.len())
        });
    });
    g.finish();
}

/// Table IX analog: interpreted vs compiled stub engines on the same
/// marshalling plan.
fn bench_stub_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("stub_dispatch");
    let iface = test_interface();
    let p = iface.procedure("MaxResult").unwrap();
    let comp = CompiledStub::new(p.name(), Arc::clone(p.plan()));
    let interp = InterpStub::new(p.name(), Arc::clone(p.plan()));
    let out = vec![Value::Bytes(vec![0xabu8; 1440])];
    let mut buf = vec![0u8; 1500];
    g.throughput(Throughput::Bytes(1440));
    g.bench_function("compiled", |b| {
        b.iter(|| comp.marshal_result(black_box(&out), &mut buf).unwrap());
    });
    g.bench_function("interpreted", |b| {
        b.iter(|| interp.marshal_result(black_box(&out), &mut buf).unwrap());
    });
    g.finish();
}

/// The buffer pool's fast path: alloc/free and the recycling path.
fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool");
    let pool = BufferPool::new(8);
    g.bench_function("alloc_free", |b| {
        b.iter(|| {
            let buf = pool.alloc().unwrap();
            black_box(&buf);
        });
    });
    g.bench_function("recycle_take", |b| {
        b.iter(|| {
            let buf = pool.take_receive_buffer().unwrap();
            pool.recycle_to_receive_queue(buf);
        });
    });
    g.finish();
}

/// End-to-end round trips: local (shared memory) and remote (loopback
/// Ethernet) Null() and MaxResult(b) — the modern Table I row 1.
fn bench_rpc_round_trip(c: &mut Criterion) {
    let net = LoopbackNet::new();
    let server = Endpoint::new(net.station(1), Config::default()).unwrap();
    let caller = Endpoint::new(net.station(2), Config::default()).unwrap();
    let service = ServiceBuilder::new(test_interface())
        .on_call("Null", |_a, _w| Ok(()))
        .on_call("MaxResult", |_a, w| {
            w.next_bytes(1440)?.fill(0);
            Ok(())
        })
        .on_call("MaxArg", |_a, _w| Ok(()))
        .build()
        .unwrap();
    server.export(service).unwrap();
    let remote = caller.bind(&test_interface(), server.address()).unwrap();
    let local = server.bind_local(&test_interface()).unwrap();

    let mut g = c.benchmark_group("rpc_round_trip");
    g.bench_function("remote_null", |b| {
        b.iter(|| remote.call("Null", &[]).unwrap());
    });
    g.throughput(Throughput::Bytes(1440));
    g.bench_function("remote_max_result", |b| {
        let arg = [Value::char_array(1440)];
        b.iter(|| remote.call("MaxResult", black_box(&arg)).unwrap());
    });
    g.bench_function("local_null", |b| {
        b.iter(|| local.call("Null", &[]).unwrap());
    });
    g.bench_function("local_max_result", |b| {
        let arg = [Value::char_array(1440)];
        b.iter(|| local.call("MaxResult", black_box(&arg)).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_checksum,
    bench_frame_build,
    bench_frame_parse,
    bench_marshal,
    bench_stub_dispatch,
    bench_pool,
    bench_rpc_round_trip
);
criterion_main!(benches);
