//! A small, seedable pseudo-random number generator.
//!
//! The repo is hermetic by policy (no registry crates), so randomness —
//! fault injection in the loopback Ethernet, retransmission jitter, and
//! property-test case generation — comes from this crate instead of
//! `rand`. Two requirements drive the design:
//!
//! * **Determinism**: every consumer seeds explicitly; the same seed
//!   yields the same stream on every platform. There is deliberately no
//!   `from_entropy` constructor — tests and simulations must be
//!   reproducible from a logged seed.
//! * **Quality-per-line**: the generator is xoshiro256++ (Blackman &
//!   Vigna), a 256-bit-state generator that passes BigCrush, seeded by
//!   expanding the `u64` seed through SplitMix64 as its authors
//!   recommend (consecutive seeds yield decorrelated streams).
//!
//! # Examples
//!
//! ```
//! use firefly_rng::Rng;
//!
//! let mut rng = Rng::new(42);
//! let x = rng.next_u64();
//! assert_eq!(x, Rng::new(42).next_u64()); // Same seed, same stream.
//! let d = rng.range(0..6) + 1; // A die roll.
//! assert!((1..=6).contains(&d));
//! ```

// No unsafe anywhere in this crate — see DESIGN.md ("Unsafe policy").
#![forbid(unsafe_code)]

use std::ops::Range;

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Used for seed expansion and anywhere a one-shot hash of a
/// counter is needed (e.g. deriving per-case seeds in the property-test
/// driver).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (the high half of
    /// [`Rng::next_u64`], which has the better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform value in `range` (debiased by rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Reject the final partial block so every value is equally likely.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return range.start + x % span;
            }
        }
    }

    /// A uniform `usize` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range(range.start as u64..range.end as u64) as usize
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// Uniform in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn xoshiro_reference_vector() {
        // With all-zero SplitMix64 inputs replaced by a known seed, just
        // pin the first outputs so the algorithm can never silently
        // change between PRs (benchmark seeds must stay comparable).
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(first, {
            let mut r2 = Rng::new(0);
            (0..4).map(|_| r2.next_u64()).collect::<Vec<u64>>()
        });
        // And the stream is not constant.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_hits_all_values() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.range(10..17);
            assert!((10..17).contains(&x));
            seen[(x - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range(5..5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::new(5);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(6);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "50 elements virtually never shuffle to identity");
    }
}
