//! Deterministic protocol-transition drills for `--json-edges`.
//!
//! Two drivers, both over the *real* production types, both recording
//! through [`firefly_rpc::witness::ProtocolWitness`]:
//!
//! * [`caller_transitions`] — a scripted packet sequence against a real
//!   [`ShardedCallTable`] that walks every caller-side row of
//!   protocol.toml (Result completion/assembly in all flag shapes, Ack
//!   quench/advance, ProbeResponse, and the six orphan shapes). It runs
//!   as the `sharded-calltable` model's transition readout, hook-free,
//!   after the model's own schedules all pass.
//!
//! * [`wire_transitions`] — a live [`Endpoint`] on a loopback station
//!   poked by a raw-frame injector, driving every server-side row:
//!   fresh dispatch and assembly, duplicates against an executing /
//!   retained / released / stale activity, the three probe answers plus
//!   the unknown-probe drop, and the result-ack advance/release/stale
//!   rows. A gated Null service (each call waits for an explicit token)
//!   pins the activity in the executing state while duplicates land.
//!
//! Everything observed flows into the `transitions` array of the
//! `--json-edges` report, which scripts/cross_diff.py checks against the
//! spec: observed rows must be legal, legal rows must be observed (or
//! explicitly allowlisted). Synchronization leans on two facts: the
//! demux processes one station's frames in arrival order, so a frame's
//! effect is visible to every later frame without handshakes; and a
//! result frame reaching the injector means the worker already installed
//! the retained copy, so retention-dependent injections only need to
//! await the result.

use firefly_pool::BufferPool;
use firefly_rpc::calltable::{Deliver, ShardedCallTable};
use firefly_rpc::packet::Packet;
use firefly_rpc::transport::{LoopbackNet, Transport};
use firefly_rpc::witness::TRANSITIONS;
use firefly_rpc::{Config, Endpoint, ServiceBuilder};
use firefly_sync::channel;
use firefly_wire::{ActivityId, FrameBuilder, PacketType, DATA_OFFSET, RPC_HEADER_LEN};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flag shape of a drill packet; `ar`/`cf` are acks-result/call-failed.
#[derive(Clone, Copy, Default)]
struct Shape {
    pa: bool,
    lf_frag: (u16, u16),
    ar: bool,
    cf: bool,
}

/// Builds a pool-backed packet of the given type and shape. The drills
/// only craft shapes the spec names, so parse failures are panics, not
/// scenario outcomes.
fn drill_packet(pool: &BufferPool, ty: PacketType, act: ActivityId, seq: u32, s: Shape) -> Packet {
    let frame = FrameBuilder::new(ty)
        .activity(act)
        .call_seq(seq)
        .fragment(s.lf_frag.0, s.lf_frag.1)
        .please_ack(s.pa)
        .acks_result(s.ar)
        .call_failed(s.cf)
        .build(&[])
        .expect("drill frame");
    let mut buf = pool.alloc().expect("drill pool");
    buf.fill_from(frame.bytes());
    Packet::from_buf(buf).expect("drill packet")
}

/// Walks a real [`ShardedCallTable`] through every caller-side spec row
/// and returns the rows its witnesses recorded, in table order.
///
/// The script is a compressed history of one endpoint's bad afternoon:
/// single- and multi-fragment results in every flag shape, a server ack
/// and probe-response against an open call, then the same packet types
/// again after the calls are gone (the orphan rows). Deterministic —
/// single thread, fixed sequence — so the exported set is stable.
pub fn caller_transitions() -> Vec<String> {
    let table = ShardedCallTable::new(4);
    let pool = BufferPool::new(32);
    let act = |t: u16| ActivityId::new(11, 1, t);
    // Entries stay registered for the whole drill (mirroring callers
    // parked in wait); the table tears them down on drop.
    let mut open = Vec::new();

    let frag = |i, n, pa| Shape { pa, lf_frag: (i, n), ..Shape::default() };
    let single = |pa| frag(0, 1, pa);

    // caller-open Result, single packet: complete-call / fail-call.
    open.push(table.register(act(1), 1));
    let pkt = drill_packet(&pool, PacketType::Result, act(1), 1, single(false));
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));
    open.push(table.register(act(2), 1));
    let pkt = drill_packet(
        &pool,
        PacketType::Result,
        act(2),
        1,
        Shape { cf: true, lf_frag: (0, 1), ..Shape::default() },
    );
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));

    // Early final fragment (assemble), then a please-ack non-final
    // completes: complete-ack without last-fragment.
    open.push(table.register(act(3), 1));
    let pkt = drill_packet(&pool, PacketType::Result, act(3), 1, frag(1, 2, false));
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));
    let pkt = drill_packet(&pool, PacketType::Result, act(3), 1, frag(0, 2, true));
    assert!(matches!(table.deliver(pkt), Deliver::AcceptedNeedsAck(_)));

    // Non-final first (assemble-ack), then a please-ack final completes:
    // complete-ack with last-fragment.
    open.push(table.register(act(4), 1));
    let pkt = drill_packet(&pool, PacketType::Result, act(4), 1, frag(0, 2, false));
    assert!(matches!(table.deliver(pkt), Deliver::AcceptedNeedsAck(_)));
    let pkt = drill_packet(&pool, PacketType::Result, act(4), 1, frag(1, 2, true));
    assert!(matches!(table.deliver(pkt), Deliver::AcceptedNeedsAck(_)));

    // Still-assembling shapes with please-ack: non-final and reordered
    // final (three fragments, so neither delivery completes).
    open.push(table.register(act(5), 1));
    let pkt = drill_packet(&pool, PacketType::Result, act(5), 1, frag(0, 3, true));
    assert!(matches!(table.deliver(pkt), Deliver::AcceptedNeedsAck(_)));
    let pkt = drill_packet(&pool, PacketType::Result, act(5), 1, frag(2, 3, true));
    assert!(matches!(table.deliver(pkt), Deliver::AcceptedNeedsAck(_)));

    // Server ack (quench / fragment-advance) and probe-response against
    // an open call that has not produced a result yet.
    open.push(table.register(act(6), 1));
    let pkt = drill_packet(&pool, PacketType::Ack, act(6), 1, single(false));
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));
    let pkt = drill_packet(&pool, PacketType::Ack, act(6), 1, frag(0, 2, false));
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));
    let pkt = drill_packet(&pool, PacketType::ProbeResponse, act(6), 1, single(false));
    assert!(matches!(table.deliver(pkt), Deliver::Accepted));

    // The orphan shapes: the same packets against an activity nobody
    // registered (a caller long since timed out and moved on).
    for shape in [
        (PacketType::Result, single(false)),
        (PacketType::Result, frag(0, 2, true)),
        (PacketType::Result, Shape { cf: true, lf_frag: (0, 1), ..Shape::default() }),
        (PacketType::Ack, single(false)),
        (PacketType::Ack, frag(0, 2, false)),
        (PacketType::ProbeResponse, single(false)),
    ] {
        let pkt = drill_packet(&pool, shape.0, act(9), 1, shape.1);
        assert!(matches!(table.deliver(pkt), Deliver::Orphan(_)));
    }

    let mut rows = BTreeSet::new();
    table.merge_witnesses(&mut rows);
    let out: Vec<String> = TRANSITIONS
        .iter()
        .filter(|t| rows.contains(*t))
        .map(|t| (*t).to_string())
        .collect();
    // The drill's contract: every caller-side row, nothing server-side.
    let want: Vec<&str> = TRANSITIONS[32..].to_vec();
    assert_eq!(out, want, "caller drill no longer covers the caller rows");
    out
}

/// Spins until `done` holds; the drills are local and lock-free waits,
/// so a deadline this long only ever fires on a real bug.
fn wait_for(what: &str, mut done: impl FnMut() -> bool) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        if Instant::now() > deadline {
            return Err(format!("wire scenario: timed out waiting for {what}"));
        }
        std::thread::yield_now();
    }
    Ok(())
}

/// Drives a live server endpoint through every server-side spec row by
/// injecting raw frames from a second loopback station, and returns the
/// rows the endpoint's witness recorded.
pub fn wire_transitions() -> Result<Vec<String>, String> {
    let net = LoopbackNet::new();
    let endpoint = Endpoint::new(net.station(1), Config::default())
        .map_err(|e| format!("wire scenario: endpoint: {e}"))?;
    let injector = net.station(99);

    // A Null service gated per call: the handler signals entry, then
    // blocks until the scenario feeds it a token — that window is the
    // protocol's "executing" state, held open while duplicates and
    // probes land. Dropping the sender unblocks any leftover handler,
    // so an early error cannot wedge the endpoint's worker join.
    let entered = Arc::new(AtomicUsize::new(0));
    let (token_tx, token_rx) = channel::unbounded::<()>();
    let service = {
        let entered = Arc::clone(&entered);
        ServiceBuilder::new(firefly_idl::test_interface())
            .on_call("Null", move |_args, _w| {
                entered.fetch_add(1, Ordering::SeqCst);
                let _ = token_rx.recv();
                Ok(())
            })
            .on_call("MaxResult", |_args, _w| Ok(()))
            .on_call("MaxArg", |_args, _w| Ok(()))
            .build()
            .map_err(|e| format!("wire scenario: service: {e}"))?
    };
    endpoint
        .export(service)
        .map_err(|e| format!("wire scenario: export: {e}"))?;

    let result = drive_server_rows(&endpoint, injector.as_ref(), &token_tx, &entered);
    // Unblock any still-gated handler before the endpoint joins its
    // workers (a dropped sender makes the handler's recv return Err).
    drop(token_tx);
    endpoint.shutdown();
    result?;

    let rows: Vec<String> = endpoint
        .protocol_transitions()
        .iter()
        .map(|t| (*t).to_string())
        .collect();
    for want in &TRANSITIONS[..32] {
        if !rows.iter().any(|r| r == want) {
            return Err(format!("wire scenario: server row not driven: {want}"));
        }
    }
    Ok(rows)
}

/// The injection script proper. Separated out so the caller can always
/// release the service gate and shut the endpoint down, whichever step
/// failed.
fn drive_server_rows(
    endpoint: &Endpoint,
    injector: &dyn Transport,
    token_tx: &channel::Sender<()>,
    entered: &AtomicUsize,
) -> Result<(), String> {
    let dst = endpoint.address();
    let iface = firefly_idl::test_interface();
    let act = |t: u16| ActivityId::new(77, 1, t);

    let inject = |frame: Vec<u8>| -> Result<(), String> {
        injector
            .send(&frame, dst)
            .map_err(|e| format!("wire scenario: inject: {e}"))
    };
    let call = |a: ActivityId, seq: u32, frag: (u16, u16), pa: bool| -> Vec<u8> {
        FrameBuilder::new(PacketType::Call)
            .activity(a)
            .call_seq(seq)
            .fragment(frag.0, frag.1)
            .please_ack(pa)
            .interface(iface.uid(), iface.version())
            .procedure(0)
            .build(&[])
            .expect("call frame")
            .into_bytes()
    };
    let probe = |a: ActivityId, seq: u32| -> Vec<u8> {
        FrameBuilder::new(PacketType::Probe)
            .activity(a)
            .call_seq(seq)
            .fragment(0, 1)
            .build(&[])
            .expect("probe frame")
            .into_bytes()
    };
    let result_ack = |a: ActivityId, seq: u32, frag: (u16, u16)| -> Vec<u8> {
        FrameBuilder::new(PacketType::Ack)
            .activity(a)
            .call_seq(seq)
            .fragment(frag.0, frag.1)
            .acks_result(true)
            .build(&[])
            .expect("ack frame")
            .into_bytes()
    };
    // Wait until the endpoint's witness shows `row` — the demux handles
    // injected frames in order, so the row appearing also means every
    // earlier injection was fully classified.
    let expect_row = |row: &'static str| -> Result<(), String> {
        wait_for(row, || {
            endpoint.protocol_transitions().iter().any(|t| *t == row)
        })
    };
    // Drain injector-bound frames until a Result arrives. The worker
    // installs the retained copy before the result frame is flushed, so
    // this doubles as the retention barrier.
    let await_result = || -> Result<(), String> {
        let mut buf = [0u8; 2048];
        wait_for("a result frame", || loop {
            match injector.try_recv(&mut buf) {
                Ok(Some((n, _))) => {
                    if n > DATA_OFFSET - RPC_HEADER_LEN
                        && buf[DATA_OFFSET - RPC_HEADER_LEN] == PacketType::Result as u8
                    {
                        return true;
                    }
                }
                _ => return false,
            }
        })
    };
    let token = || token_tx.send(()).map_err(|_| "gate closed".to_string());

    // Fresh single-packet dispatch, bare and please-ack.
    token()?;
    inject(call(act(1), 1, (0, 1), false))?;
    await_result()?;
    token()?;
    inject(call(act(2), 1, (0, 1), true))?;
    await_result()?;

    // Assembly of two-fragment calls: non-final first (assemble-ack,
    // both shapes), and the final fragment arriving early (assemble,
    // both shapes) — none of these dispatch yet.
    inject(call(act(3), 1, (0, 2), true))?;
    inject(call(act(4), 1, (0, 2), false))?;
    inject(call(act(5), 1, (1, 2), false))?;
    inject(call(act(6), 1, (1, 2), true))?;

    // Completion by a *non-final* fragment (the final arrived above):
    // dispatch-ack, with and without please-ack.
    token()?;
    inject(call(act(5), 1, (0, 2), true))?;
    await_result()?;
    token()?;
    inject(call(act(6), 1, (0, 2), false))?;
    await_result()?;

    // Pin act(7) in the executing state: no token, so the handler sits
    // in the gate once entered, and every duplicate below classifies
    // against an in-progress, not-yet-retained call.
    inject(call(act(7), 1, (0, 1), false))?;
    wait_for("the gated call to start executing", || {
        entered.load(Ordering::SeqCst) == 5
    })?;
    inject(call(act(7), 1, (0, 1), true))?; // ack-executing, +last_fragment
    inject(call(act(7), 1, (0, 2), true))?; // ack-executing
    inject(call(act(7), 1, (0, 1), false))?; // drop-duplicate, +last_fragment
    inject(call(act(7), 1, (0, 2), false))?; // drop-duplicate
    inject(probe(act(7), 1))?; // probe-response
    expect_row("server-dup-executing Call please_ack -> ack-executing")?;
    expect_row("server-dup-executing Call - -> drop-duplicate")?;
    expect_row("server-executing Probe last_fragment -> probe-response")?;

    // Release the gate; the result frame's arrival proves the retained
    // copy is installed, and the same duplicates now retransmit it.
    token()?;
    await_result()?;
    inject(call(act(7), 1, (0, 1), false))?;
    inject(call(act(7), 1, (0, 1), true))?;
    inject(call(act(7), 1, (0, 2), true))?;
    inject(call(act(7), 1, (0, 2), false))?;
    inject(probe(act(7), 1))?; // retained probe also retransmits
    expect_row("server-dup-retained Call - -> retransmit-result")?;
    expect_row("server-retained Probe last_fragment -> retransmit-result")?;

    // Explicit result acks: a fragment advance, then the final ack that
    // releases the retained result.
    inject(result_ack(act(7), 1, (0, 2)))?;
    inject(result_ack(act(7), 1, (0, 1)))?;
    expect_row("server-known Ack acks_result -> advance-fragment")?;
    expect_row("server-known Ack last_fragment+acks_result -> release-retained")?;

    // With the retention released and nothing executing, the same four
    // duplicate shapes are dropped, and a probe goes silent.
    inject(call(act(7), 1, (0, 1), false))?;
    inject(call(act(7), 1, (0, 1), true))?;
    inject(call(act(7), 1, (0, 2), true))?;
    inject(call(act(7), 1, (0, 2), false))?;
    inject(probe(act(7), 1))?;
    expect_row("server-dup-released Call - -> drop-duplicate")?;
    expect_row("server-released Probe last_fragment -> drop-silent")?;

    // A probe and result-acks for a call this server never saw.
    inject(probe(act(8), 5))?;
    inject(result_ack(act(8), 5, (0, 2)))?;
    inject(result_ack(act(8), 5, (0, 1)))?;
    expect_row("server-unknown Probe last_fragment -> drop-silent")?;
    expect_row("server-unknown Ack acks_result -> drop-stale")?;
    expect_row("server-unknown Ack last_fragment+acks_result -> drop-stale")?;

    // A second call on act(7) advances last_seq; retransmissions of the
    // first call are now stale in all four shapes. The demux orders the
    // new call before the stale ones, so no barrier is needed between.
    token()?;
    inject(call(act(7), 2, (0, 1), false))?;
    inject(call(act(7), 1, (0, 1), false))?;
    inject(call(act(7), 1, (0, 1), true))?;
    inject(call(act(7), 1, (0, 2), true))?;
    inject(call(act(7), 1, (0, 2), false))?;
    expect_row("server-stale Call - -> drop-stale")?;
    await_result()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caller_drill_covers_every_caller_row() {
        let rows = caller_transitions();
        assert_eq!(rows.len(), TRANSITIONS.len() - 32);
        assert!(rows.iter().all(|r| TRANSITIONS.contains(&r.as_str())));
    }

    #[test]
    fn wire_scenario_covers_every_server_row() {
        let rows = wire_transitions().expect("wire scenario drives cleanly");
        for want in &TRANSITIONS[..32] {
            assert!(rows.contains(&(*want).to_string()), "missing {want}");
        }
    }
}
