//! Happens-before race detection over the scheduler's event stream.
//!
//! The scheduler serializes every synchronization event, which gives
//! the detector a total order to walk — but a total order is exactly
//! what must *not* define "ordered" here. Happens-before comes only
//! from real synchronization: lock release → subsequent acquisition of
//! the same lock (a condvar wait releases and reacquires through the
//! same channel), and sanctioned atomic release-store → acquire-load of
//! the same location. A notify carries **no** edge to the woken thread
//! — only the mutex reacquisition does — so code that assumes "the
//! wakeup itself orders my write" is flagged, which is precisely the
//! notify-read fixture bug.
//!
//! ## The sanctioned-access rule
//!
//! Two accesses to one atomic location *conflict* when at least one
//! writes. A conflicting pair is a race unless one of:
//!
//! * the accesses are ordered by happens-before (vector clocks);
//! * both are read-modify-writes (RMWs form a total modification order
//!   regardless of tag — a `Relaxed` counter increment pair is racy
//!   *by tag* but not by outcome, and flagging it would outlaw every
//!   statistics counter);
//! * both are *sanctioned*: an acquire-or-stronger load, a
//!   release-or-stronger store, or a non-relaxed RMW. Sanctioned pairs
//!   are the deliberate release/acquire protocols (channel disconnect
//!   counts, install gates); the detector checks that *their* hb edges
//!   then cover any plain data they publish.
//!
//! So a `Relaxed` store racing an `Acquire` load is reported (publish
//! without release — the load acquires nothing), while the symmetric
//! correct protocol is silent.

use crate::vc::VectorClock;
use firefly_sync::hook::{AtomicOp, OrderTag};
use std::collections::{BTreeMap, BTreeSet};

/// One recorded atomic access, kept in a location's history until a
/// later access is provably ordered after everything before it.
#[derive(Debug, Clone)]
struct Access {
    tid: usize,
    epoch: u32,
    op: AtomicOp,
    sanctioned: bool,
    /// Rendered description, e.g. `t1 store(relaxed) at step 12`.
    desc: String,
}

/// Per-atomic-location detector state.
#[derive(Debug, Default)]
struct Location {
    /// Joined by sanctioned (release) writers, acquired by sanctioned
    /// readers: the location's publication clock.
    release: Option<VectorClock>,
    history: Vec<Access>,
}

/// A reported race: two conflicting, unordered, unsanctioned accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Scheduler name of the location (label or `atomic#N`).
    pub location: String,
    /// The earlier access, as a stack-free event description.
    pub first: String,
    /// The later (detecting) access.
    pub second: String,
}

/// The vector-clock engine: one clock per model thread, one per lock
/// (its last release), one per atomic location (its publication clock
/// plus access history).
#[derive(Debug)]
pub struct Detector {
    threads: Vec<VectorClock>,
    locks: BTreeMap<usize, VectorClock>,
    atomics: BTreeMap<usize, Location>,
    /// Location classes (scheduler label with the `#N` instance suffix
    /// stripped) on which a real release→acquire publication edge was
    /// consumed this schedule. verify.sh diffs these against the static
    /// lint pass's paired atomic locations.
    publications: BTreeSet<String>,
}

fn writes(op: AtomicOp) -> bool {
    matches!(op, AtomicOp::Store | AtomicOp::Rmw)
}

fn sanctioned(op: AtomicOp, tag: OrderTag) -> bool {
    match op {
        AtomicOp::Load => tag.acquires(),
        AtomicOp::Store => tag.releases(),
        AtomicOp::Rmw => tag != OrderTag::Relaxed,
    }
}

impl Detector {
    /// A fresh detector for `n` model threads.
    pub fn new(n: usize) -> Detector {
        Detector {
            threads: (0..n).map(|_| VectorClock::new(n)).collect(),
            locks: BTreeMap::new(),
            atomics: BTreeMap::new(),
            publications: BTreeSet::new(),
        }
    }

    /// Drains the set of location classes whose release→acquire edges
    /// were consumed so far.
    pub fn take_publications(&mut self) -> BTreeSet<String> {
        std::mem::take(&mut self.publications)
    }

    /// `tid` acquired `lock` (exclusive or shared, or reacquired it on
    /// waking from a condvar): it learns everything the last releaser
    /// knew.
    pub fn lock_acquired(&mut self, tid: usize, lock: usize) {
        if let Some(release) = self.locks.get(&lock) {
            self.threads[tid].join(release);
        }
    }

    /// `tid` released `lock` (including the release half of a condvar
    /// wait): it publishes its clock to the next acquirer.
    pub fn lock_released(&mut self, tid: usize, lock: usize) {
        let clock = self.threads[tid].clone();
        self.locks
            .entry(lock)
            .and_modify(|vc| vc.join(&clock))
            .or_insert(clock);
        self.threads[tid].tick(tid);
    }

    /// `tid` performs an atomic access on `addr`. `step` and `location`
    /// feed the report; returns the race, if this access completes one.
    pub fn atomic_access(
        &mut self,
        tid: usize,
        addr: usize,
        op: AtomicOp,
        tag: OrderTag,
        step: usize,
        location: &str,
    ) -> Option<RaceReport> {
        let epoch = self.threads[tid].tick(tid);
        let sanctioned_now = sanctioned(op, tag);
        let kind = match op {
            AtomicOp::Load => "load",
            AtomicOp::Store => "store",
            AtomicOp::Rmw => "rmw",
        };
        let desc = format!("t{tid} {kind}({}) at step {step}", tag.name());

        let loc = self.atomics.entry(addr).or_default();
        let mut race = None;
        for prev in &loc.history {
            if prev.tid == tid {
                continue; // program order
            }
            if !(writes(prev.op) || writes(op)) {
                continue; // read/read never conflicts
            }
            if prev.op == AtomicOp::Rmw && op == AtomicOp::Rmw {
                continue; // RMWs totally ordered by modification order
            }
            if prev.sanctioned && sanctioned_now {
                continue; // both halves of a release/acquire protocol
            }
            if self.threads[tid].covers(prev.tid, prev.epoch) {
                continue; // happens-before ordered
            }
            race = Some(RaceReport {
                location: location.to_string(),
                first: prev.desc.clone(),
                second: desc.clone(),
            });
            break;
        }

        // Publication edges, after the race check so an acquire load
        // does not sanitize its own racy read of the publishing store.
        if sanctioned_now && matches!(op, AtomicOp::Load | AtomicOp::Rmw) && tag.acquires() {
            if let Some(release) = &loc.release {
                self.threads[tid].join(release);
                // A real publication edge was consumed on this
                // location: record its class (label minus the `#N`
                // instance suffix) for the static↔dynamic diff.
                let class = location.split('#').next().unwrap_or(location);
                self.publications.insert(class.to_string());
            }
        }
        if sanctioned_now && writes(op) && tag.releases() {
            let clock = self.threads[tid].clone();
            match &mut loc.release {
                Some(vc) => vc.join(&clock),
                None => loc.release = Some(clock),
            }
        }
        loc.history.push(Access {
            tid,
            epoch,
            op,
            sanctioned: sanctioned_now,
            desc,
        });
        race
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(
        d: &mut Detector,
        tid: usize,
        addr: usize,
        op: AtomicOp,
        tag: OrderTag,
        step: usize,
    ) -> Option<RaceReport> {
        d.atomic_access(tid, addr, op, tag, step, "x")
    }

    #[test]
    fn unsynchronized_store_pair_races() {
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        let race = access(&mut d, 1, 1, AtomicOp::Store, OrderTag::Relaxed, 2).unwrap();
        assert_eq!(race.location, "x");
        assert!(race.first.contains("t0 store(relaxed)"));
        assert!(race.second.contains("t1 store(relaxed)"));
    }

    #[test]
    fn relaxed_load_races_relaxed_store() {
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Relaxed, 2).is_some());
    }

    #[test]
    fn loads_never_race_loads() {
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Load, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Relaxed, 2).is_none());
    }

    #[test]
    fn relaxed_rmw_pair_is_exempt() {
        // Two relaxed counter increments: racy by tag, ordered by the
        // modification order — deliberately not reported.
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Rmw, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Rmw, OrderTag::Relaxed, 2).is_none());
    }

    #[test]
    fn release_acquire_protocol_is_sanctioned() {
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Release, 1).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Acquire, 2).is_none());
        // The consumed publication edge is recorded by location class.
        assert_eq!(
            d.take_publications().into_iter().collect::<Vec<_>>(),
            vec!["x".to_string()]
        );
        assert!(d.take_publications().is_empty());
    }

    #[test]
    fn instance_suffix_is_stripped_from_publication_classes() {
        let mut d = Detector::new(2);
        assert!(d
            .atomic_access(0, 1, AtomicOp::Store, OrderTag::Release, 1, "gate#3")
            .is_none());
        assert!(d
            .atomic_access(1, 1, AtomicOp::Load, OrderTag::Acquire, 2, "gate#3")
            .is_none());
        assert_eq!(
            d.take_publications().into_iter().collect::<Vec<_>>(),
            vec!["gate".to_string()]
        );
    }

    #[test]
    fn acquire_without_prior_release_records_no_publication() {
        let mut d = Detector::new(2);
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Acquire, 1).is_none());
        assert!(d.take_publications().is_empty());
    }

    #[test]
    fn publish_without_release_is_reported() {
        // Writer publishes with a relaxed store; the reader's acquire
        // load acquires nothing, so the pair itself is flagged.
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Acquire, 2).is_some());
    }

    #[test]
    fn acquire_load_orders_subsequent_plain_accesses() {
        // data (addr 2) is relaxed on both sides, but the flag protocol
        // (addr 1, release/acquire) carries the writer's clock across.
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 2, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Release, 2).is_none());
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Acquire, 3).is_none());
        assert!(access(&mut d, 1, 2, AtomicOp::Load, OrderTag::Relaxed, 4).is_none());
    }

    #[test]
    fn relaxed_flag_fails_to_order_the_data() {
        // Same shape, but the flag store is relaxed: the data pair
        // stays unordered. The flag pair races first (checked above);
        // the data pair also races if checked independently.
        let mut d = Detector::new(2);
        assert!(access(&mut d, 0, 2, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        assert!(access(&mut d, 0, 1, AtomicOp::Store, OrderTag::Relaxed, 2).is_none());
        // flag pair: racy (publish without release)
        assert!(access(&mut d, 1, 1, AtomicOp::Load, OrderTag::Acquire, 3).is_some());
        // data pair: still unordered — no publication happened
        assert!(access(&mut d, 1, 2, AtomicOp::Load, OrderTag::Relaxed, 4).is_some());
    }

    #[test]
    fn mutex_transfer_orders_plain_atomics() {
        let mut d = Detector::new(2);
        const LOCK: usize = 99;
        d.lock_acquired(0, LOCK);
        assert!(access(&mut d, 0, 2, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        d.lock_released(0, LOCK);
        d.lock_acquired(1, LOCK);
        assert!(access(&mut d, 1, 2, AtomicOp::Load, OrderTag::Relaxed, 2).is_none());
    }

    #[test]
    fn access_after_release_is_not_covered_by_the_lock() {
        // The writer stores *after* releasing the lock (the notify-read
        // shape): the reader's reacquisition covers nothing past the
        // release point.
        let mut d = Detector::new(2);
        const LOCK: usize = 99;
        d.lock_acquired(0, LOCK);
        d.lock_released(0, LOCK);
        assert!(access(&mut d, 0, 2, AtomicOp::Store, OrderTag::Relaxed, 1).is_none());
        d.lock_acquired(1, LOCK);
        assert!(access(&mut d, 1, 2, AtomicOp::Load, OrderTag::Relaxed, 2).is_some());
    }
}
