//! CLI argument parsing for the `firefly-check` binary.
//!
//! Lives in the library (not the binary) so the flag surface is unit
//! tested: every mode — `--smoke`, `--json-edges`, the DPOR flags —
//! goes through this one parser, and an unknown flag is always an
//! error (exit 2 in the binary), never silently ignored.

/// Parsed command line.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// `--list`: print the model registry and exit.
    pub list: bool,
    /// `--smoke`: tighter exploration caps for CI.
    pub smoke: bool,
    /// `--bugs`: only the seeded-bug half of the default run.
    pub bugs_only: bool,
    /// `--verbose`: print failing schedules in full.
    pub verbose: bool,
    /// `--dpor`: explore with partial-order reduction instead of DFS.
    pub dpor: bool,
    /// `--model NAME`: run one model instead of the full registry.
    pub model: Option<String>,
    /// `--seed N`: random mode (decimal or 0x-hex).
    pub seed: Option<u64>,
    /// `--schedules N`: schedule cap for DFS/random/DPOR.
    pub schedules: Option<usize>,
    /// `--replay LIST`: replay one schedule (`-` for the empty list).
    pub replay: Option<Vec<usize>>,
    /// `--json-edges PATH`: write observed lock edges as JSON.
    pub json_edges: Option<String>,
    /// `--budget N`: per-schedule step budget override.
    pub budget: Option<usize>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses the argument list (without the program name). Any flag not
/// in the table above is an error.
pub fn parse<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = Args::default();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--list" => args.list = true,
            "--smoke" => args.smoke = true,
            "--bugs" => args.bugs_only = true,
            "--verbose" => args.verbose = true,
            "--dpor" => args.dpor = true,
            "--model" => args.model = Some(value("--model")?),
            "--seed" => {
                let v = value("--seed")?;
                args.seed = Some(parse_u64(&v).ok_or(format!("bad seed {v}"))?);
            }
            "--schedules" => {
                let v = value("--schedules")?;
                args.schedules = Some(v.parse().map_err(|_| format!("bad count {v}"))?);
            }
            "--budget" => {
                let v = value("--budget")?;
                args.budget = Some(v.parse().map_err(|_| format!("bad budget {v}"))?);
            }
            "--json-edges" => args.json_edges = Some(value("--json-edges")?),
            "--replay" => {
                let v = value("--replay")?;
                let decisions = if v == "-" {
                    Vec::new()
                } else {
                    v.split(',')
                        .map(|d| d.trim().parse())
                        .collect::<Result<Vec<usize>, _>>()
                        .map_err(|_| format!("bad decision list {v}"))?
                };
                args.replay = Some(decisions);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(argv: &[&str]) -> Result<Args, String> {
        parse(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_argv_is_the_default_run() {
        assert_eq!(parse_strs(&[]).unwrap(), Args::default());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse_strs(&["--smoke", "--wat"]).unwrap_err();
        assert!(err.contains("unknown flag --wat"), "{err}");
        // A typo'd DPOR flag must not be silently ignored either.
        assert!(parse_strs(&["--dpor-schedules", "5"]).is_err());
    }

    #[test]
    fn values_and_hex_seeds_parse() {
        let args =
            parse_strs(&["--model", "pool", "--seed", "0xbeef", "--schedules", "42"]).unwrap();
        assert_eq!(args.model.as_deref(), Some("pool"));
        assert_eq!(args.seed, Some(0xbeef));
        assert_eq!(args.schedules, Some(42));
        assert_eq!(parse_strs(&["--seed", "7"]).unwrap().seed, Some(7));
    }

    #[test]
    fn missing_values_and_bad_numbers_error() {
        assert!(parse_strs(&["--model"]).is_err());
        assert!(parse_strs(&["--seed", "xyz"]).is_err());
        assert!(parse_strs(&["--schedules", "-3"]).is_err());
        assert!(parse_strs(&["--replay", "1,two"]).is_err());
    }

    #[test]
    fn replay_lists_parse_including_the_empty_marker() {
        assert_eq!(
            parse_strs(&["--replay", "0, 2,1"]).unwrap().replay,
            Some(vec![0, 2, 1])
        );
        assert_eq!(parse_strs(&["--replay", "-"]).unwrap().replay, Some(vec![]));
    }

    #[test]
    fn dpor_and_smoke_flags_combine() {
        let args = parse_strs(&["--dpor", "--smoke", "--json-edges", "/tmp/e.json"]).unwrap();
        assert!(args.dpor);
        assert!(args.smoke);
        assert_eq!(args.json_edges.as_deref(), Some("/tmp/e.json"));
    }
}
