//! The model registry: small, closed concurrent programs over the real
//! production types, explored by the [`crate::Explorer`].
//!
//! Structure models exercise the paper's mechanisms with their actual
//! implementations — call-table slot reuse (§3.1.3), pool recycling
//! through the controller receive queue (§3.2), the trace ring, and the
//! MPMC channel, the hook's install gate, and a sharded call table —
//! and must pass every schedule. Bug models seed one classic
//! concurrency defect each (ABBA deadlock, notify-before-wait lost
//! wakeup, check-then-act double release, and three happens-before
//! races: unsynchronized counter, publish-without-release,
//! store-after-notify) and must *fail*; they prove the checker actually
//! detects what it claims to.
//!
//! Determinism note: every lock/condvar a model registers with the
//! scheduler stays alive until the schedule ends (the call-table model
//! keeps completed entries in a scratch vector). Freed-and-reallocated
//! addresses could otherwise inherit a previous object's registration
//! index, making event names depend on allocator reuse.

use crate::{Model, ModelRun};
use firefly_pool::BufferPool;
use firefly_rpc::calltable::{CallTable, Deliver, Wait};
use firefly_rpc::packet::Packet;
use firefly_rpc::trace::{TraceRecord, Tracer};
use firefly_rpc::witness::{row, ProtocolWitness};
use firefly_sync::atomic as checked_atomic;
use firefly_sync::{channel, Condvar, Mutex};
use firefly_wire::{ActivityId, FrameBuilder, PacketType};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Far-future deadline: timeouts are ignored under the checker (a
/// timeout firing would mask the lost-wakeup detection), but the model
/// must also terminate when run unhooked by accident.
fn far_deadline() -> Instant {
    Instant::now() + Duration::from_secs(3600)
}

fn activity() -> ActivityId {
    ActivityId::new(7, 1, 1)
}

/// Builds a single-fragment Result packet backed by `pool`.
fn result_packet(pool: &BufferPool, seq: u32, data: &[u8]) -> Packet {
    let frame = FrameBuilder::new(PacketType::Result)
        .activity(activity())
        .call_seq(seq)
        .fragment(0, 1)
        .build(data)
        .expect("frame build");
    let mut buf = pool.alloc().expect("model pool alloc");
    buf.fill_from(frame.bytes());
    Packet::from_buf(buf).expect("packet parse")
}

/// Call-table slot reuse: one caller runs two back-to-back calls under
/// the same activity (the slot is reassigned), a demux thread delivers
/// each result, and a late duplicate of the first call's result must be
/// classified as an orphan — never delivered into the reused slot.
fn make_calltable() -> ModelRun {
    let table = Arc::new(CallTable::new());
    let pool = BufferPool::new(4);
    let pkt0 = result_packet(&pool, 0, &[0]);
    let pkt1 = result_packet(&pool, 1, &[1]);
    let dup = result_packet(&pool, 0, &[9]);
    let (tx, rx) = channel::unbounded::<u32>();

    let label = {
        let table = Arc::clone(&table);
        let pool = pool.clone();
        // Clone taken pre-hook; the label-phase drop's counter update is
        // invisible to the scheduler (no tid registered yet).
        let chan = rx.clone();
        Box::new(move || {
            table.check_labels();
            pool.check_labels();
            chan.check_labels();
        }) as Box<dyn FnOnce() + Send>
    };
    let caller = {
        let table = Arc::clone(&table);
        Box::new(move || {
            let mut keep = Vec::with_capacity(2);
            for seq in 0..2u32 {
                let entry = table.register(activity(), seq);
                entry.check_labels();
                keep.push(Arc::clone(&entry));
                tx.send(seq).expect("demux alive");
                match entry.wait(far_deadline()) {
                    Wait::Complete(a) => assert_eq!(a.data(), &[seq as u8]),
                    other => panic!("round {seq}: unexpected wait outcome {other:?}"),
                }
                table.unregister(activity());
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let demux = {
        let table = Arc::clone(&table);
        Box::new(move || {
            let mut pkts = [Some(pkt0), Some(pkt1)];
            for _ in 0..2 {
                let seq = rx.recv().expect("caller alive") as usize;
                let pkt = pkts[seq].take().expect("each seq sent once");
                assert!(
                    matches!(table.deliver(pkt), Deliver::Accepted),
                    "round {seq}: result not accepted"
                );
            }
            // The duplicate arrives only after the slot was reassigned
            // to call 1 (and possibly already torn down): it must never
            // complete the reused slot.
            assert!(
                matches!(table.deliver(dup), Deliver::Orphan(_)),
                "late duplicate delivered into a reused slot"
            );
        }) as Box<dyn FnOnce() + Send>
    };
    let transitions = {
        let table = Arc::clone(&table);
        // The real CallTable records its protocol.toml rows itself: this
        // model's accepted result is `caller-open Result last_fragment ->
        // complete-call` and the late duplicate is `caller-orphan Result
        // last_fragment -> recycle-orphan`.
        Box::new(move || table.witness().observed().iter().map(|t| (*t).to_string()).collect())
            as Box<dyn FnOnce() -> Vec<String> + Send>
    };
    let finale = Box::new(move || {
        assert_eq!(table.outstanding(), 0, "call table entry leaked");
        assert_eq!(pool.stats().outstanding(), 0, "packet buffer leaked");
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![caller, demux],
        finale,
        audit: None,
        transitions: Some(transitions),
    }
}

/// Pool acquire/release/recycle: three threads contend for two buffers;
/// one recycles straight onto the controller receive queue (§3.2), one
/// reclaims from it. The finale proves conservation — every slab is back
/// on the free list or the receive queue, and the outstanding counter
/// agrees.
fn make_pool() -> ModelRun {
    let pool = BufferPool::new(2);
    const HOUR: Duration = Duration::from_secs(3600);

    let label = {
        let pool = pool.clone();
        Box::new(move || pool.check_labels()) as Box<dyn FnOnce() + Send>
    };
    let t0 = {
        let pool = pool.clone();
        Box::new(move || {
            let buf = pool.alloc_timeout(HOUR).expect("t0 alloc");
            drop(buf);
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let pool = pool.clone();
        Box::new(move || {
            let buf = pool.alloc_timeout(HOUR).expect("t1 alloc");
            pool.recycle_to_receive_queue(buf);
        }) as Box<dyn FnOnce() + Send>
    };
    let t2 = {
        let pool = pool.clone();
        Box::new(move || {
            let buf = pool.alloc_timeout(HOUR).expect("t2 alloc");
            drop(buf);
            // Reclaim from the receive queue if the recycler beat us.
            if let Ok(buf2) = pool.take_receive_buffer() {
                drop(buf2);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let audit = {
        let pool = pool.clone();
        Box::new(move || {
            vec![
                ("outstanding".to_string(), pool.stats().outstanding()),
                ("retained".to_string(), 0),
            ]
        }) as Box<dyn FnOnce() -> Vec<(String, u64)> + Send>
    };
    let finale = Box::new(move || {
        assert_eq!(
            pool.free_count() + pool.receive_queue_len(),
            2,
            "slab leaked or double-released"
        );
        assert_eq!(pool.stats().outstanding(), 0, "outstanding counter drifted");
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![t0, t1, t2],
        finale,
        audit: Some(audit),
        transitions: None,
    }
}

/// Trace ring under contention: two producers push completed records
/// into a ring of capacity 2 while a consumer drains. The conservation
/// law `drained + dropped == recorded` must hold in every schedule.
fn make_trace_ring() -> ModelRun {
    let tracer = Arc::new(Tracer::new(2));
    let drained = Arc::new(AtomicU64::new(0));

    let label = {
        let tracer = Arc::clone(&tracer);
        Box::new(move || tracer.check_labels()) as Box<dyn FnOnce() + Send>
    };
    let t0 = {
        let tracer = Arc::clone(&tracer);
        Box::new(move || {
            tracer.push(TraceRecord::empty());
            tracer.push(TraceRecord::empty());
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let tracer = Arc::clone(&tracer);
        Box::new(move || tracer.push(TraceRecord::empty())) as Box<dyn FnOnce() + Send>
    };
    let t2 = {
        let tracer = Arc::clone(&tracer);
        let drained = Arc::clone(&drained);
        Box::new(move || {
            let mut seen = 0;
            tracer.drain(|_| seen += 1);
            drained.fetch_add(seen, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Box::new(move || {
        let mut rest = 0u64;
        let dropped = tracer.drain(|_| rest += 1);
        let seen = drained.load(Ordering::Relaxed) + rest;
        assert_eq!(tracer.recorded(), 3, "record lost before the ring");
        assert_eq!(seen + dropped, 3, "ring leaked or duplicated a record");
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![t0, t1, t2],
        finale,
        audit: None,
        transitions: None,
    }
}

/// MPMC channel: two senders, two receivers, three messages. Receivers
/// drain until disconnect; every message is received exactly once and
/// both receivers terminate (single-wakeup discipline must not strand a
/// receiver after the last sender hangs up).
fn make_channel() -> ModelRun {
    let (tx0, rx0) = channel::unbounded::<u32>();
    let tx1 = tx0.clone();
    let rx1 = rx0.clone();
    let received = Arc::new(AtomicU64::new(0));

    let label = {
        // Clone taken pre-hook; the label-phase drop's counter update is
        // invisible to the scheduler (no tid registered yet).
        let chan = rx0.clone();
        Box::new(move || chan.check_labels()) as Box<dyn FnOnce() + Send>
    };
    let s0 = Box::new(move || {
        tx0.send(1).expect("receivers alive");
        tx0.send(2).expect("receivers alive");
    }) as Box<dyn FnOnce() + Send>;
    let s1 = Box::new(move || {
        tx1.send(3).expect("receivers alive");
    }) as Box<dyn FnOnce() + Send>;
    let r0 = {
        let received = Arc::clone(&received);
        Box::new(move || {
            while let Ok(v) = rx0.recv() {
                received.fetch_add(u64::from(v), Ordering::Relaxed);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let r1 = {
        let received = Arc::clone(&received);
        Box::new(move || {
            while let Ok(v) = rx1.recv() {
                received.fetch_add(u64::from(v), Ordering::Relaxed);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Box::new(move || {
        assert_eq!(
            received.load(Ordering::Relaxed),
            6,
            "message lost or duplicated"
        );
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![s0, s1, r0, r1],
        finale,
        audit: None,
        transitions: None,
    }
}

/// Seeded bug: classic ABBA lock-order inversion. Must be reported as
/// `LockInversion` (the static linter's lock-cycle rule, caught
/// dynamically).
fn make_bug_abba() -> ModelRun {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    let label = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        Box::new(move || {
            a.check_label("A");
            b.check_label("B");
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        Box::new(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        Box::new(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        }) as Box<dyn FnOnce() + Send>
    };
    ModelRun {
        label,
        threads: vec![t0, t1],
        finale: Box::new(|| {}),
        audit: None,
        transitions: None,
    }
}

/// Seeded bug: notify-before-wait lost wakeup. The signaller fires its
/// condition before the waiter has parked and the waiter waits
/// unconditionally (no predicate re-check), so schedules where the
/// signaller runs first strand the waiter forever. Must be reported as
/// `LostWakeup`.
fn make_bug_lost_wakeup() -> ModelRun {
    let flag = Arc::new(Mutex::new(false));
    let cond = Arc::new(Condvar::new());

    let label = {
        let flag = Arc::clone(&flag);
        Box::new(move || flag.check_label("flag")) as Box<dyn FnOnce() + Send>
    };
    let signaller = {
        let flag = Arc::clone(&flag);
        let cond = Arc::clone(&cond);
        Box::new(move || {
            let mut g = flag.lock();
            *g = true;
            drop(g);
            cond.notify_one();
        }) as Box<dyn FnOnce() + Send>
    };
    let waiter = {
        let flag = Arc::clone(&flag);
        let cond = Arc::clone(&cond);
        Box::new(move || {
            let mut g = flag.lock();
            // BUG: no `while !*g` predicate loop — if the notify already
            // fired, this parks forever.
            let _ = cond.wait_until(&mut g, far_deadline());
            assert!(*g);
        }) as Box<dyn FnOnce() + Send>
    };
    ModelRun {
        label,
        threads: vec![signaller, waiter],
        finale: Box::new(|| {}),
        audit: None,
        transitions: None,
    }
}

/// Seeded bug: check-then-act double release. Two threads each release
/// a frame unless a shared `freed` flag says it already happened — but
/// the check and the act are separate critical sections, so an
/// interleaving releases twice. Must be reported as an `Invariant`
/// failure from the finale.
fn make_bug_double_release() -> ModelRun {
    let freed = Arc::new(Mutex::new(false));
    let releases = Arc::new(Mutex::new(0u32));

    let label = {
        let freed = Arc::clone(&freed);
        let releases = Arc::clone(&releases);
        Box::new(move || {
            freed.check_label("freed");
            releases.check_label("releases");
        }) as Box<dyn FnOnce() + Send>
    };
    let release = |freed: Arc<Mutex<bool>>, releases: Arc<Mutex<u32>>| {
        Box::new(move || {
            // BUG: the flag check and the release are not atomic.
            let was = *freed.lock();
            if !was {
                *releases.lock() += 1;
                *freed.lock() = true;
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = release(Arc::clone(&freed), Arc::clone(&releases));
    let t1 = release(Arc::clone(&freed), Arc::clone(&releases));
    let finale = Box::new(move || {
        assert_eq!(*releases.lock(), 1, "frame released twice");
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![t0, t1],
        finale,
        audit: None,
        transitions: None,
    }
}

/// Clean model of the hook's `INSTALLED` gate protocol with the fixed
/// orderings (`AcqRel` install, `Release` uninstall, `Acquire`
/// cross-thread check): two installers balance the counter while an
/// observer polls it. Every access is sanctioned, so the race detector
/// must stay silent in every schedule — this is the regression test for
/// the `crates/sync/src/hook.rs` ordering fix. (The production
/// `current()` load stays `Relaxed` because only the installing thread
/// reads its own thread-local; a cross-thread observer like this one
/// needs `Acquire`, which is what the model encodes.)
fn make_gate() -> ModelRun {
    let installed = Arc::new(checked_atomic::AtomicUsize::new(0));

    let label = {
        let installed = Arc::clone(&installed);
        Box::new(move || installed.check_label("installed")) as Box<dyn FnOnce() + Send>
    };
    let installer = |installed: Arc<checked_atomic::AtomicUsize>| {
        Box::new(move || {
            installed.fetch_add(1, Ordering::AcqRel);
            installed.fetch_sub(1, Ordering::Release);
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = installer(Arc::clone(&installed));
    let t1 = installer(Arc::clone(&installed));
    let observer = {
        let installed = Arc::clone(&installed);
        Box::new(move || {
            let n = installed.load(Ordering::Acquire);
            assert!(n <= 2, "gate counter overshot: {n}");
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Box::new(move || {
        assert_eq!(
            installed.load(Ordering::Acquire),
            0,
            "install gate unbalanced"
        );
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![t0, t1, observer],
        finale,
        audit: None,
        transitions: None,
    }
}

/// Shard-class labels for the sharded call-table model. The `class[i]`
/// form is what the parametric lock-order support in `firefly-lint`
/// understands: instances of one class, ordered by index.
const SHARD_LABELS: [&str; 4] = ["shard[0]", "shard[1]", "shard[2]", "shard[3]"];

/// Per-shard state for [`make_sharded_calltable`]: the call-table slot
/// plus the worker's receive queue, both guarded by the shard's lock
/// exactly as in the real runtime (`ShardedCallTable` shard +
/// `WorkQueues` queue, selected by the same activity hash).
#[derive(Default)]
struct ShardSlot {
    /// Call-table slot: `Some(seq)` while a call is mid-dispatch.
    cur: Option<u32>,
    completed: u32,
    orphans: u32,
    /// The worker's receive queue (FIFO backlog of call seqs).
    backlog: Vec<u32>,
    /// Items this worker's queue received from a steal, takeover order.
    stolen: Vec<u32>,
}

/// Number of shards in the model — kept equal to the runtime default
/// (`Config::default().shards`); [`make_sharded_calltable`] asserts the
/// two never drift apart.
const MODEL_SHARDS: usize = 4;

/// Sharded runtime mirror: per-shard call-table slots and per-worker
/// receive queues, with home shards picked by the *real*
/// [`firefly_rpc::calltable::shard_for`] hash of each caller's activity
/// id. Two fast-path callers (shards 0 and 2) each run one
/// register/enqueue/dispatch round plus a late-duplicate orphan check
/// on their own shard; the thief worker's thread enqueues a two-call
/// backlog on donor shard 1 (whose own worker never shows up) and then
/// runs the steal scan: victims in ascending index order, one lock at
/// a time, skipping queues whose owner is mid-dispatch (stealing those
/// would double-dispatch), and taking the donor's whole backlog in one
/// FIFO-preserving takeover that bridges donor and thief queues in
/// ascending index order — the declared-parametric `shard` lock
/// discipline firefly-lint enforces. The scan's probe of shard 0
/// contends with that shard's own worker (the dependency DPOR must
/// explore); the rest is pairwise independent, which is exactly what
/// DPOR prunes and naive DFS drowns in: DFS cannot exhaust this model
/// inside the smoke budget, DPOR can.
fn make_sharded_calltable() -> ModelRun {
    assert_eq!(
        MODEL_SHARDS,
        firefly_rpc::Config::default().shards,
        "model shard count drifted from the runtime default"
    );
    // Home shards by the real activity hash: the first thread ids that
    // shard_for maps to shards 0, 1 and 2 (machine/space fixed, as one
    // endpoint's callers share them). The model's shard assignment IS
    // the runtime's, so a hash change reshapes this model too.
    let home = |want: usize| {
        (0..u16::MAX)
            .find(|&t| {
                firefly_rpc::calltable::shard_for(ActivityId::new(9, 1, t), MODEL_SHARDS) == want
            })
            .expect("shard_for covers every shard")
    };
    // Ascending scan order makes shard 0 the first victim the thief
    // probes (contended with that shard's own worker — the dependency
    // DPOR must actually explore), shard 1 the donor it robs, and
    // shard 2 pure independent fast-path work it prunes away.
    let (fast_a, donor, fast_b) = (
        firefly_rpc::calltable::shard_for(ActivityId::new(9, 1, home(0)), MODEL_SHARDS),
        firefly_rpc::calltable::shard_for(ActivityId::new(9, 1, home(1)), MODEL_SHARDS),
        firefly_rpc::calltable::shard_for(ActivityId::new(9, 1, home(2)), MODEL_SHARDS),
    );
    assert_eq!((fast_a, donor, fast_b), (0, 1, 2), "shard_for is stable");
    const THIEF: usize = 3;

    let shards: Arc<Vec<Mutex<ShardSlot>>> = Arc::new(
        (0..MODEL_SHARDS)
            .map(|_| Mutex::new(ShardSlot::default()))
            .collect(),
    );

    let label = {
        let shards = Arc::clone(&shards);
        Box::new(move || {
            for (i, shard) in shards.iter().enumerate() {
                shard.check_label(SHARD_LABELS[i]);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    // A fast-path caller on shard `k`: the demux registers the slot and
    // enqueues on the home queue, the home worker drains its own queue
    // FIFO and completes the call (slot reuse across two rounds), and a
    // late duplicate of seq 0 must be orphaned, never delivered.
    let caller = |shards: Arc<Vec<Mutex<ShardSlot>>>, k: usize| {
        Box::new(move || {
            let seq = 0u32;
            {
                let mut s = shards[k].lock();
                assert!(s.cur.is_none(), "shard {k}: slot registered twice");
                s.cur = Some(seq);
                s.backlog.push(seq);
            }
            {
                let mut s = shards[k].lock();
                assert_eq!(s.cur, Some(seq), "shard {k}: slot clobbered");
                let item = s.backlog.first().copied();
                assert_eq!(item, Some(seq), "shard {k}: queue reordered");
                s.backlog.remove(0);
                s.cur = None;
                s.completed += 1;
            }
            // Late duplicate of the completed call: the slot was torn
            // down, so it must be orphaned, never dispatched again.
            let mut s = shards[k].lock();
            assert!(s.cur.is_none(), "shard {k}: duplicate hit a live slot");
            s.orphans += 1;
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = caller(Arc::clone(&shards), fast_a);
    let t1 = caller(Arc::clone(&shards), fast_b);
    // Demux-then-steal: two calls land on the donor queue, whose own
    // worker never shows up (all its threads are busy), and the idle
    // thief worker then runs its steal scan. The two phases live on one
    // thread because the real thief loops until work appears — a scan
    // that beats the enqueue just comes around again, which a
    // terminating model collapses to scanning after the enqueue.
    let stealer = {
        let shards = Arc::clone(&shards);
        Box::new(move || {
            for seq in 0..2u32 {
                shards[donor].lock().backlog.push(seq);
            }
            // Own queue first (mirrors WorkQueues::pop), then victims
            // in ascending index order, exactly the runtime scan.
            assert!(shards[THIEF].lock().backlog.is_empty(), "thief not idle");
            let mut took = false;
            for victim in 0..MODEL_SHARDS {
                if victim == THIEF || took {
                    continue;
                }
                // One victim lock at a time; skip queues whose owner is
                // mid-dispatch — their backlog is already claimed, and
                // stealing it would dispatch the call twice.
                let mut donor_q = shards[victim].lock();
                if donor_q.cur.is_some() || donor_q.backlog.is_empty() {
                    continue;
                }
                // Whole-backlog takeover into the thief's queue, donor
                // and thief locks bridged in ascending index order (the
                // declared-parametric discipline; victim < THIEF for
                // every victim this scan can reach).
                let mut thief_q = shards[THIEF].lock();
                let taken = std::mem::take(&mut donor_q.backlog);
                thief_q.stolen.extend(taken);
                took = true;
            }
            // Dispatch the stolen batch in takeover order.
            let mut s = shards[THIEF].lock();
            let n = s.stolen.len() as u32;
            s.completed += n;
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Box::new(move || {
        let mut completed = 0;
        let mut orphans = 0;
        for shard in shards.iter() {
            let s = shard.lock();
            assert!(s.cur.is_none(), "slot leaked past the schedule");
            assert!(s.backlog.is_empty(), "call stranded on a queue");
            completed += s.completed;
            orphans += s.orphans;
        }
        assert_eq!(completed, 4, "calls lost or duplicated across shards");
        assert_eq!(orphans, 2, "late duplicate not orphaned");
        let stolen = &shards[THIEF].lock().stolen;
        assert_eq!(*stolen, vec![0, 1], "steal reordered the donor backlog");
    }) as Box<dyn FnOnce() + Send>;
    ModelRun {
        label,
        threads: vec![t0, t1, stealer],
        finale,
        audit: None,
        // The model proper runs on an abstract shard mirror, so the
        // protocol rows its scenario stands for (caller-side Result /
        // Ack / ProbeResponse handling, including every orphan shape)
        // come from a deterministic drill over the real sharded table,
        // run hook-free after the clean finale.
        transitions: Some(Box::new(crate::scenario::caller_transitions)),
    }
}

/// Server-side activity slot retention (paper §3.1.3): the server keeps
/// the last result packet's buffer in the activity slot so a duplicate
/// call packet is answered by retransmission instead of re-execution,
/// and frees it only when the next call on the activity (an implicit
/// ack) arrives. Three threads race over a two-buffer pool and one
/// slot: the server computes a result and retains its buffer, the demux
/// answers a duplicate request from the retained copy (take, send,
/// reinstall under one guard), and the acker releases the retained
/// buffer onto the controller receive queue. Every interleaving must
/// conserve slabs — free list + receive queue + retained — and keep the
/// pool's outstanding counter equal to the retained count. That is the
/// accounted-retention invariant firefly-lint's pool-lifecycle rule
/// admits statically (`retained` is in its accounted-field list), and
/// the audit readout below is what scripts/cross_diff.py compares
/// against the static claim.
fn make_activity_retention() -> ModelRun {
    #[derive(Default)]
    struct Slot {
        /// Seq of the call whose result is retained for retransmission.
        last_seq: Option<u32>,
        /// The retained result buffer (accounted pool retention).
        retained: Option<firefly_pool::PacketBuf>,
    }
    let pool = BufferPool::new(2);
    let slot = Arc::new(Mutex::new(Slot::default()));
    // Which protocol.toml rows each interleaving stands for. Plain std
    // atomics inside: recording adds no scheduler events, so the DPOR
    // schedule count is exactly what it was before instrumentation.
    let witness = Arc::new(ProtocolWitness::new());

    let label = {
        let pool = pool.clone();
        let slot = Arc::clone(&slot);
        Box::new(move || {
            pool.check_labels();
            slot.check_label("calltable");
        }) as Box<dyn FnOnce() + Send>
    };
    // Server: run the call, then install the result buffer in the slot.
    // The alloc happens outside the slot guard, like the real server
    // path — nesting it would invent a calltable→pool lock edge the
    // static graph rightly doesn't have.
    let server = {
        let pool = pool.clone();
        let slot = Arc::clone(&slot);
        Box::new(move || {
            let mut buf = pool.alloc().expect("two slabs, one alloc");
            buf.fill_from(&[7]);
            let mut s = slot.lock();
            s.last_seq = Some(0);
            s.retained = Some(buf);
        }) as Box<dyn FnOnce() + Send>
    };
    // Demux: a duplicate of call 0 arrives. If the result is already
    // retained, answer from the copy — take, send, reinstall — without
    // re-running the procedure; if not, the server is still computing
    // and the duplicate is dropped (the caller will retransmit).
    let demux = {
        let slot = Arc::clone(&slot);
        let witness = Arc::clone(&witness);
        Box::new(move || {
            let mut s = slot.lock();
            if s.last_seq == Some(0) {
                // Answer from the retained copy when it is still there
                // (take, "send", reinstall); a duplicate that arrives
                // after the ack already freed it is simply dropped.
                if let Some(buf) = s.retained.take() {
                    s.retained = Some(buf);
                    witness.record(row::DUP_RETAINED_BASE);
                } else {
                    witness.record(row::DUP_RELEASED_BASE);
                }
            } else {
                // Result not installed yet: the server is still
                // computing, which is the executing-duplicate drop.
                witness.record(row::DUP_EXEC_DROP_LF);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    // Acker: the next call on the activity implicitly acks call 0, so
    // the retained result is released to the controller receive queue.
    // When the ack beats the server, the buffer simply stays retained —
    // which the finale and audit must then account for.
    let acker = {
        let pool = pool.clone();
        let slot = Arc::clone(&slot);
        let witness = Arc::clone(&witness);
        Box::new(move || {
            let taken = {
                let mut s = slot.lock();
                s.retained.take()
            };
            if let Some(buf) = taken {
                pool.recycle_to_receive_queue(buf);
                witness.record(row::ACK_RELEASE);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = {
        let pool = pool.clone();
        let slot = Arc::clone(&slot);
        Box::new(move || {
            let retained = slot.lock().retained.is_some();
            assert_eq!(
                pool.free_count() + pool.receive_queue_len() + usize::from(retained),
                2,
                "slab neither free, queued, nor retained"
            );
            assert_eq!(
                pool.stats().outstanding(),
                u64::from(retained),
                "outstanding counter disagrees with slot retention"
            );
        }) as Box<dyn FnOnce() + Send>
    };
    let audit = {
        let pool = pool.clone();
        let slot = Arc::clone(&slot);
        Box::new(move || {
            vec![
                ("outstanding".to_string(), pool.stats().outstanding()),
                (
                    "retained".to_string(),
                    u64::from(slot.lock().retained.is_some()),
                ),
            ]
        }) as Box<dyn FnOnce() -> Vec<(String, u64)> + Send>
    };
    let transitions = {
        let witness = Arc::clone(&witness);
        Box::new(move || witness.observed().iter().map(|t| (*t).to_string()).collect())
            as Box<dyn FnOnce() -> Vec<String> + Send>
    };
    ModelRun {
        label,
        threads: vec![server, demux, acker],
        finale,
        audit: Some(audit),
        transitions: Some(transitions),
    }
}

/// Seeded race: an unsynchronized read-modify-write cycle split into a
/// relaxed load and a relaxed store. The pair is neither ordered by
/// happens-before nor sanctioned, so the detector must report it (and
/// the lost-increment outcome it permits is exactly why).
fn make_bug_race_counter() -> ModelRun {
    let counter = Arc::new(checked_atomic::AtomicU64::new(0));

    let label = {
        let counter = Arc::clone(&counter);
        Box::new(move || counter.check_label("counter")) as Box<dyn FnOnce() + Send>
    };
    let bump = |counter: Arc<checked_atomic::AtomicU64>| {
        Box::new(move || {
            // BUG: load + store instead of fetch_add — two threads can
            // both read 0 and both write 1.
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = bump(Arc::clone(&counter));
    let t1 = bump(Arc::clone(&counter));
    ModelRun {
        label,
        threads: vec![t0, t1],
        finale: Box::new(|| {}),
        audit: None,
        transitions: None,
    }
}

/// Seeded race: publish-without-release. The writer fills `data`, then
/// raises `flag` with a *relaxed* store; the reader's acquire load
/// acquires nothing from it, so neither the flag pair nor the data it
/// guards is ordered. Must be reported as a `Race` on the flag.
fn make_bug_race_publish() -> ModelRun {
    let data = Arc::new(checked_atomic::AtomicU64::new(0));
    let flag = Arc::new(checked_atomic::AtomicBool::new(false));

    let label = {
        let data = Arc::clone(&data);
        let flag = Arc::clone(&flag);
        Box::new(move || {
            data.check_label("payload");
            flag.check_label("ready-flag");
        }) as Box<dyn FnOnce() + Send>
    };
    let writer = {
        let data = Arc::clone(&data);
        let flag = Arc::clone(&flag);
        Box::new(move || {
            data.store(42, Ordering::Relaxed);
            // BUG: must be Release to publish the payload.
            flag.store(true, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let data = Arc::clone(&data);
        let flag = Arc::clone(&flag);
        Box::new(move || {
            if flag.load(Ordering::Acquire) {
                let _ = data.load(Ordering::Relaxed);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    ModelRun {
        label,
        threads: vec![writer, reader],
        finale: Box::new(|| {}),
        audit: None,
        transitions: None,
    }
}

/// Seeded race: notify-read. The signaller performs the condvar
/// handshake correctly but writes the payload *after* the notify,
/// assuming the wakeup itself orders it; the woken reader's only
/// happens-before edge is the mutex, which covers nothing past the
/// signaller's release. Must be reported as a `Race` on the payload.
fn make_bug_race_notify() -> ModelRun {
    let flag = Arc::new(Mutex::new(false));
    let cond = Arc::new(Condvar::new());
    let data = Arc::new(checked_atomic::AtomicU64::new(0));

    let label = {
        let flag = Arc::clone(&flag);
        let data = Arc::clone(&data);
        Box::new(move || {
            flag.check_label("flag");
            data.check_label("payload");
        }) as Box<dyn FnOnce() + Send>
    };
    let signaller = {
        let flag = Arc::clone(&flag);
        let cond = Arc::clone(&cond);
        let data = Arc::clone(&data);
        Box::new(move || {
            let mut g = flag.lock();
            *g = true;
            drop(g);
            cond.notify_one();
            // BUG: published after the handshake — nothing orders this
            // store before the woken reader's load.
            data.store(7, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>
    };
    let waiter = {
        let flag = Arc::clone(&flag);
        let cond = Arc::clone(&cond);
        let data = Arc::clone(&data);
        Box::new(move || {
            let mut g = flag.lock();
            while !*g {
                let _ = cond.wait_until(&mut g, far_deadline());
            }
            drop(g);
            let _ = data.load(Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>
    };
    ModelRun {
        label,
        threads: vec![signaller, waiter],
        finale: Box::new(|| {}),
        audit: None,
        transitions: None,
    }
}

/// The clean models: every schedule must pass; their observed lock
/// edges feed the static-vs-dynamic diff.
pub fn structure_models() -> Vec<Model> {
    vec![
        Model {
            name: "calltable",
            about: "call-table slot reuse + late-duplicate orphaning (paper §3.1.3)",
            make: make_calltable,
        },
        Model {
            name: "pool",
            about: "buffer pool acquire/release/recycle via receive queue (paper §3.2)",
            make: make_pool,
        },
        Model {
            name: "trace-ring",
            about: "trace ring conservation under producer/consumer contention",
            make: make_trace_ring,
        },
        Model {
            name: "channel",
            about: "MPMC channel: no lost messages, receivers terminate on disconnect",
            make: make_channel,
        },
        Model {
            name: "gate",
            about: "hook INSTALLED gate protocol: sanctioned orderings, race-free",
            make: make_gate,
        },
        Model {
            name: "sharded-calltable",
            about: "4-shard call table + ascending-order stealer (DPOR exhausts, DFS drowns)",
            make: make_sharded_calltable,
        },
        Model {
            name: "activity-retention",
            about: "server-side activity slot retains the last result for retransmit (paper §3.1.3)",
            make: make_activity_retention,
        },
    ]
}

/// The seeded-bug fixtures: each must be caught with a replayable
/// failing schedule.
pub fn bug_models() -> Vec<Model> {
    vec![
        Model {
            name: "bug-abba",
            about: "seeded ABBA lock-order inversion (expected: LockInversion)",
            make: make_bug_abba,
        },
        Model {
            name: "bug-lost-wakeup",
            about: "seeded notify-before-wait lost wakeup (expected: LostWakeup)",
            make: make_bug_lost_wakeup,
        },
        Model {
            name: "bug-double-release",
            about: "seeded check-then-act double release (expected: Invariant)",
            make: make_bug_double_release,
        },
        Model {
            name: "bug-race-counter",
            about: "seeded unsynchronized load/store counter (expected: Race)",
            make: make_bug_race_counter,
        },
        Model {
            name: "bug-race-publish",
            about: "seeded publish-without-release flag (expected: Race)",
            make: make_bug_race_publish,
        },
        Model {
            name: "bug-race-notify",
            about: "seeded store-after-notify payload (expected: Race)",
            make: make_bug_race_notify,
        },
    ]
}

/// Looks a model up by name across both registries.
pub fn find(name: &str) -> Option<Model> {
    structure_models()
        .into_iter()
        .chain(bug_models())
        .find(|m| m.name == name)
}
