//! Vector clocks for the happens-before race detector.
//!
//! One clock component per model thread. Components count the thread's
//! *schedule points* (lock grants, wait wakeups, atomic accesses) — the
//! granularity at which the scheduler serializes events — so an epoch
//! `(tid, clock)` uniquely names one event of one thread within a
//! schedule. The detector in [`races`](crate::races) keeps a clock per
//! thread (its knowledge of every other thread), a clock per lock
//! (transferred release→acquire), and a clock per atomic location
//! (transferred release-store→acquire-load).

/// A fixed-width vector clock; width is the model's thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u32>,
}

impl VectorClock {
    /// A zero clock for `n` threads.
    pub fn new(n: usize) -> VectorClock {
        VectorClock { slots: vec![0; n] }
    }

    /// This clock's component for `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one, returning the new value.
    pub fn tick(&mut self, tid: usize) -> u32 {
        let slot = &mut self.slots[tid];
        *slot += 1;
        *slot
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// True when the event at epoch `(tid, clock)` happens-before this
    /// clock — i.e. the owner of `self` has synchronized with `tid` at
    /// or after that event.
    pub fn covers(&self, tid: usize, clock: u32) -> bool {
        self.get(tid) >= clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_only_the_owner_component() {
        let mut vc = VectorClock::new(3);
        assert_eq!(vc.tick(1), 1);
        assert_eq!(vc.tick(1), 2);
        assert_eq!(vc.get(0), 0);
        assert_eq!(vc.get(1), 2);
        assert_eq!(vc.get(2), 0);
    }

    #[test]
    fn join_takes_the_pointwise_maximum() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        // Join is idempotent.
        let snapshot = a.clone();
        a.join(&b);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn covers_models_happens_before() {
        let mut writer = VectorClock::new(2);
        let epoch = writer.tick(0); // writer's event at (0, 1)
        let mut reader = VectorClock::new(2);
        assert!(!reader.covers(0, epoch)); // unsynchronized: racy
        reader.join(&writer); // e.g. via a lock release/acquire
        assert!(reader.covers(0, epoch));
    }

    #[test]
    fn out_of_range_components_read_as_zero() {
        let vc = VectorClock::new(1);
        assert_eq!(vc.get(5), 0);
        assert!(vc.covers(5, 0));
        assert!(!vc.covers(5, 1));
    }
}
