//! `firefly-check` driver.
//!
//! Default run (and `--smoke`, a tighter bound for CI): explores every
//! structure model with DFS plus seeded random sampling — all must pass
//! — then every seeded-bug model, which all must *fail* with a
//! replayable schedule. Exit 0 only when both halves hold.
//!
//! `--json-edges PATH` writes the union of observed class-level lock
//! edges from passing structure schedules, the set of atomic location
//! classes whose release→acquire publication edge was consumed, and
//! each auditing model's quiescent accounting counters;
//! scripts/cross_diff.py diffs all three against the static report from
//! `firefly-lint --json`.
//!
//! `--dpor` swaps DFS for sleep-set + source-set dynamic partial-order
//! reduction; each DPOR run prints a machine-parseable
//! `dpor <model> explored N schedule(s), pruned M, exhausted B` line
//! that scripts/verify.sh gates on (the sharded call table must stay
//! exhaustible under DPOR inside its budget).
//!
//! Single-model runs for debugging:
//!   firefly-check --model pool --schedules 5000
//!   firefly-check --model pool --seed 0xdecafbad --schedules 500
//!   firefly-check --model sharded-calltable --dpor --schedules 4000
//!   firefly-check --model bug-abba --replay 0,1,1 --verbose

use firefly_check::{args, models, render_failure, Explorer, Mode, Outcome};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn summarize(outcome: &Outcome, expect_failure: bool, verbose: bool) -> bool {
    let ok = match (&outcome.failure, expect_failure) {
        (None, false) => {
            println!(
                "  pass  {:<18} {} schedule(s){}, digest {:#018x}",
                outcome.model,
                outcome.schedules,
                if outcome.exhausted { " (exhausted)" } else { "" },
                outcome.digest,
            );
            true
        }
        (Some(report), true) => {
            println!(
                "  caught {:<17} {} at schedule {} (replay --model {} --replay {})",
                outcome.model,
                report.failure,
                report.schedule,
                outcome.model,
                if report.decisions.is_empty() {
                    "-".to_string()
                } else {
                    report
                        .decisions
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                },
            );
            true
        }
        (Some(report), false) => {
            print!("FAIL\n{}", render_failure(outcome.model, report, true));
            false
        }
        (None, true) => {
            println!(
                "FAIL  {:<18} seeded bug NOT detected in {} schedule(s)",
                outcome.model, outcome.schedules
            );
            false
        }
    };
    if ok && verbose {
        if let Some(report) = &outcome.failure {
            print!("{}", render_failure(outcome.model, report, true));
        }
    }
    ok
}

/// Splits a `class[index]` instance name into its class and numeric
/// index, or `None` for plain (non-parametric) lock names.
fn parse_instance(name: &str) -> Option<(&str, usize)> {
    let open = name.find('[')?;
    let inner = name.get(open + 1..name.len() - 1)?;
    if !name.ends_with(']') || inner.is_empty() {
        return None;
    }
    Some((&name[..open], inner.parse().ok()?))
}

/// Collapses observed instance-level edges to class-level edges: a
/// `shard[2] -> shard[3]` nesting becomes the class self-edge
/// `shard -> shard` annotated `ascending` (or `descending` for an
/// index-order violation), and cross-class edges drop their indices.
/// This is the form the static/dynamic lock-graph diff in
/// scripts/verify.sh compares against `firefly-lint --json`.
fn collapse_parametric(
    edges: &BTreeSet<(String, String)>,
) -> BTreeSet<(String, String, Option<&'static str>)> {
    edges
        .iter()
        .map(|(from, to)| match (parse_instance(from), parse_instance(to)) {
            (Some((fc, fi)), Some((tc, ti))) if fc == tc => {
                let ordering = if fi < ti { "ascending" } else { "descending" };
                (fc.to_string(), tc.to_string(), Some(ordering))
            }
            (fp, tp) => {
                let strip = |p: Option<(&str, usize)>, raw: &str| {
                    p.map_or_else(|| raw.to_string(), |(c, _)| c.to_string())
                };
                (strip(fp, from), strip(tp, to), None)
            }
        })
        .collect()
}

fn write_edges_json(
    path: &str,
    edges: &BTreeSet<(String, String)>,
    publications: &BTreeSet<String>,
    accounting: &BTreeMap<&'static str, Vec<(String, u64)>>,
    transitions: &BTreeSet<String>,
) -> std::io::Result<()> {
    let collapsed = collapse_parametric(edges);
    let mut s = String::from("{\n  \"schema_version\": 1,\n  \"edges\": [");
    for (i, (from, to, ordering)) in collapsed.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {{\"from\": \"{from}\", \"to\": \"{to}\""));
        if let Some(ord) = ordering {
            s.push_str(&format!(", \"ordering\": \"{ord}\""));
        }
        s.push_str("}");
    }
    // Observed release→acquire publication classes (from the race
    // detector) and per-model quiescent accounting audits: the other
    // two halves of the scripts/cross_diff.py static-vs-dynamic diff.
    s.push_str("\n  ],\n  \"publications\": [");
    for (i, class) in publications.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{class}\""));
    }
    s.push_str("\n  ],\n  \"accounting\": {");
    for (i, (model, counters)) in accounting.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rendered: Vec<String> = counters
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        s.push_str(&format!("\n    \"{model}\": {{{}}}", rendered.join(", ")));
    }
    // Protocol.toml rows the models and the wire scenario actually
    // drove — the fourth cross_diff.py gate (spec-legality plus
    // coverage) reads this array. Emitted in spec-table order.
    s.push_str("\n  },\n  \"transitions\": [");
    let ordered: Vec<&str> = firefly_rpc::witness::TRANSITIONS
        .iter()
        .filter(|t| transitions.contains(**t))
        .copied()
        .collect();
    for (i, row) in ordered.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{row}\""));
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(path, s)
}

/// The machine-parseable DPOR summary line scripts/verify.sh greps for
/// its pruning-regression gate.
fn print_dpor_line(outcome: &Outcome) {
    println!(
        "dpor {} explored {} schedule(s), pruned {}, exhausted {}",
        outcome.model, outcome.schedules, outcome.pruned, outcome.exhausted
    );
}

/// Re-runs a caught bug from its recorded decision list and checks the
/// same failure kind reproduces — the replay contract the failure
/// report advertises.
fn replay_reproduces(explorer: &Explorer, model: &firefly_check::Model, outcome: &Outcome) -> bool {
    let Some(report) = &outcome.failure else {
        return false;
    };
    let replayed = explorer.explore(
        model,
        &Mode::Replay {
            decisions: report.decisions.clone(),
        },
    );
    match &replayed.failure {
        Some(r) => {
            let same = std::mem::discriminant(&r.failure)
                == std::mem::discriminant(&report.failure);
            if !same {
                println!(
                    "FAIL  {:<18} replay produced {} instead of {}",
                    model.name, r.failure, report.failure
                );
            }
            same
        }
        None => {
            println!("FAIL  {:<18} replay did not reproduce the failure", model.name);
            false
        }
    }
}

fn main() -> ExitCode {
    let args = match args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("firefly-check: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        println!("structure models (must pass):");
        for m in models::structure_models() {
            println!("  {:<18} {}", m.name, m.about);
        }
        println!("bug models (must be caught):");
        for m in models::bug_models() {
            println!("  {:<18} {}", m.name, m.about);
        }
        return ExitCode::SUCCESS;
    }

    let mut explorer = Explorer::new();
    if let Some(budget) = args.budget {
        explorer.step_budget = budget;
    }

    if let Some(name) = &args.model {
        let Some(model) = models::find(name) else {
            eprintln!("firefly-check: unknown model {name} (try --list)");
            return ExitCode::from(2);
        };
        let mode = if let Some(decisions) = args.replay.clone() {
            Mode::Replay { decisions }
        } else if let Some(seed) = args.seed {
            Mode::Random {
                seed,
                schedules: args.schedules.unwrap_or(1000),
            }
        } else if args.dpor {
            Mode::Dpor {
                max_schedules: args.schedules.unwrap_or(5000),
            }
        } else {
            Mode::Dfs {
                max_schedules: args.schedules.unwrap_or(5000),
            }
        };
        let outcome = explorer.explore(&model, &mode);
        if matches!(mode, Mode::Dpor { .. }) {
            print_dpor_line(&outcome);
        }
        let expect_failure = name.starts_with("bug-");
        let ok = summarize(&outcome, expect_failure, args.verbose);
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let (dfs_cap, rand_schedules) = if args.smoke { (400, 150) } else { (4000, 1000) };
    let seed = args.seed.unwrap_or(0x00c0_ffee);
    let mut all_ok = true;
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut publications: BTreeSet<String> = BTreeSet::new();
    let mut accounting: BTreeMap<&'static str, Vec<(String, u64)>> = BTreeMap::new();
    let mut transitions: BTreeSet<String> = BTreeSet::new();

    if !args.bugs_only {
        println!(
            "firefly-check: structure models ({} cap {dfs_cap}, {rand_schedules} random schedules, seed {seed:#x})",
            if args.dpor { "dpor" } else { "dfs" },
        );
        for model in models::structure_models() {
            let mode = if args.dpor {
                Mode::Dpor {
                    max_schedules: dfs_cap,
                }
            } else {
                Mode::Dfs {
                    max_schedules: dfs_cap,
                }
            };
            let dfs = explorer.explore(&model, &mode);
            if args.dpor {
                print_dpor_line(&dfs);
            }
            all_ok &= summarize(&dfs, false, args.verbose);
            edges.extend(dfs.edges);
            publications.extend(dfs.publications);
            transitions.extend(dfs.transitions);
            if !dfs.accounting.is_empty() {
                accounting.insert(model.name, dfs.accounting);
            }
            let rand = explorer.explore(
                &model,
                &Mode::Random {
                    seed,
                    schedules: rand_schedules,
                },
            );
            all_ok &= summarize(&rand, false, args.verbose);
            edges.extend(rand.edges);
            publications.extend(rand.publications);
            transitions.extend(rand.transitions);
            if !rand.accounting.is_empty() {
                accounting.insert(model.name, rand.accounting);
            }
        }
    }

    println!("firefly-check: seeded-bug models (each must be caught and replay)");
    for model in models::bug_models() {
        let outcome = explorer.explore(&model, &Mode::Dfs { max_schedules: 500 });
        let caught = summarize(&outcome, true, args.verbose);
        all_ok &= caught;
        if caught {
            all_ok &= replay_reproduces(&explorer, &model, &outcome);
        }
    }

    if let Some(path) = &args.json_edges {
        // The wire scenario drives a live endpoint through the
        // server-side spec rows the models cannot reach; run it only
        // when exporting (it is a coverage driver, not a check).
        match firefly_check::scenario::wire_transitions() {
            Ok(rows) => transitions.extend(rows),
            Err(e) => {
                eprintln!("firefly-check: {e}");
                all_ok = false;
            }
        }
        if let Err(e) = write_edges_json(path, &edges, &publications, &accounting, &transitions) {
            eprintln!("firefly-check: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "firefly-check: {} observed lock edge(s), {} publication class(es), {} protocol transition(s) -> {path}",
            edges.len(),
            publications.len(),
            transitions.len()
        );
    }

    if all_ok {
        println!("firefly-check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
