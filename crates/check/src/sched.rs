//! The cooperative scheduler behind `firefly-check`.
//!
//! There is no controller thread. Model threads run on real OS threads,
//! but exactly one is ever runnable: every instrumented synchronization
//! event (`firefly_sync::hook`) parks the calling thread on one central
//! mutex + condvar pair, and the *yielding thread itself* picks the next
//! runnable thread under that lock. Decisions — which eligible thread
//! runs, which waiter a `notify_one` wakes — index into a deterministic
//! option list, so a schedule is fully described by its decision list,
//! and replaying the list replays the schedule.
//!
//! ## Soundness of the schedule points
//!
//! Context switches happen only at `before_lock` (always, even when the
//! lock is free — acquisition *order* is the thing being explored),
//! `on_atomic` (every instrumented atomic access yields before it runs,
//! so the race detector sees each conflicting pair in both orders),
//! `cond_wait`, and thread finish. `after_unlock` and `notify` do not
//! yield. This is sound for the models here because all cross-thread
//! state is lock-protected or goes through the instrumented atomics:
//! any two conflicting accesses are separated by a schedule point, so
//! every distinguishable interleaving of the shared state is reachable
//! through acquisition- and access-order choices alone.
//! What this granularity *cannot* see is a race in the gap between
//! releasing one lock and waiting on a condvar paired with another —
//! see docs/CHECKING.md for the honest limitation statement.
//!
//! ## Abort protocol
//!
//! On a failure (deadlock, inversion, invariant panic, budget) the
//! failing context sets `aborting` and wakes everyone. Parked threads
//! unwind with [`AbortSignal`] via `panic_any`; the worker wrapper in
//! `lib.rs` catches it and distinguishes it from a real model panic.
//! Hooks reached *during* an unwind (guard drops run `after_unlock`;
//! pool buffer drops can even re-lock) must never panic again — a
//! second panic aborts the process — so every hook checks
//! `std::thread::panicking()` before raising and degrades to a silent
//! pass-through while unwinding.

use crate::races::Detector;
use firefly_rng::Rng;
use firefly_sync::hook::{AtomicOp, OrderTag, Scheduler};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::panic::panic_any;
use std::sync::{Condvar, Mutex, MutexGuard};

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Assigns the calling OS thread its model thread id (workers) or
/// clears it (teardown).
pub fn set_tid(tid: Option<usize>) {
    let _ = TID.try_with(|c| c.set(tid));
}

fn tid() -> Option<usize> {
    TID.try_with(Cell::get).ok().flatten()
}

/// Panic payload used to unwind parked model threads when a schedule
/// aborts. Not an error: the worker wrapper swallows it.
pub struct AbortSignal;

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// No thread is runnable and at least one blocked thread is stuck
    /// on a lock.
    Deadlock,
    /// No thread is runnable and every blocked thread sits in a condvar
    /// wait: a notification was issued while nobody was waiting (or
    /// never issued) and the model has no way to recover.
    LostWakeup,
    /// Acquiring `later` while holding `earlier` closes a cycle with
    /// the opposite order observed earlier in the same schedule.
    LockInversion {
        /// Name of the lock held at the violating acquisition.
        earlier: String,
        /// Name of the lock whose acquisition closed the cycle.
        later: String,
    },
    /// A model thread or the finale panicked with a real assertion.
    Invariant {
        /// The panic message.
        message: String,
    },
    /// The schedule exceeded its step budget (livelock guard).
    StepBudget,
    /// The race detector found two conflicting, happens-before-unordered
    /// atomic accesses (see `races` for the sanctioned-access rule).
    Race {
        /// Scheduler name of the racing location.
        location: String,
        /// Event description of the earlier access.
        first: String,
        /// Event description of the later access.
        second: String,
    },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Deadlock => f.write_str("deadlock"),
            Failure::LostWakeup => f.write_str("lost wakeup"),
            Failure::LockInversion { earlier, later } => {
                write!(f, "lock-order inversion: {later} acquired under {earlier}")
            }
            Failure::Invariant { message } => {
                // Assert messages span lines; keep the report one line.
                write!(f, "invariant violated: {}", message.replace('\n', " | "))
            }
            Failure::StepBudget => f.write_str("step budget exceeded (livelock?)"),
            Failure::Race {
                location,
                first,
                second,
            } => {
                write!(f, "data race on {location}: {first} unordered with {second}")
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum ThreadState {
    /// Arrived, never yet scheduled.
    Idle,
    /// The one currently executing thread.
    Running,
    /// Parked at `before_lock`.
    WantsLock { lock: usize, shared: bool },
    /// Parked in a condvar wait; `lock` is the released paired lock.
    Waiting { cond: usize, lock: usize },
    /// Notified; must reacquire `lock` before running again.
    Notified { lock: usize },
    /// Parked at `on_atomic`; the access runs once granted.
    WantsAtomic {
        addr: usize,
        op: AtomicOp,
        tag: OrderTag,
    },
    Finished,
}

#[derive(Clone, Copy, PartialEq)]
enum ObjKind {
    Lock,
    Cond,
    Atomic,
}

/// One visible operation of a step's run slice, in the granularity the
/// DPOR dependency relation works at. A *slice* is everything a thread
/// does between being granted the processor and its next park: the
/// granted operation plus the non-yielding events (releases, notifies)
/// it performs before yielding again.
///
/// Objects are identified by their **registration index**, not their
/// address: each schedule re-executes the model against a fresh
/// allocation, so addresses vary run to run, while registration order
/// is deterministic for any shared decision prefix. Sleep-set entries
/// recorded in one run must match dependent operations executed in the
/// next — matching on addresses would (silently, unsoundly) never wake
/// a sleeping thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Thread start (no visible footprint).
    Start,
    /// Acquired lock `#index` (including condvar-wake reacquires).
    LockAcq(usize),
    /// Released lock `#index`.
    LockRel(usize),
    /// Atomically released lock `#lock` and parked on cond `#cond`.
    Wait { cond: usize, lock: usize },
    /// Notified cond `#index`.
    Notify { cond: usize },
    /// Accessed atomic `#index`; `write` covers stores and RMWs.
    Atomic { index: usize, write: bool },
}

impl Op {
    /// The DPOR dependency relation: two operations of *different*
    /// threads commute unless this returns true. Conservative on
    /// lock/cond traffic (any two ops on the same object are dependent)
    /// and exact on atomics (load/load pairs commute).
    pub fn dependent(a: &Op, b: &Op) -> bool {
        let lock_of = |op: &Op| match *op {
            Op::LockAcq(l) | Op::LockRel(l) => Some(l),
            Op::Wait { lock, .. } => Some(lock),
            _ => None,
        };
        let cond_of = |op: &Op| match *op {
            Op::Wait { cond, .. } | Op::Notify { cond } => Some(cond),
            _ => None,
        };
        if let (Some(x), Some(y)) = (lock_of(a), lock_of(b)) {
            if x == y {
                return true;
            }
        }
        if let (Some(x), Some(y)) = (cond_of(a), cond_of(b)) {
            if x == y {
                return true;
            }
        }
        if let (
            Op::Atomic {
                index: x,
                write: w1,
            },
            Op::Atomic {
                index: y,
                write: w2,
            },
        ) = (a, b)
        {
            if x == y && (*w1 || *w2) {
                return true;
            }
        }
        false
    }

    /// True when the operation touches any object whose registration
    /// index is `>= bound` — i.e. an object first registered after the
    /// branch point a sleep entry was recorded at. Such objects may be
    /// assigned to different referents in a sibling run, so dependency
    /// comparisons on them are unreliable.
    pub fn touches_from(&self, bound: usize) -> bool {
        match *self {
            Op::Start => false,
            Op::LockAcq(i) | Op::LockRel(i) | Op::Notify { cond: i } => i >= bound,
            Op::Wait { cond, lock } => cond >= bound || lock >= bound,
            Op::Atomic { index, .. } => index >= bound,
        }
    }
}

/// True when any operation of slice `a` is dependent with any of `b`.
pub fn slices_dependent(a: &[Op], b: &[Op]) -> bool {
    a.iter().any(|x| b.iter().any(|y| Op::dependent(x, y)))
}

/// A sleep-set entry: a thread whose first slice from the current
/// branch point was already explored; the scheduler must not run it
/// until an executed operation is dependent with that slice.
#[derive(Debug, Clone)]
pub struct SleepEntry {
    /// The sleeping thread.
    pub tid: usize,
    /// Its recorded first slice from the branch point.
    pub ops: Vec<Op>,
    /// Registration-index bound when the slice was recorded: objects
    /// `>= fresh_from` were created after the branch point and may
    /// alias differently in this run, so any executed op touching such
    /// an object conservatively wakes the entry (less pruning, never
    /// unsound sleeping).
    pub fresh_from: usize,
}

impl SleepEntry {
    /// Should an executed `op` wake this entry? Yes when it is
    /// dependent with the recorded slice, or when the comparison is
    /// unreliable because both sides touch post-branch objects.
    pub fn woken_by(&self, op: &Op) -> bool {
        if self.ops.iter().any(|o| Op::dependent(o, op)) {
            return true;
        }
        op.touches_from(self.fresh_from) && self.ops.iter().any(|o| o.touches_from(self.fresh_from))
    }
}

/// One scheduling step of a schedule: which thread was granted, what it
/// executed, and what the alternatives were — the raw material for the
/// DPOR driver's backtrack-set insertion.
#[derive(Debug, Clone)]
pub struct StepRec {
    /// The granted thread.
    pub tid: usize,
    /// Every eligible thread at the pick, in decision-option order.
    pub enabled: Vec<usize>,
    /// Index into the decision list when the pick had alternatives
    /// (`enabled.len() > 1`); forced picks record `None`.
    pub decision_index: Option<usize>,
    /// `decisions.len()` before the pick — used to decide whether the
    /// sleep set was active for this slice.
    pub pick_cursor: usize,
    /// Number of registered objects before the step ran: the
    /// `fresh_from` bound for sleep entries built from this slice.
    pub objs_before: usize,
    /// The run slice (granted op + non-yielding follow-ons).
    pub ops: Vec<Op>,
}

/// One registered lock or condvar. Identity is the referent address
/// (map key); `index` is the deterministic registration order used for
/// stable names, since addresses vary between process runs.
struct Obj {
    kind: ObjKind,
    index: usize,
    label: Option<&'static str>,
    owner: Option<usize>,
    readers: Vec<usize>,
}

impl Obj {
    /// Unique deterministic name, e.g. `pool#2` or `lock#5`.
    fn name(&self) -> String {
        match (self.label, self.kind) {
            (Some(l), _) => format!("{l}#{}", self.index),
            (None, ObjKind::Lock) => format!("lock#{}", self.index),
            (None, ObjKind::Cond) => format!("cond#{}", self.index),
            (None, ObjKind::Atomic) => format!("atomic#{}", self.index),
        }
    }

    /// Class-level name for edge reporting: the label when present
    /// (several locks share one class), the unique name otherwise.
    fn class(&self) -> String {
        match self.label {
            Some(l) => l.to_string(),
            None => self.name(),
        }
    }
}

#[derive(Default)]
struct Core {
    n: usize,
    started: usize,
    states: Vec<ThreadState>,
    held: Vec<Vec<usize>>,
    objs: BTreeMap<usize, Obj>,
    next_index: usize,
    /// Addr-level "held → acquired" edges of this schedule.
    edges: BTreeSet<(usize, usize)>,
    /// Class-level edges, accumulated as they are observed.
    named_edges: BTreeSet<(String, String)>,
    running: Option<usize>,
    aborting: bool,
    failure: Option<Failure>,
    /// `(chosen, options)` for every decision taken, in order.
    decisions: Vec<(usize, usize)>,
    /// Decisions to replay; past the end, DFS defaults to 0.
    prefix: Vec<usize>,
    cursor: usize,
    rng: Option<Rng>,
    steps: usize,
    budget: usize,
    trace: Vec<String>,
    /// Per-step records for the DPOR driver.
    step_recs: Vec<StepRec>,
    /// The happens-before race detector (None until reset sizes it).
    detector: Option<Detector>,
    /// Active sleep set (DPOR mode); entries removed as executed ops
    /// prove dependence with their recorded slices.
    sleep: Vec<SleepEntry>,
    /// Decision cursor from which the sleep set applies (the branch
    /// decision of the current DPOR run); `usize::MAX` disables it.
    sleep_from: usize,
    /// Set when a free pick found every eligible thread asleep: the
    /// schedule is provably equivalent to an already-explored one.
    redundant: bool,
    /// Sleep-set snapshot taken at each decision, so the DPOR driver
    /// knows the sleep set at every node it may later branch from.
    decision_sleeps: Vec<Vec<SleepEntry>>,
}

/// What one completed schedule produced.
pub struct ScheduleResult {
    /// The failure, if the schedule aborted.
    pub failure: Option<Failure>,
    /// Every decision taken, as `(chosen, options)` pairs.
    pub decisions: Vec<(usize, usize)>,
    /// Human-readable deterministic event log.
    pub trace: Vec<String>,
    /// Class-level lock edges observed.
    pub named_edges: BTreeSet<(String, String)>,
    /// Per-step records (granted thread, alternatives, run slice).
    pub steps: Vec<StepRec>,
    /// True when the schedule was abandoned as sleep-set-redundant.
    pub redundant: bool,
    /// Sleep-set snapshot at each decision point.
    pub decision_sleeps: Vec<Vec<SleepEntry>>,
    /// Atomic location classes on which a release→acquire publication
    /// edge was consumed (from the race detector).
    pub publications: std::collections::BTreeSet<String>,
}

/// The scheduler shared by one explorer's worker threads.
#[derive(Default)]
pub struct Sched {
    core: Mutex<Core>,
    cv: Condvar,
}

impl Sched {
    /// A scheduler with no schedule in progress.
    pub fn new() -> Sched {
        Sched::default()
    }

    /// Prepares the next schedule: `n` model threads, a decision prefix
    /// to replay, an optional RNG (random mode), and a step budget.
    pub fn reset(&self, n: usize, prefix: Vec<usize>, rng: Option<Rng>, budget: usize) {
        self.reset_dpor(n, prefix, rng, budget, Vec::new(), usize::MAX);
    }

    /// [`Sched::reset`] plus a DPOR sleep plan: `sleep` is the sleep set
    /// at the branch node, active from decision cursor `sleep_from` (the
    /// branch decision itself) onward.
    pub fn reset_dpor(
        &self,
        n: usize,
        prefix: Vec<usize>,
        rng: Option<Rng>,
        budget: usize,
        sleep: Vec<SleepEntry>,
        sleep_from: usize,
    ) {
        let mut core = self.lock_core();
        *core = Core {
            n,
            states: vec![ThreadState::Idle; n],
            held: vec![Vec::new(); n],
            prefix,
            rng,
            budget,
            sleep,
            sleep_from,
            detector: Some(Detector::new(n)),
            ..Core::default()
        };
    }

    /// Harvests the finished schedule's result.
    pub fn take_result(&self) -> ScheduleResult {
        let mut core = self.lock_core();
        let publications = core
            .detector
            .as_mut()
            .map(|d| d.take_publications())
            .unwrap_or_default();
        ScheduleResult {
            failure: core.failure.take(),
            decisions: std::mem::take(&mut core.decisions),
            trace: std::mem::take(&mut core.trace),
            named_edges: std::mem::take(&mut core.named_edges),
            steps: std::mem::take(&mut core.step_recs),
            redundant: core.redundant,
            decision_sleeps: std::mem::take(&mut core.decision_sleeps),
            publications,
        }
    }

    /// Called by each worker before its body: blocks until all `n`
    /// threads have arrived and this one is picked to run. Arrival
    /// *order* is OS-dependent, so nothing observable is recorded here;
    /// determinism starts at the first pick, which happens only once
    /// every thread is parked.
    pub fn arrive(&self, tid: usize) {
        let mut core = self.lock_core();
        core.started += 1;
        if core.started == core.n {
            self.pick_next(&mut core);
        }
        self.block_until_granted(core, tid);
    }

    /// Called by the worker wrapper when a body returns or unwinds.
    /// A non-[`AbortSignal`] panic message arrives as `err`.
    pub fn finish(&self, tid: usize, err: Option<String>) {
        let mut core = self.lock_core();
        core.states[tid] = ThreadState::Finished;
        // Defensive: a well-formed body dropped its guards (releasing
        // via after_unlock) before returning, but never let a stale
        // owner wedge the whole exploration.
        for lock in std::mem::take(&mut core.held[tid]) {
            Self::release_obj(&mut core, tid, lock);
        }
        if let Some(message) = err {
            if !core.aborting {
                self.fail(&mut core, Failure::Invariant { message });
            }
            return;
        }
        if core.aborting {
            return;
        }
        core.trace.push(format!("t{tid} finished"));
        core.running = None;
        self.pick_next(&mut core);
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks until aborting or granted the turn. While unwinding, an
    /// abort degrades to a pass-through instead of a second panic.
    fn block_until_granted(&self, mut core: MutexGuard<'_, Core>, tid: usize) {
        loop {
            if core.aborting {
                drop(core);
                if !std::thread::panicking() {
                    panic_any(AbortSignal);
                }
                return;
            }
            if core.running == Some(tid) {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn ensure_obj(core: &mut Core, addr: usize, kind: ObjKind) {
        if !core.objs.contains_key(&addr) {
            let index = core.next_index;
            core.next_index += 1;
            core.objs.insert(
                addr,
                Obj {
                    kind,
                    index,
                    label: None,
                    owner: None,
                    readers: Vec::new(),
                },
            );
        }
    }

    fn obj_name(core: &Core, addr: usize) -> String {
        core.objs
            .get(&addr)
            .map(Obj::name)
            .unwrap_or_else(|| "?".to_string())
    }

    fn release_obj(core: &mut Core, tid: usize, lock: usize) {
        if let Some(pos) = core.held[tid].iter().rposition(|&l| l == lock) {
            core.held[tid].remove(pos);
        }
        if let Some(o) = core.objs.get_mut(&lock) {
            if o.owner == Some(tid) {
                o.owner = None;
            } else if let Some(p) = o.readers.iter().position(|&r| r == tid) {
                o.readers.remove(p);
            }
        }
    }

    fn is_eligible(core: &Core, t: usize) -> bool {
        match core.states[t] {
            ThreadState::Idle => true,
            ThreadState::WantsAtomic { .. } => true,
            ThreadState::WantsLock { lock, shared } => match core.objs.get(&lock) {
                Some(o) if shared => o.owner.is_none(),
                Some(o) => o.owner.is_none() && o.readers.is_empty(),
                None => true,
            },
            ThreadState::Notified { lock } => match core.objs.get(&lock) {
                Some(o) => o.owner.is_none() && o.readers.is_empty(),
                None => true,
            },
            _ => false,
        }
    }

    /// One deterministic decision among `options` alternatives.
    /// Only called with `options > 1`, so forced moves cost nothing in
    /// the DFS tree. `default` is the free-exploration choice (0 except
    /// for sleep-aware scheduling picks, which skip sleeping threads).
    fn decide(core: &mut Core, options: usize, default: usize) -> usize {
        let chosen = if core.cursor < core.prefix.len() {
            core.prefix[core.cursor].min(options - 1)
        } else if let Some(rng) = core.rng.as_mut() {
            (rng.next_u64() % options as u64) as usize
        } else {
            default
        };
        core.cursor += 1;
        core.decisions.push((chosen, options));
        core.decision_sleeps.push(core.sleep.clone());
        chosen
    }

    /// The deterministic registration index of the object at `addr`
    /// (the identity [`Op`]s are recorded under).
    fn op_index(core: &Core, addr: usize) -> usize {
        core.objs.get(&addr).map_or(usize::MAX, |o| o.index)
    }

    /// Appends `op` to the running thread's current slice, waking any
    /// sleep-set entry whose recorded slice depends on it (the entry's
    /// thread is no longer provably redundant to schedule).
    fn record_op(core: &mut Core, tid: usize, op: Op) {
        let sleep_active = core
            .step_recs
            .last()
            .is_some_and(|s| s.pick_cursor >= core.sleep_from);
        if sleep_active && !core.sleep.is_empty() {
            core.sleep.retain(|entry| !entry.woken_by(&op));
        }
        if let Some(step) = core.step_recs.last_mut() {
            if step.tid == tid {
                step.ops.push(op);
            }
        }
    }

    fn fail(&self, core: &mut Core, failure: Failure) {
        core.trace.push(format!("FAIL: {failure}"));
        if core.failure.is_none() {
            core.failure = Some(failure);
        }
        core.aborting = true;
        core.running = None;
        self.cv.notify_all();
    }

    /// Is there a path `from →* to` in the addr-level edge graph?
    fn has_path(core: &Core, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            for &(a, b) in &core.edges {
                if a == node {
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Grants `tid` whatever it was blocked on and marks it Running.
    /// Sets a LockInversion failure when a fresh acquisition closes a
    /// cycle in this schedule's edge graph.
    fn grant(&self, core: &mut Core, tid: usize) {
        match core.states[tid].clone() {
            ThreadState::WantsLock { lock, shared } => {
                for h in core.held[tid].clone() {
                    if h == lock {
                        continue;
                    }
                    if !core.edges.contains(&(h, lock)) && Self::has_path(core, lock, h) {
                        let failure = Failure::LockInversion {
                            earlier: Self::obj_name(core, h),
                            later: Self::obj_name(core, lock),
                        };
                        self.fail(core, failure);
                        return;
                    }
                    core.edges.insert((h, lock));
                    let (from, to) = {
                        let held_class = core.objs.get(&h).map(Obj::class);
                        let lock_class = core.objs.get(&lock).map(Obj::class);
                        (held_class, lock_class)
                    };
                    if let (Some(from), Some(to)) = (from, to) {
                        core.named_edges.insert((from, to));
                    }
                }
                let name = Self::obj_name(core, lock);
                if let Some(o) = core.objs.get_mut(&lock) {
                    if shared {
                        o.readers.push(tid);
                    } else {
                        o.owner = Some(tid);
                    }
                }
                core.held[tid].push(lock);
                core.trace.push(format!("t{tid} acquires {name}"));
                if let Some(d) = core.detector.as_mut() {
                    d.lock_acquired(tid, lock);
                }
                let idx = Self::op_index(core, lock);
                Self::record_op(core, tid, Op::LockAcq(idx));
            }
            ThreadState::Notified { lock } => {
                // Reacquire after a wait: the edge (outer, lock), if
                // any, was recorded at the original acquisition.
                let name = Self::obj_name(core, lock);
                if let Some(o) = core.objs.get_mut(&lock) {
                    o.owner = Some(tid);
                }
                core.held[tid].push(lock);
                core.trace.push(format!("t{tid} wakes holding {name}"));
                if let Some(d) = core.detector.as_mut() {
                    d.lock_acquired(tid, lock);
                }
                let idx = Self::op_index(core, lock);
                Self::record_op(core, tid, Op::LockAcq(idx));
            }
            ThreadState::WantsAtomic { addr, op, tag } => {
                let name = Self::obj_name(core, addr);
                let kind = match op {
                    AtomicOp::Load => "load",
                    AtomicOp::Store => "store",
                    AtomicOp::Rmw => "rmw",
                };
                core.trace
                    .push(format!("t{tid} atomic {kind}({}) {name}", tag.name()));
                let idx = Self::op_index(core, addr);
                Self::record_op(
                    core,
                    tid,
                    Op::Atomic {
                        index: idx,
                        write: !matches!(op, AtomicOp::Load),
                    },
                );
                let step = core.step_recs.len();
                let race = core
                    .detector
                    .as_mut()
                    .and_then(|d| d.atomic_access(tid, addr, op, tag, step, &name));
                if let Some(r) = race {
                    let failure = Failure::Race {
                        location: r.location,
                        first: r.first,
                        second: r.second,
                    };
                    self.fail(core, failure);
                    return;
                }
            }
            ThreadState::Idle => {
                core.trace.push(format!("t{tid} starts"));
                Self::record_op(core, tid, Op::Start);
            }
            _ => {}
        }
        core.states[tid] = ThreadState::Running;
    }

    /// The heart of the checker: classify the eligible set, fail on an
    /// empty one with unfinished threads, otherwise decide, grant, run.
    fn pick_next(&self, core: &mut Core) {
        core.steps += 1;
        if core.steps > core.budget {
            self.fail(core, Failure::StepBudget);
            return;
        }
        let eligible: Vec<usize> = (0..core.n).filter(|&t| Self::is_eligible(core, t)).collect();
        if eligible.is_empty() {
            let unfinished: Vec<usize> = (0..core.n)
                .filter(|&t| core.states[t] != ThreadState::Finished)
                .collect();
            if unfinished.is_empty() {
                core.running = None;
                return;
            }
            let all_waiting = unfinished
                .iter()
                .all(|&t| matches!(core.states[t], ThreadState::Waiting { .. }));
            let failure = if all_waiting {
                Failure::LostWakeup
            } else {
                Failure::Deadlock
            };
            self.fail(core, failure);
            return;
        }
        // Sleep-set discipline (DPOR): in free exploration, never pick a
        // sleeping thread — its first slice from the branch point was
        // already explored. When *every* eligible thread sleeps, the
        // whole continuation is redundant and the schedule is abandoned.
        let free = core.cursor >= core.prefix.len();
        let awake_default = if free && !core.sleep.is_empty() {
            let awake: Vec<usize> = (0..eligible.len())
                .filter(|&i| core.sleep.iter().all(|e| e.tid != eligible[i]))
                .collect();
            match awake.first() {
                Some(&first) => first,
                None => {
                    core.trace.push("redundant: all eligible asleep".to_string());
                    core.redundant = true;
                    core.aborting = true;
                    core.running = None;
                    self.cv.notify_all();
                    return;
                }
            }
        } else {
            0
        };
        let pick_cursor = core.decisions.len();
        let (tid, decision_index) = if eligible.len() > 1 {
            let i = Self::decide(core, eligible.len(), awake_default);
            let tid = eligible[i];
            core.trace
                .push(format!("run t{tid} (choice {i} of {})", eligible.len()));
            (tid, Some(core.decisions.len() - 1))
        } else {
            (eligible[0], None)
        };
        core.step_recs.push(StepRec {
            tid,
            enabled: eligible,
            decision_index,
            pick_cursor,
            objs_before: core.next_index,
            ops: Vec::new(),
        });
        self.grant(core, tid);
        if core.aborting {
            return;
        }
        core.running = Some(tid);
        self.cv.notify_all();
    }
}

impl Scheduler for Sched {
    fn on_label(&self, lock: usize, label: &'static str) {
        let mut core = self.lock_core();
        if core.aborting {
            return;
        }
        Self::ensure_obj(&mut core, lock, ObjKind::Lock);
        if let Some(o) = core.objs.get_mut(&lock) {
            if o.label.is_none() {
                o.label = Some(label);
            }
        }
    }

    fn before_lock(&self, lock: usize, shared: bool) {
        let Some(tid) = tid() else { return };
        let mut core = self.lock_core();
        if core.aborting {
            drop(core);
            if !std::thread::panicking() {
                panic_any(AbortSignal);
            }
            return;
        }
        Self::ensure_obj(&mut core, lock, ObjKind::Lock);
        let name = Self::obj_name(&core, lock);
        let mode = if shared { "shared" } else { "excl" };
        core.trace.push(format!("t{tid} wants {name} ({mode})"));
        core.states[tid] = ThreadState::WantsLock { lock, shared };
        core.running = None;
        self.pick_next(&mut core);
        self.block_until_granted(core, tid);
    }

    fn after_unlock(&self, lock: usize) {
        let Some(tid) = tid() else { return };
        let mut core = self.lock_core();
        if core.aborting {
            return;
        }
        let name = Self::obj_name(&core, lock);
        core.trace.push(format!("t{tid} releases {name}"));
        Self::release_obj(&mut core, tid, lock);
        if let Some(d) = core.detector.as_mut() {
            d.lock_released(tid, lock);
        }
        let idx = Self::op_index(&core, lock);
        Self::record_op(&mut core, tid, Op::LockRel(idx));
        // Non-yielding: the releaser keeps running until its next
        // schedule point; blocked threads become eligible at that pick.
    }

    fn cond_wait(&self, cond: usize, lock: usize) {
        let Some(tid) = tid() else { return };
        let mut core = self.lock_core();
        if core.aborting {
            drop(core);
            if !std::thread::panicking() {
                panic_any(AbortSignal);
            }
            return;
        }
        Self::ensure_obj(&mut core, cond, ObjKind::Cond);
        let cond_name = Self::obj_name(&core, cond);
        let lock_name = Self::obj_name(&core, lock);
        core.trace
            .push(format!("t{tid} waits {cond_name} releasing {lock_name}"));
        // The caller already released the real lock; mirror it.
        Self::release_obj(&mut core, tid, lock);
        if let Some(d) = core.detector.as_mut() {
            d.lock_released(tid, lock);
        }
        let (cond_idx, lock_idx) = (Self::op_index(&core, cond), Self::op_index(&core, lock));
        Self::record_op(
            &mut core,
            tid,
            Op::Wait {
                cond: cond_idx,
                lock: lock_idx,
            },
        );
        core.states[tid] = ThreadState::Waiting { cond, lock };
        core.running = None;
        self.pick_next(&mut core);
        self.block_until_granted(core, tid);
    }

    fn notify(&self, cond: usize, all: bool) {
        let Some(tid) = tid() else { return };
        let mut core = self.lock_core();
        if core.aborting {
            return;
        }
        Self::ensure_obj(&mut core, cond, ObjKind::Cond);
        let name = Self::obj_name(&core, cond);
        let waiters: Vec<usize> = (0..core.n)
            .filter(|&t| matches!(core.states[t], ThreadState::Waiting { cond: c, .. } if c == cond))
            .collect();
        let cond_idx = Self::op_index(&core, cond);
        Self::record_op(&mut core, tid, Op::Notify { cond: cond_idx });
        if waiters.is_empty() {
            // The notification evaporates — exactly how a lost wakeup
            // is born. Recorded so failing traces show it.
            core.trace.push(format!("t{tid} notifies {name}: no waiters"));
            return;
        }
        if all {
            core.trace
                .push(format!("t{tid} notifies {name}: all {} waiters", waiters.len()));
            for w in waiters {
                if let ThreadState::Waiting { lock, .. } = core.states[w] {
                    core.states[w] = ThreadState::Notified { lock };
                }
            }
        } else {
            let i = if waiters.len() > 1 {
                Self::decide(&mut core, waiters.len(), 0)
            } else {
                0
            };
            let w = waiters[i];
            core.trace
                .push(format!("t{tid} notifies {name}: wakes t{w}"));
            if let ThreadState::Waiting { lock, .. } = core.states[w] {
                core.states[w] = ThreadState::Notified { lock };
            }
        }
        // Non-yielding, like after_unlock.
    }

    fn on_atomic(&self, addr: usize, op: AtomicOp, tag: OrderTag) {
        let Some(tid) = tid() else { return };
        let mut core = self.lock_core();
        if core.aborting {
            drop(core);
            if !std::thread::panicking() {
                panic_any(AbortSignal);
            }
            return;
        }
        Self::ensure_obj(&mut core, addr, ObjKind::Atomic);
        // A full schedule point: acquisition-order choices alone cannot
        // reorder raw atomic accesses, so each one parks and yields —
        // the grant performs the race-detector bookkeeping.
        core.states[tid] = ThreadState::WantsAtomic { addr, op, tag };
        core.running = None;
        self.pick_next(&mut core);
        self.block_until_granted(core, tid);
    }

    fn on_atomic_label(&self, addr: usize, label: &'static str) {
        let mut core = self.lock_core();
        if core.aborting {
            return;
        }
        Self::ensure_obj(&mut core, addr, ObjKind::Atomic);
        if let Some(o) = core.objs.get_mut(&addr) {
            if o.label.is_none() {
                o.label = Some(label);
            }
        }
    }
}
